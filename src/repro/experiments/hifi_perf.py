"""High-fidelity (trace-driven) experiments: Figures 11, 12 and 13.

Expected shapes (paper section 5.1):

* Fig 11 — service-scheduler busyness stays low across almost the whole
  t_job(service) x t_task(service) range on cluster C.
* Fig 12 — on the larger, busier cluster B, the conflict fraction
  crosses 1.0 around t_job(service) ~ 10 s; the wait-time SLO is missed
  around the same point even though the scheduler is not saturated; and
  busyness with conflicts runs well above the "no conflicts"
  approximation (the paper reports ~40 % higher).
* Fig 13 — splitting the batch workload over three schedulers moves the
  batch saturation point by roughly 3x, while the conflict fraction
  stays low (~0.1) and all schedulers meet the 30 s SLO until
  saturation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.experiments.common import DAY
from repro.hifi.replay import HighFidelityConfig, run_hifi
from repro.hifi.trace import Trace, synthesize_trace
from repro.schedulers.base import DEFAULT_T_TASK, DecisionTimeModel
from repro.workload.clusters import preset_by_name
from repro.workload.job import JobType

DEFAULT_T_JOBS = (0.1, 1.0, 10.0, 100.0)
DEFAULT_T_TASKS = (0.001, 0.01, 0.1, 1.0)


def make_trace(
    cluster: str,
    horizon: float,
    seed: int = 0,
    scale: float = 1.0,
    service_rate_factor: float | None = None,
) -> Trace:
    """Synthesize the stand-in production trace for a cluster.

    ``service_rate_factor`` defaults to 1/scale when the cell is scaled
    down: the section 5 figures study *service-scheduler* behaviour, so
    scaled traces keep the full-size service arrival rate (the service
    stream's resource footprint is small) while batch scales with the
    cell.
    """
    preset = preset_by_name(cluster)
    if scale != 1.0:
        preset = preset.scaled(scale)
        if service_rate_factor is None:
            service_rate_factor = 1.0 / scale
    if service_rate_factor is not None and service_rate_factor != 1.0:
        preset = replace(
            preset, service=preset.service.scaled_rate(service_rate_factor)
        )
    return synthesize_trace(preset, horizon=horizon, seed=seed)


def _hifi_row(result, **extra) -> dict:
    return {
        **extra,
        "wait_batch": result.mean_wait(JobType.BATCH),
        "wait_batch_p90": result.p90_wait(JobType.BATCH),
        "wait_service": result.mean_wait(JobType.SERVICE),
        "wait_service_p90": result.p90_wait(JobType.SERVICE),
        "conflict_batch": result.conflict_fraction("batch"),
        "conflict_service": result.conflict_fraction("service"),
        "busy_batch": result.busyness("batch"),
        "busy_service": result.busyness("service"),
        "busy_service_noconflict": result.noconflict_busyness("service"),
        "abandoned": result.jobs_abandoned,
        "unscheduled_fraction": result.unscheduled_fraction,
    }


def figure11_rows(
    trace: Trace | None = None,
    t_jobs: Sequence[float] = DEFAULT_T_JOBS,
    t_tasks: Sequence[float] = DEFAULT_T_TASKS,
    cluster: str = "C",
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
) -> list[dict]:
    """Service busyness surface over t_job x t_task (cluster C trace)."""
    if trace is None:
        trace = make_trace(cluster, horizon, seed=seed, scale=scale)
    rows = []
    for t_job in t_jobs:
        for t_task in t_tasks:
            result = run_hifi(
                HighFidelityConfig(
                    trace=trace,
                    seed=seed,
                    service_model=DecisionTimeModel(t_job=t_job, t_task=t_task),
                )
            )
            rows.append(
                _hifi_row(
                    result, cluster=cluster, t_job_service=t_job, t_task_service=t_task
                )
            )
    return rows


def figure12_rows(
    trace: Trace | None = None,
    t_jobs: Sequence[float] = DEFAULT_T_JOBS,
    cluster: str = "B",
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    t_task_service: float = DEFAULT_T_TASK,
) -> list[dict]:
    """Varying t_job(service) on the cluster B trace."""
    if trace is None:
        trace = make_trace(cluster, horizon, seed=seed, scale=scale)
    rows = []
    for t_job in t_jobs:
        result = run_hifi(
            HighFidelityConfig(
                trace=trace,
                seed=seed,
                service_model=DecisionTimeModel(t_job=t_job, t_task=t_task_service),
            )
        )
        rows.append(_hifi_row(result, cluster=cluster, t_job_service=t_job))
    return rows


def figure13_rows(
    trace: Trace | None = None,
    t_jobs: Sequence[float] = (0.1, 1.0, 4.0, 15.0, 60.0),
    cluster: str = "C",
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    scheduler_counts: Sequence[int] = (1, 3),
) -> list[dict]:
    """Splitting the batch workload across batch schedulers while
    sweeping t_job(batch); the service path keeps defaults.

    Rows carry per-scheduler busyness and wait times ("Batch 0/1/2" in
    the paper's plots) plus the aggregate saturation indicator.
    """
    if trace is None:
        trace = make_trace(cluster, horizon, seed=seed, scale=scale)
    rows = []
    for count in scheduler_counts:
        for t_job in t_jobs:
            result = run_hifi(
                HighFidelityConfig(
                    trace=trace,
                    seed=seed,
                    batch_model=DecisionTimeModel(t_job=t_job),
                    num_batch_schedulers=count,
                )
            )
            row = _hifi_row(
                result,
                cluster=cluster,
                t_job_batch=t_job,
                num_batch_schedulers=count,
            )
            for index, name in enumerate(result.batch_scheduler_names):
                row[f"busy_batch_{index}"] = result.scheduler_busyness(name)
                row[f"wait_batch_{index}"] = result.scheduler_wait_mean(name)
                row[f"wait_batch_{index}_p90"] = result.scheduler_wait_p90(name)
            rows.append(row)
    return rows


def figure13_saturation_shift(rows: list[dict], threshold: float = 0.05) -> dict:
    """Saturation t_job(batch) for each scheduler count and the shift
    ratio (the paper reports ~3x when going from one to three batch
    schedulers)."""
    points: dict[int, float | None] = {}
    for count in sorted({row["num_batch_schedulers"] for row in rows}):
        candidates = [
            row["t_job_batch"]
            for row in rows
            if row["num_batch_schedulers"] == count
            and row["unscheduled_fraction"] > threshold
        ]
        points[count] = min(candidates) if candidates else None
    shift = None
    counts = sorted(points)
    if len(counts) >= 2 and points[counts[0]] and points[counts[-1]]:
        shift = points[counts[-1]] / points[counts[0]]
    return {"saturation_t_job": points, "shift": shift}
