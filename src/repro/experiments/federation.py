"""Federation experiment: multi-cell graceful degradation.

``omega-sim federation`` sweeps cell count x aggregate staleness x
cell-fault intensity and reports how the federated system degrades:
batch/service wait, conflict rate, federation-wide merged wait
percentiles, and the explicit job ledger (migrated, rerouted,
abandoned, lost to blackouts). Every run ends with two gates — the
per-cell invariant checker and the front door's accounting invariant
``submitted == scheduled + pending + abandoned + lost_to_blackout`` —
so a fault path that silently loses a job fails the sweep instead of
flattering the table.

The degenerate baseline is load-bearing: a 1-cell federation at zero
staleness and zero intensity draws byte-identical randomness to the
single-cell ``omega`` experiment, and :func:`run_degenerate_gate`
enforces that its results table matches byte-for-byte (also wired into
the CI determinism gates).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import format_table
from repro.experiments.omega import single_run_rows
from repro.experiments.sweeps import batch_load_points, point_label
from repro.federation import (
    ROUTING_POLICIES,
    FederatedResult,
    FederatedSimulation,
    FederationConfig,
    FederationFaultConfig,
)

__all__ = [
    "ROUTING_POLICIES",
    "BASELINE_FED_FAULTS",
    "SHARED_COLUMNS",
    "build_federation",
    "federation_row",
    "federation_points",
    "federation_rows",
    "federation_smoke_rows",
    "degenerate_rows",
    "degenerate_tables",
    "run_degenerate_gate",
]
from repro.perf.parallel import parallel_map
from repro.sim import RandomStreams
from repro.workload.job import JobType

#: One federation sweep point: full config plus extra row fields.
FederationPoint = tuple[FederationConfig, dict]

DEFAULT_CELL_COUNTS = (1, 2, 4)
DEFAULT_STALENESS = (0.0, 60.0)
DEFAULT_INTENSITIES = (0.0, 1.0, 3.0)

#: The intensity-1.0 cell-fault mix. Blackout MTBF is per cell, so at a
#: two-hour horizon each cell sees roughly one blackout; partitions and
#: flaps are likewise per cell. ``FederationFaultConfig.scaled``
#: divides the MTBFs by the intensity.
BASELINE_FED_FAULTS = FederationFaultConfig(
    blackout_mtbf=2 * 3600.0,
    blackout_duration=600.0,
    partition_mtbf=3 * 3600.0,
    partition_duration=900.0,
    flap_mtbf=3600.0,
    flap_duration=60.0,
)

#: The columns shared with :func:`repro.experiments.sweeps.result_row`.
#: Over these, a 1-cell/zero-staleness/zero-intensity federation table
#: must be byte-identical to the single-cell ``omega`` table.
SHARED_COLUMNS = [
    "cluster",
    "rate_factor",
    "wait_batch",
    "wait_service",
    "busy_batch",
    "busy_batch_mad",
    "busy_service",
    "busy_service_mad",
    "conflict_batch",
    "conflict_service",
    "abandoned",
    "unscheduled_fraction",
    "utilization",
]


def build_federation(config: FederationConfig) -> FederatedSimulation:
    """Construct a federation with its master streams.

    The streams are created here — not inside ``repro.federation``,
    which sits under the fault-injection lint discipline (FIJ001) and
    must only ever *receive* entropy derived from the run's master seed.
    """
    return FederatedSimulation(
        config, streams=RandomStreams(config.cell_config.seed)
    )


def federation_row(result: FederatedResult, **extra) -> dict:
    """Flatten one federated run into a results-table row.

    Starts from the standard :func:`~repro.experiments.sweeps.
    result_row` columns (pooled across cells, degenerate-exact for one
    cell), then adds the federation-wide merged wait percentiles
    (satellite of ROADMAP item 3: ``Histogram.merge_state``) and the
    explicit job ledger.
    """
    row = {
        **extra,
        "wait_batch": result.mean_wait(JobType.BATCH),
        "wait_service": result.mean_wait(JobType.SERVICE),
        "busy_batch": result.busyness("batch"),
        "busy_batch_mad": result.busyness_mad("batch"),
        "busy_service": result.busyness("service"),
        "busy_service_mad": result.busyness_mad("service"),
        "conflict_batch": result.conflict_fraction("batch"),
        "conflict_service": result.conflict_fraction("service"),
        "abandoned": result.jobs_abandoned,
        "unscheduled_fraction": result.unscheduled_fraction,
        "utilization": result.final_cpu_utilization,
    }
    row.update(result.wait_percentiles())
    accounting = result.accounting
    row.update(
        submitted=accounting["submitted"],
        scheduled=accounting["scheduled"],
        pending=accounting["pending"],
        lost=accounting["lost_to_blackout"],
        migrated=result.jobs_migrated,
        rerouted=result.jobs_rerouted,
        blackouts=result.blackouts,
        partitions=result.partitions,
        flaps=result.flaps,
    )
    return row


def _federation_point(point: FederationPoint) -> dict:
    """Run one federation sweep point (parallel-worker body).

    Both post-run gates run here: per-cell invariant checks (raises on
    any cell-state inconsistency) and — inside
    :meth:`FederatedSimulation.run` itself — the front-door accounting
    invariant.
    """
    config, extra = point
    federation = build_federation(config)
    result = federation.run()
    federation.check_invariants()
    return federation_row(result, **extra)


def federation_points(
    cells: Sequence[int] = DEFAULT_CELL_COUNTS,
    staleness_values: Sequence[float] = DEFAULT_STALENESS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    policy: str = "least-loaded",
    cluster: str = "B",
    rate_factor: float = 1.0,
    horizon: float = 2 * 3600.0,
    seed: int = 3,
    scale: float = 0.2,
    faults: FederationFaultConfig = BASELINE_FED_FAULTS,
) -> list[FederationPoint]:
    """The cell-count x staleness x intensity grid.

    The per-cell template reuses :func:`~repro.experiments.sweeps.
    batch_load_points` verbatim (same preset scaling and decision-time
    dilation), which is what makes the 1-cell row the exact single-cell
    baseline.
    """
    points: list[FederationPoint] = []
    for num_cells in cells:
        for staleness in staleness_values:
            for intensity in intensities:
                cell_config, _ = batch_load_points(
                    (rate_factor,),
                    cluster=cluster,
                    horizon=horizon,
                    seed=seed,
                    scale=scale,
                    invariant_check_interval=horizon / 8.0,
                )[0]
                config = FederationConfig(
                    cell_config=cell_config,
                    num_cells=num_cells,
                    staleness=staleness,
                    policy=policy,
                    fault_config=faults.scaled(intensity),
                )
                points.append(
                    (
                        config,
                        {
                            "cluster": cluster,
                            "rate_factor": rate_factor,
                            "cells": num_cells,
                            "staleness": staleness,
                            "intensity": intensity,
                            "policy": policy,
                        },
                    )
                )
    return points


def federation_rows(
    cells: Sequence[int] = DEFAULT_CELL_COUNTS,
    staleness_values: Sequence[float] = DEFAULT_STALENESS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    policy: str = "least-loaded",
    cluster: str = "B",
    rate_factor: float = 1.0,
    horizon: float = 2 * 3600.0,
    seed: int = 3,
    scale: float = 0.2,
    faults: FederationFaultConfig = BASELINE_FED_FAULTS,
    jobs: int = 1,
) -> list[dict]:
    """Graceful-degradation table over the federation grid."""
    points = federation_points(
        cells=cells,
        staleness_values=staleness_values,
        intensities=intensities,
        policy=policy,
        cluster=cluster,
        rate_factor=rate_factor,
        horizon=horizon,
        seed=seed,
        scale=scale,
        faults=faults,
    )
    return parallel_map(
        _federation_point,
        points,
        jobs=jobs,
        labels=[point_label(extra) for _, extra in points],
    )


def federation_smoke_rows(seed: int = 3, jobs: int = 1) -> list[dict]:
    """The CI smoke variant: tiny cells, short horizon, the fault-free
    baseline plus one hostile intensity, both staleness regimes."""
    return federation_rows(
        cells=(1, 2),
        staleness_values=(0.0, 120.0),
        intensities=(0.0, 5.0),
        scale=0.05,
        horizon=1800.0,
        seed=seed,
        jobs=jobs,
    )


# ----------------------------------------------------------------------
# The degenerate-baseline gate
# ----------------------------------------------------------------------
def degenerate_rows(
    cluster: str = "B",
    rate_factor: float = 1.0,
    horizon: float = 1800.0,
    seed: int = 0,
    scale: float = 0.05,
    jobs: int = 1,
) -> tuple[list[dict], list[dict]]:
    """The 1-cell/zero-staleness/zero-intensity federation rows and the
    equivalent single-cell ``omega`` rows."""
    federated = federation_rows(
        cells=(1,),
        staleness_values=(0.0,),
        intensities=(0.0,),
        policy="round-robin",
        cluster=cluster,
        rate_factor=rate_factor,
        horizon=horizon,
        seed=seed,
        scale=scale,
        jobs=jobs,
    )
    single = single_run_rows(
        cluster=cluster,
        rate_factor=rate_factor,
        horizon=horizon,
        seed=seed,
        scale=scale,
        jobs=jobs,
    )
    return federated, single


def degenerate_tables(
    cluster: str = "B",
    rate_factor: float = 1.0,
    horizon: float = 1800.0,
    seed: int = 0,
    scale: float = 0.05,
    jobs: int = 1,
) -> tuple[str, str]:
    """Render the 1-cell/zero-staleness/zero-intensity federation table
    and the equivalent single-cell ``omega`` table over the shared
    columns. The two must be byte-identical."""
    federated, single = degenerate_rows(
        cluster=cluster,
        rate_factor=rate_factor,
        horizon=horizon,
        seed=seed,
        scale=scale,
        jobs=jobs,
    )
    return (
        format_table(federated, SHARED_COLUMNS),
        format_table(single, SHARED_COLUMNS),
    )


def run_degenerate_gate(
    cluster: str = "B",
    rate_factor: float = 1.0,
    horizon: float = 1800.0,
    seed: int = 0,
    scale: float = 0.05,
    jobs: int = 1,
) -> str:
    """Raise unless the degenerate federation reproduces the single-cell
    baseline byte-for-byte; returns the (shared) table on success."""
    federated, single = degenerate_tables(
        cluster=cluster,
        rate_factor=rate_factor,
        horizon=horizon,
        seed=seed,
        scale=scale,
        jobs=jobs,
    )
    if federated != single:
        raise RuntimeError(
            "degenerate-baseline gate failed: 1-cell zero-staleness "
            "zero-intensity federation table differs from the "
            f"single-cell omega table\n-- federation --\n{federated}\n"
            f"-- single-cell --\n{single}"
        )
    return federated
