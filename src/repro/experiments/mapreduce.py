"""Figures 15 and 16: the specialized MapReduce scheduler case study.

Expected shapes (paper section 6.2): 50-70 % of MapReduce jobs speed up
under opportunistic resources; the 80th-percentile speedup is ~3-4x for
max-parallelism; relative-job-size is close behind; global-cap only
helps on the small, lightly-loaded cluster D. Utilization under
max-parallelism runs higher and noticeably more variable (Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.common import DAY, LightweightConfig, LightweightSimulation
from repro.mapreduce import (
    AllocationPolicy,
    GlobalCapPolicy,
    MapReduceScheduler,
    MapReduceWorkload,
    MaxParallelismPolicy,
    NoAccelerationPolicy,
    RelativeJobSizePolicy,
)
from repro.mapreduce.model import REFERENCE_CELL_MACHINES
from repro.metrics.stats import ecdf
from repro.schedulers.base import DecisionTimeModel
from repro.workload.clusters import preset_by_name

DEFAULT_CLUSTERS = ("A", "C", "D")

#: "About 20% of jobs in Google are MapReduce ones": the MR stream runs
#: at a quarter of the batch rate, i.e. 20 % of all batch-side jobs.
MAPREDUCE_RATE_RATIO = 0.25


def default_policies() -> list[AllocationPolicy]:
    return [MaxParallelismPolicy(), RelativeJobSizePolicy(), GlobalCapPolicy()]


@dataclass
class MapReduceRun:
    """One cluster x policy simulation outcome."""

    cluster: str
    policy: str
    speedups: np.ndarray
    utilization_series: list[tuple[float, float, float]]

    @property
    def fraction_accelerated(self) -> float:
        if len(self.speedups) == 0:
            return float("nan")
        return float(np.mean(self.speedups > 1.001))

    def percentile(self, q: float) -> float:
        if len(self.speedups) == 0:
            return float("nan")
        return float(np.percentile(self.speedups, q))

    def cdf(self) -> tuple[np.ndarray, np.ndarray]:
        return ecdf(self.speedups)


def run_mapreduce_experiment(
    cluster: str,
    policy: AllocationPolicy,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    utilization_sample_interval: float = 300.0,
    initial_utilization: float | None = None,
) -> MapReduceRun:
    """Run the Omega architecture plus the specialized MapReduce
    scheduler under one allocation policy.

    The MapReduce stream is additional to the preset's batch stream
    (the paper's MR jobs were a subset of the existing workload), with
    configured worker counts shrunk to the cell size (see
    :data:`repro.mapreduce.model.REFERENCE_CELL_MACHINES`) so the extra
    load stays proportionate.
    """
    preset = preset_by_name(cluster)
    if scale != 1.0:
        preset = preset.scaled(scale)
    config = LightweightConfig(
        preset=preset,
        architecture="omega",
        horizon=horizon,
        seed=seed,
        utilization_sample_interval=utilization_sample_interval,
        initial_utilization=initial_utilization,
    )
    simulation = LightweightSimulation(config).build()
    scheduler = MapReduceScheduler(
        "mapreduce",
        simulation.sim,
        simulation.metrics,
        simulation.states[0],
        simulation.streams.stream("placement.mapreduce"),
        DecisionTimeModel(),
        policy,
    )
    workload = MapReduceWorkload(
        simulation.sim,
        rate=MAPREDUCE_RATE_RATIO * preset.batch.arrival_rate,
        rng=simulation.streams.stream("workload.mapreduce"),
        submit=scheduler.submit,
        horizon=horizon,
        worker_scale=preset.num_machines / REFERENCE_CELL_MACHINES,
    )
    workload.start()
    result = simulation.run()
    return MapReduceRun(
        cluster=cluster,
        policy=policy.name,
        speedups=np.asarray(scheduler.speedups),
        utilization_series=result.utilization_series,
    )


#: Standing utilization for the busy clusters in the MR experiments.
#: The paper notes cluster utilization on A and C "is usually above the
#: threshold" of the global-cap policy (60 %); D is lightly loaded and
#: keeps its preset fill (25 %).
BUSY_CLUSTER_FILL = 0.65


def _mr_fill(cluster: str) -> float | None:
    return None if cluster.upper().startswith("D") else BUSY_CLUSTER_FILL


def figure15_rows(
    clusters: Sequence[str] = DEFAULT_CLUSTERS,
    policies: Sequence[AllocationPolicy] | None = None,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
) -> list[dict]:
    """Per-job speedup distribution per cluster and policy."""
    if policies is None:
        policies = default_policies()
    rows = []
    for cluster in clusters:
        for policy in policies:
            run = run_mapreduce_experiment(
                cluster,
                policy,
                horizon=horizon,
                seed=seed,
                scale=scale,
                initial_utilization=_mr_fill(cluster),
            )
            rows.append(
                {
                    "cluster": cluster,
                    "policy": run.policy,
                    "jobs": len(run.speedups),
                    "frac_accelerated": run.fraction_accelerated,
                    "speedup_p50": run.percentile(50),
                    "speedup_p80": run.percentile(80),
                    "speedup_p95": run.percentile(95),
                }
            )
    return rows


def figure16_rows(
    cluster: str = "C",
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    sample_interval: float = 300.0,
) -> list[dict]:
    """Utilization time series, normal vs max-parallelism, plus the
    dispersion summary (max-parallelism should be higher and more
    variable)."""
    rows = []
    for policy in (NoAccelerationPolicy(), MaxParallelismPolicy()):
        run = run_mapreduce_experiment(
            cluster,
            policy,
            horizon=horizon,
            seed=seed,
            scale=scale,
            utilization_sample_interval=sample_interval,
            initial_utilization=_mr_fill(cluster),
        )
        cpu = np.array([u for _, u, _ in run.utilization_series])
        mem = np.array([u for _, _, u in run.utilization_series])
        rows.append(
            {
                "policy": run.policy,
                "samples": len(cpu),
                "cpu_util_mean": float(cpu.mean()) if len(cpu) else float("nan"),
                "cpu_util_std": float(cpu.std()) if len(cpu) else float("nan"),
                "mem_util_mean": float(mem.mean()) if len(mem) else float("nan"),
                "mem_util_std": float(mem.std()) if len(mem) else float("nan"),
            }
        )
    return rows
