"""Ablation drivers: design-choice experiments beyond the paper's plots.

Each function returns result rows; the corresponding benchmark under
``benchmarks/bench_ablation_*.py`` prints and asserts them, and the
``omega-sim ablation-*`` commands expose them on the CLI. See DESIGN.md
section 5 for the paper grounding of each ablation.

Every ablation is a list of independent configurations, so each driver
accepts ``jobs`` and fans its points out through
:func:`repro.experiments.sweeps.run_sweep` (or
:func:`repro.perf.parallel.parallel_map` for custom row shapes).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.experiments.common import LightweightConfig, run_lightweight
from repro.experiments.mesos import pathology_preset
from repro.experiments.sweeps import SweepPoint, point_label, run_sweep
from repro.perf.parallel import parallel_map
from repro.schedulers.base import DecisionTimeModel
from repro.workload.clusters import CLUSTER_A, CLUSTER_B
from repro.workload.job import JobType


def offer_policy_rows(
    t_jobs: Sequence[float] = (0.1, 100.0),
    horizon: float = 2 * 3600.0,
    seed: int = 11,
    attempt_limit: int = 200,
    jobs: int = 1,
) -> list[dict]:
    """Mesos offer-everything vs fair-share-sized offers (paper §4.2's
    discussion with the Mesos team) on the pathology workload."""
    preset = pathology_preset()
    points: list[SweepPoint] = []
    for offer_policy in ("all", "fair_share"):
        for t_job in t_jobs:
            config = LightweightConfig(
                preset=preset,
                architecture="mesos",
                horizon=horizon,
                seed=seed,
                service_model=DecisionTimeModel(t_job=t_job),
                mesos_offer_policy=offer_policy,
                attempt_limit=attempt_limit,
            )
            points.append(
                (config, {"offer_policy": offer_policy, "t_job_service": t_job})
            )
    return run_sweep(points, jobs=jobs)


def _contention_config(scale: float, horizon: float, **kwargs) -> LightweightConfig:
    """A conflict-heavy Omega configuration: many schedulers, high load,
    a fairly full cell."""
    preset = dataclasses.replace(
        CLUSTER_B.scaled(scale), initial_utilization=0.75
    )
    return LightweightConfig(
        preset=preset,
        architecture="omega",
        horizon=horizon,
        seed=5,
        num_batch_schedulers=16,
        batch_rate_factor=6.0,
        **kwargs,
    )


def retry_position_rows(
    scale: float = 0.2, horizon: float = 3600.0, jobs: int = 1
) -> list[dict]:
    """Conflicted-job requeue at the queue head (the paper's immediate
    retry) vs the tail."""
    points: list[SweepPoint] = [
        (
            _contention_config(
                scale, horizon, retry_conflicts_at_front=retry_at_front
            ),
            {"retry_position": "head" if retry_at_front else "tail"},
        )
        for retry_at_front in (True, False)
    ]
    return run_sweep(points, jobs=jobs)


def initial_utilization_rows(
    fills: Sequence[float] = (0.3, 0.6, 0.8),
    scale: float = 0.2,
    horizon: float = 3600.0,
    jobs: int = 1,
) -> list[dict]:
    """Conflict fraction vs standing cluster fullness."""
    preset = CLUSTER_B.scaled(scale)
    points: list[SweepPoint] = [
        (
            LightweightConfig(
                preset=preset,
                architecture="omega",
                horizon=horizon,
                seed=5,
                num_batch_schedulers=16,
                batch_rate_factor=6.0,
                initial_utilization=fill,
            ),
            {"initial_utilization": fill},
        )
        for fill in fills
    ]
    return run_sweep(points, jobs=jobs)


def _preemption_point(point: tuple[bool, LightweightConfig]) -> dict:
    """Run one preemption on/off point (parallel-worker body)."""
    enabled, config = point
    result = run_lightweight(config)
    return {
        "preemption": "on" if enabled else "off",
        "wait_service": result.mean_wait(JobType.SERVICE),
        "wait_batch": result.mean_wait(JobType.BATCH),
        "tasks_preempted": result.preemptions_caused("service"),
        "batch_tasks_lost": result.tasks_lost_to_preemption("batch"),
        "unscheduled_fraction": result.unscheduled_fraction,
        "utilization": result.final_cpu_utilization,
    }


def preemption_rows(
    scale: float = 0.2, horizon: float = 2 * 3600.0, seed: int = 3, jobs: int = 1
) -> list[dict]:
    """Priority preemption on vs off on a nearly-full cell."""
    preset = dataclasses.replace(
        CLUSTER_A.scaled(scale), initial_utilization=0.85
    )
    points = [
        (
            enabled,
            LightweightConfig(
                preset=preset,
                architecture="omega",
                horizon=horizon,
                seed=seed,
                enable_preemption=enabled,
            ),
        )
        for enabled in (False, True)
    ]
    return parallel_map(
        _preemption_point,
        points,
        jobs=jobs,
        labels=[
            point_label({"preemption": "on" if enabled else "off"})
            for enabled, _ in points
        ],
    )


def placement_strategy_rows(
    strategies: Sequence[str] = ("worst-fit", "random-first-fit", "best-fit"),
    scale: float = 0.2,
    horizon: float = 3600.0,
    jobs: int = 1,
) -> list[dict]:
    """Placement strategy vs interference (why the paper's hifi
    simulator conflicts more than its lightweight one)."""
    points: list[SweepPoint] = [
        (
            _contention_config(scale, horizon, placement_strategy=strategy),
            {"placement_strategy": strategy},
        )
        for strategy in strategies
    ]
    return run_sweep(points, jobs=jobs)


def backoff_rows(
    cooldowns: Sequence[float] = (0.0, 5.0, 30.0),
    scale: float = 0.2,
    horizon: float = 3600.0,
    jobs: int = 1,
) -> list[dict]:
    """OCC hot-machine backoff windows (paper §8 future work)."""
    points: list[SweepPoint] = [
        (
            _contention_config(
                scale, horizon, conflict_avoidance_cooldown=cooldown
            ),
            {"cooldown_s": cooldown},
        )
        for cooldown in cooldowns
    ]
    return run_sweep(points, jobs=jobs)
