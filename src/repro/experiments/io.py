"""Saving and loading experiment result rows.

Experiment drivers return plain row dicts; this module persists them as
JSON (with a metadata envelope) or CSV so runs can be compared across
machines, scales and code versions. The ``omega-sim`` CLI exposes this
via ``--output``.

Writes are atomic (temp-file + fsync + rename, see
:mod:`repro.recovery.artifacts`): a crashed or killed run can never
leave a truncated result file behind — the output path either holds the
complete previous table or the complete new one. JSON envelopes embed a
``content_hash`` that :func:`load_rows` verifies, so corruption after
the write (disk faults, partial copies, manual edits) fails loudly
instead of silently skewing comparisons.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any

from repro.recovery.artifacts import (
    atomic_write_text,
    load_json_artifact,
    write_json_artifact,
)

#: Envelope format version, bumped on breaking changes.
FORMAT_VERSION = 1


def save_rows(
    rows: list[dict],
    path: str | Path,
    experiment: str = "",
    parameters: dict[str, Any] | None = None,
) -> Path:
    """Atomically write rows to ``path``; the suffix picks the format.

    ``.json`` wraps the rows in an envelope carrying the experiment name,
    parameters and a ``content_hash``; ``.csv`` writes a flat table (the
    union of all row keys, in first-seen order).
    """
    path = Path(path)
    if path.suffix == ".json":
        envelope = {
            "format_version": FORMAT_VERSION,
            "experiment": experiment,
            "parameters": parameters or {},
            "rows": rows,
        }
        write_json_artifact(path, envelope)
    elif path.suffix == ".csv":
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        buffer = io.StringIO(newline="")
        writer = csv.DictWriter(buffer, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
        atomic_write_text(path, buffer.getvalue())
    else:
        raise ValueError(
            f"unsupported output format {path.suffix!r}; use .json or .csv"
        )
    return path


def load_rows(path: str | Path) -> list[dict]:
    """Read rows written by :func:`save_rows`.

    JSON restores the exact values (verifying the envelope's
    ``content_hash`` when present; a mismatch raises
    :class:`~repro.recovery.artifacts.ArtifactError`); CSV values come
    back as strings (or floats where they parse cleanly), which is
    sufficient for comparisons and plotting.
    """
    path = Path(path)
    if path.suffix == ".json":
        envelope = load_json_artifact(
            path, description="result table", require=("rows",)
        )
        version = envelope.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format_version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        return envelope["rows"]
    if path.suffix == ".csv":
        with path.open("r", newline="", encoding="utf-8") as handle:
            rows = []
            for record in csv.DictReader(handle):
                parsed: dict[str, Any] = {}
                for key, value in record.items():
                    try:
                        parsed[key] = float(value)
                    except (TypeError, ValueError):
                        parsed[key] = value
                rows.append(parsed)
            return rows
    raise ValueError(f"unsupported input format {path.suffix!r}; use .json or .csv")
