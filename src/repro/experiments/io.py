"""Saving and loading experiment result rows.

Experiment drivers return plain row dicts; this module persists them as
JSON (with a metadata envelope) or CSV so runs can be compared across
machines, scales and code versions. The ``omega-sim`` CLI exposes this
via ``--output``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

#: Envelope format version, bumped on breaking changes.
FORMAT_VERSION = 1


def save_rows(
    rows: list[dict],
    path: str | Path,
    experiment: str = "",
    parameters: dict[str, Any] | None = None,
) -> Path:
    """Write rows to ``path``; the suffix picks the format.

    ``.json`` wraps the rows in an envelope carrying the experiment name
    and parameters; ``.csv`` writes a flat table (the union of all row
    keys, in first-seen order).
    """
    path = Path(path)
    if path.suffix == ".json":
        envelope = {
            "format_version": FORMAT_VERSION,
            "experiment": experiment,
            "parameters": parameters or {},
            "rows": rows,
        }
        path.write_text(json.dumps(envelope, indent=2, sort_keys=False) + "\n")
    elif path.suffix == ".csv":
        columns: list[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
    else:
        raise ValueError(
            f"unsupported output format {path.suffix!r}; use .json or .csv"
        )
    return path


def load_rows(path: str | Path) -> list[dict]:
    """Read rows written by :func:`save_rows`.

    JSON restores the exact values; CSV values come back as strings
    (or floats where they parse cleanly), which is sufficient for
    comparisons and plotting.
    """
    path = Path(path)
    if path.suffix == ".json":
        envelope = json.loads(path.read_text())
        version = envelope.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format_version {version!r} "
                f"(expected {FORMAT_VERSION})"
            )
        return envelope["rows"]
    if path.suffix == ".csv":
        with path.open("r", newline="", encoding="utf-8") as handle:
            rows = []
            for record in csv.DictReader(handle):
                parsed: dict[str, Any] = {}
                for key, value in record.items():
                    try:
                        parsed[key] = float(value)
                    except (TypeError, ValueError):
                        parsed[key] = value
                rows.append(parsed)
            return rows
    raise ValueError(f"unsupported input format {path.suffix!r}; use .json or .csv")
