"""``omega-sim``: command-line front end for the experiment drivers.

Examples::

    omega-sim fig8 --scale 0.25 --hours 3
    omega-sim fig15 --hours 6
    omega-sim table1

Every command prints the same rows the corresponding benchmark emits;
``--scale`` shrinks the cell (and arrival rates with it), ``--hours``
sets the simulated horizon.

Observability (see ``docs/OBSERVABILITY.md``): every command accepts
``--trace FILE`` to record a structured JSONL trace of the run,
``--timeline-interval SECONDS`` to sample ``timeline.*`` telemetry
series (utilization, busy fraction, conflict rate) on the simulated
clock, and ``--verbose`` to print engine statistics. ``omega-sim
omega`` runs a single Omega operating point, the natural target for
tracing. Consumers: ``omega-sim trace FILE`` summarizes a trace
(``--json`` for the machine-readable rollup), ``omega-sim perfetto
FILE`` converts it to Chrome/Perfetto trace-event JSON for
ui.perfetto.dev, and ``omega-sim report FILE...`` renders a
self-contained HTML report with SVG charts and percentile tables.

Static analysis (see ``docs/STATIC_ANALYSIS.md``): ``omega-sim lint
[PATHS]`` runs the omega-lint rule pass (determinism,
transaction-safety and resource-arithmetic invariants) and exits
non-zero on findings; ``--format json`` emits a machine-readable
report.

Performance (see ``docs/PERFORMANCE.md``): sweep commands accept
``--jobs N`` to fan independent sweep points across worker processes
(results are byte-identical to ``--jobs 1``); ``omega-sim bench`` runs
the curated performance benchmarks and regression gate.

Recovery (see ``docs/RECOVERY.md``): sweep commands accept
``--checkpoint DIR`` to durably log each completed sweep point;
``--resume`` continues an interrupted run from that directory, skipping
completed points (the final table and trace are identical to an
uninterrupted run). ``--point-timeout`` / ``--point-attempts`` bound
how long and how often a sweep point may run; worker crashes are
retried and surface as ``recovery.*`` trace events.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable

from repro import obs
from repro.analysis import cli as lint
from repro.analysis import sanitizer as _san
from repro.obs import timeline as obs_timeline
from repro.experiments import ablations, conflict_modes, hifi_perf, mesos, monolithic
from repro.experiments import conflict_avoidance as conflict_avoidance_experiments
from repro.experiments import federation as federation_experiments
from repro.experiments import mapreduce as mapreduce_experiments
from repro.experiments import omega as omega_experiments
from repro.experiments import resilience as resilience_experiments
from repro.experiments import sweep3d, tables, workload_char
from repro.experiments.common import format_table
from repro.experiments.io import save_rows
from repro.faults.retry import RETRY_POLICIES
from repro.metrics.ascii_chart import line_chart
from repro.perf.parallel import resolve_jobs
from repro.recovery import (
    DEFAULT_POLICY,
    CheckpointStore,
    PointFailure,
    RecoveryContext,
    RecoveryError,
    RunManifest,
    SupervisorPolicy,
    activate,
)


def _scaled_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {
        "horizon": args.hours * 3600.0,
        "seed": args.seed,
        "scale": args.scale,
    }
    if args.command in JOBS_COMMANDS:
        kwargs["jobs"] = args.jobs
    return kwargs


def _cmd_fig2(args) -> list[dict]:
    return workload_char.figure2_rows(samples=args.samples, seed=args.seed)


def _cmd_fig3(args) -> list[dict]:
    return workload_char.figure3_rows(samples=args.samples, seed=args.seed)


def _cmd_fig4(args) -> list[dict]:
    return workload_char.figure4_rows(samples=args.samples, seed=args.seed)


def _cmd_fig5a(args) -> list[dict]:
    return monolithic.figure5a_6a_rows(**_scaled_kwargs(args))


def _cmd_fig5b(args) -> list[dict]:
    return monolithic.figure5b_6b_rows(**_scaled_kwargs(args))


def _cmd_partitioned(args) -> list[dict]:
    return monolithic.partitioned_rows(**_scaled_kwargs(args))


def _cmd_fig7(args) -> list[dict]:
    return mesos.figure7_rows(**_scaled_kwargs(args))


def _cmd_fig5c(args) -> list[dict]:
    return omega_experiments.figure5c_6c_rows(**_scaled_kwargs(args))


def _cmd_fig8(args) -> list[dict]:
    rows = omega_experiments.figure8_rows(**_scaled_kwargs(args))
    points = omega_experiments.figure8_saturation_points(rows)
    print(f"saturation points (relative lambda_batch): {points}", file=sys.stderr)
    return rows


def _cmd_fig9(args) -> list[dict]:
    return omega_experiments.figure9_rows(**_scaled_kwargs(args))


def _cmd_omega(args) -> list[dict]:
    return omega_experiments.single_run_rows(
        cluster=args.cluster,
        rate_factor=args.rate_factor,
        smoke=args.smoke,
        predictor=args.predictor,
        **_scaled_kwargs(args),
    )


def _cmd_fig10(args) -> list[dict]:
    return sweep3d.figure10_rows(**_scaled_kwargs(args))


def _cmd_fig11(args) -> list[dict]:
    return hifi_perf.figure11_rows(**_scaled_kwargs(args))


def _cmd_fig12(args) -> list[dict]:
    return hifi_perf.figure12_rows(**_scaled_kwargs(args))


def _cmd_fig13(args) -> list[dict]:
    rows = hifi_perf.figure13_rows(**_scaled_kwargs(args))
    shift = hifi_perf.figure13_saturation_shift(rows)
    print(f"saturation shift: {shift}", file=sys.stderr)
    return rows


def _cmd_fig14(args) -> list[dict]:
    return conflict_modes.figure14_rows(**_scaled_kwargs(args))


def _cmd_fig15(args) -> list[dict]:
    return mapreduce_experiments.figure15_rows(**_scaled_kwargs(args))


def _cmd_fig16(args) -> list[dict]:
    return mapreduce_experiments.figure16_rows(
        cluster="C", **_scaled_kwargs(args)
    )


def _cmd_ablation_offer(args) -> list[dict]:
    return ablations.offer_policy_rows(
        horizon=args.hours * 3600.0, seed=args.seed, jobs=args.jobs
    )


def _cmd_ablation_retry(args) -> list[dict]:
    return ablations.retry_position_rows(
        scale=args.scale, horizon=args.hours * 3600.0, jobs=args.jobs
    )


def _cmd_ablation_util(args) -> list[dict]:
    return ablations.initial_utilization_rows(
        scale=args.scale, horizon=args.hours * 3600.0, jobs=args.jobs
    )


def _cmd_ablation_preemption(args) -> list[dict]:
    return ablations.preemption_rows(
        scale=args.scale, horizon=args.hours * 3600.0, seed=args.seed,
        jobs=args.jobs,
    )


def _cmd_ablation_backoff(args) -> list[dict]:
    return ablations.backoff_rows(
        scale=args.scale, horizon=args.hours * 3600.0, jobs=args.jobs
    )


def _cmd_ablation_placement(args) -> list[dict]:
    return ablations.placement_strategy_rows(
        scale=args.scale, horizon=args.hours * 3600.0, jobs=args.jobs
    )


def _cmd_resilience(args) -> list[dict]:
    if args.smoke:
        return resilience_experiments.resilience_smoke_rows(
            seed=args.seed, jobs=args.jobs
        )
    intensities = tuple(float(value) for value in args.intensities.split(","))
    return resilience_experiments.resilience_rows(
        intensities=intensities,
        policy=args.policy,
        predictor=args.predictor,
        **_scaled_kwargs(args),
    )


def _cmd_conflict_avoidance(args) -> list[dict]:
    if args.smoke:
        return conflict_avoidance_experiments.conflict_avoidance_smoke_rows(
            seed=args.seed, jobs=args.jobs
        )
    factors = tuple(float(value) for value in args.factors.split(","))
    intensities = tuple(float(value) for value in args.intensities.split(","))
    return conflict_avoidance_experiments.conflict_avoidance_rows(
        factors=factors, intensities=intensities, **_scaled_kwargs(args)
    )


def _cmd_federation(args) -> list[dict]:
    if args.degenerate_gate:
        federated, single = federation_experiments.degenerate_rows(
            seed=args.seed,
            scale=args.scale,
            horizon=args.hours * 3600.0,
            jobs=args.jobs,
        )
        columns = federation_experiments.SHARED_COLUMNS
        if format_table(federated, columns) != format_table(single, columns):
            print(
                "omega-sim federation: degenerate-baseline gate FAILED — "
                "the 1-cell zero-staleness zero-intensity federation table "
                "differs from the single-cell omega table",
                file=sys.stderr,
            )
            print(format_table(federated, columns), file=sys.stderr)
            print(format_table(single, columns), file=sys.stderr)
            raise SystemExit(1)
        print(
            "federation: degenerate-baseline gate OK (1-cell federation is "
            "byte-identical to the single-cell omega baseline)",
            file=sys.stderr,
        )
        return federated
    if args.smoke:
        return federation_experiments.federation_smoke_rows(
            seed=args.seed, jobs=args.jobs
        )
    cells = tuple(int(value) for value in args.cells.split(","))
    staleness = tuple(float(value) for value in args.staleness.split(","))
    intensities = tuple(float(value) for value in args.intensities.split(","))
    return federation_experiments.federation_rows(
        cells=cells,
        staleness_values=staleness,
        intensities=intensities,
        policy=args.policy,
        **_scaled_kwargs(args),
    )


def _cmd_validate(args) -> list[dict]:
    from repro.workload.validation import validate_all

    return [report.as_row() for report in validate_all()]


def _cmd_table1(args) -> list[dict]:
    return tables.table1_rows()


def _cmd_table2(args) -> list[dict]:
    return tables.table2_rows()


COMMANDS: dict[str, tuple[Callable, str]] = {
    "fig2": (_cmd_fig2, "workload shares: jobs/tasks/CPU/RAM, batch vs service"),
    "fig3": (_cmd_fig3, "CDFs of job runtime and inter-arrival time"),
    "fig4": (_cmd_fig4, "CDF of tasks per job"),
    "fig5a": (_cmd_fig5a, "monolithic single-path: wait time & busyness sweep"),
    "fig5b": (_cmd_fig5b, "monolithic multi-path: wait time & busyness sweep"),
    "fig5c": (_cmd_fig5c, "shared-state Omega: wait time & busyness sweep"),
    "partitioned": (_cmd_partitioned, "statically partitioned scheduler sweep"),
    "fig7": (_cmd_fig7, "two-level (Mesos): wait, busyness, abandoned jobs"),
    "fig8": (_cmd_fig8, "Omega: scaling the batch arrival rate"),
    "fig9": (_cmd_fig9, "Omega: 1-32 load-balanced batch schedulers"),
    "omega": (_cmd_omega, "one Omega run at a single operating point "
              "(pairs with --trace/--timeline-interval)"),
    "fig10": (_cmd_fig10, "busyness surfaces for all five schemes"),
    "fig11": (_cmd_fig11, "hifi: service busyness over t_job x t_task (C)"),
    "fig12": (_cmd_fig12, "hifi: cluster B sweep w/ conflict fraction"),
    "fig13": (_cmd_fig13, "hifi: 3 batch schedulers vs 1 (cluster C)"),
    "fig14": (_cmd_fig14, "conflict detection/commit granularity choices"),
    "fig15": (_cmd_fig15, "MapReduce speedup CDFs per policy"),
    "fig16": (_cmd_fig16, "utilization time series, normal vs max-parallel"),
    "table1": (_cmd_table1, "comparison of scheduling approaches"),
    "table2": (_cmd_table2, "lightweight vs high-fidelity simulator"),
    "ablation-offer": (_cmd_ablation_offer, "Mesos offer-all vs fair-share offers"),
    "ablation-retry": (_cmd_ablation_retry, "conflict retry at queue head vs tail"),
    "ablation-util": (_cmd_ablation_util, "conflict fraction vs standing utilization"),
    "ablation-preemption": (_cmd_ablation_preemption, "priority preemption on vs off"),
    "ablation-backoff": (_cmd_ablation_backoff, "OCC hot-machine backoff windows"),
    "ablation-placement": (
        _cmd_ablation_placement,
        "placement strategy vs conflict fraction",
    ),
    "resilience": (
        _cmd_resilience,
        "fault-injected degradation: architecture x fault intensity",
    ),
    "conflict-avoidance": (
        _cmd_conflict_avoidance,
        "predictive conflict avoidance: predictor on/off x operating "
        "point x fault intensity",
    ),
    "federation": (
        _cmd_federation,
        "federated multi-cell Omega: cell count x aggregate staleness x "
        "cell-fault intensity (blackouts, feed partitions, link flaps)",
    ),
    "validate": (_cmd_validate, "sanity-check the cluster presets"),
}

#: Commands whose sweep points fan out across worker processes with
#: --jobs N (see repro.perf.parallel); the rest run serially and say so.
JOBS_COMMANDS = frozenset(
    {
        "fig5a",
        "fig5b",
        "fig5c",
        "partitioned",
        "fig7",
        "fig8",
        "fig9",
        "omega",
        "fig10",
        "fig14",
        "ablation-offer",
        "ablation-retry",
        "ablation-util",
        "ablation-preemption",
        "ablation-backoff",
        "ablation-placement",
        "resilience",
        "conflict-avoidance",
        "federation",
    }
)


#: Commands that can render an ASCII chart with --plot:
#: command -> (series-key column, x column, y column, log_x, log_y, title).
PLOTS = {
    "fig5a": ("cluster", "t_job_service", "wait_batch", True, True,
              "Figure 5a: mean batch wait vs t_job (single-path)"),
    "fig5b": ("cluster", "t_job_service", "wait_batch", True, True,
              "Figure 5b: mean batch wait vs t_job(service) (multi-path)"),
    "fig5c": ("cluster", "t_job_service", "wait_batch", True, True,
              "Figure 5c: mean batch wait vs t_job(service) (shared state)"),
    "fig7": ("cluster", "t_job_service", "busy_batch", True, False,
             "Figure 7b: batch framework busyness vs t_job(service) (Mesos)"),
    "fig8": ("cluster", "rate_factor", "busy_batch", False, False,
             "Figure 8b: batch busyness vs relative lambda(batch)"),
    "fig9": ("num_batch_schedulers", "rate_factor", "conflict_batch", False, False,
             "Figure 9a: conflict fraction vs relative lambda(batch)"),
    "fig12": (None, "t_job_service", "conflict_service", True, False,
              "Figure 12b: service conflict fraction vs t_job(service)"),
    "fig14": ("mode", "t_job_service", "conflict_service", True, True,
              "Figure 14a: conflict fraction by detection/commit mode"),
    "ablation-util": (None, "initial_utilization", "conflict_batch", False, False,
                      "Conflict fraction vs standing utilization"),
    "ablation-backoff": (None, "cooldown_s", "conflict_batch", False, False,
                         "Conflict fraction vs hot-machine backoff window"),
    "resilience": ("architecture", "intensity", "wait_batch", False, False,
                   "Resilience: mean batch wait vs fault intensity"),
    "federation": ("cells", "intensity", "wait_batch", False, False,
                   "Federation: mean batch wait vs cell-fault intensity"),
}


def render_plot(command: str, rows: list[dict]) -> str | None:
    """Build the --plot chart for a command from its result rows."""
    spec = PLOTS.get(command)
    if spec is None or not rows:
        return None
    key_column, x_column, y_column, log_x, log_y, title = spec
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        label = str(row[key_column]) if key_column else y_column
        series.setdefault(label, []).append((row[x_column], row[y_column]))
    try:
        return line_chart(
            series, title=title, x_label=x_column, y_label=y_column,
            log_x=log_x, log_y=log_y,
        )
    except ValueError:
        return None  # e.g. every y was 0 on a log axis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="omega-sim",
        description="Regenerate the tables and figures of the Omega paper "
        "(EuroSys 2013) from the reproduction simulators.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name, (_, help_text) in COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument(
            "--scale",
            type=float,
            default=0.25,
            help="cell scale factor (1.0 = paper-size presets)",
        )
        sub.add_argument(
            "--hours", type=float, default=2.0, help="simulated horizon in hours"
        )
        sub.add_argument("--seed", type=int, default=0, help="master RNG seed")
        sub.add_argument(
            "--samples",
            type=int,
            default=50_000,
            help="Monte Carlo samples (characterization figures only)",
        )
        sub.add_argument(
            "--plot",
            action="store_true",
            help="also render an ASCII chart of the headline series "
            "(supported commands only)",
        )
        sub.add_argument(
            "--output",
            metavar="FILE",
            help="also save the rows to FILE (.json or .csv)",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for independent sweep points "
            "(0 = all cores; results are identical to --jobs 1)",
        )
        sub.add_argument(
            "--trace",
            metavar="FILE",
            help="record a structured JSONL trace of every simulation run "
            "(summarize it later with `omega-sim trace FILE`)",
        )
        sub.add_argument(
            "--verbose",
            action="store_true",
            help="also print simulator engine statistics "
            "(events processed, peak queue depth, wall seconds)",
        )
        sub.add_argument(
            "--timeline-interval",
            type=float,
            default=None,
            metavar="SECONDS",
            help="sample timeline.* telemetry (cell utilization, queue "
            "depth, busy fraction, conflict rate) every this many "
            "simulated seconds; records land in the --trace file",
        )
        sub.add_argument(
            "--sanitize",
            action="store_true",
            help="run under omega-san, the transaction-isolation "
            "sanitizer: every run fails fast (exit 1) on a "
            "write-outside-commit, stale-snapshot-read, "
            "foreign-snapshot-write, or non-serializable commit "
            "(see docs/STATIC_ANALYSIS.md)",
        )
        if name in JOBS_COMMANDS:
            sub.add_argument(
                "--checkpoint",
                metavar="DIR",
                help="durably log each completed sweep point to DIR "
                "(manifest + append-only JSONL); an interrupted run "
                "continues with --resume",
            )
            sub.add_argument(
                "--resume",
                action="store_true",
                help="resume the run recorded in --checkpoint DIR, skipping "
                "completed points; refuses (exit 2) if the experiment, "
                "seed or parameters changed",
            )
            sub.add_argument(
                "--point-timeout",
                type=float,
                default=None,
                metavar="SECONDS",
                help="kill and retry any sweep point running longer than "
                "this many wall seconds (requires --jobs >= 2)",
            )
            sub.add_argument(
                "--point-attempts",
                type=int,
                default=DEFAULT_POLICY.max_attempts,
                metavar="N",
                help="attempts per sweep point before the run fails, for "
                "points lost to worker crashes or timeouts "
                f"(default {DEFAULT_POLICY.max_attempts})",
            )
        if name == "omega":
            sub.add_argument(
                "--cluster",
                default="B",
                help="cluster preset letter (default B)",
            )
            sub.add_argument(
                "--rate-factor",
                type=float,
                default=1.0,
                help="relative batch arrival-rate multiplier",
            )
            sub.add_argument(
                "--smoke",
                action="store_true",
                help="CI smoke variant: 5%% cell, 30 simulated minutes "
                "(ignores --scale/--hours)",
            )
            sub.add_argument(
                "--predictor",
                action="store_true",
                help="enable predictive conflict avoidance: contention-"
                "aware placement steering plus the predictive "
                "escalation retry policy (see docs/RESILIENCE.md)",
            )
        if name == "resilience":
            sub.add_argument(
                "--intensities",
                default=",".join(
                    str(value)
                    for value in resilience_experiments.DEFAULT_INTENSITIES
                ),
                help="comma-separated fault-intensity multipliers "
                "(0 = fault-free baseline)",
            )
            sub.add_argument(
                "--policy",
                choices=RETRY_POLICIES,
                default="immediate",
                help="Omega conflict-retry policy (immediate reproduces the "
                "historical behavior; see docs/RESILIENCE.md)",
            )
            sub.add_argument(
                "--smoke",
                action="store_true",
                help="CI smoke variant: tiny cell, short horizon, two "
                "intensities, starvation-escalation policy",
            )
            sub.add_argument(
                "--predictor",
                action="store_true",
                help="also steer placement with a conflict predictor "
                "(independent of --policy; --policy predictive implies "
                "it)",
            )
        if name == "federation":
            sub.add_argument(
                "--cells",
                default=",".join(
                    str(value)
                    for value in federation_experiments.DEFAULT_CELL_COUNTS
                ),
                help="comma-separated federation sizes (member cells)",
            )
            sub.add_argument(
                "--staleness",
                default=",".join(
                    str(value)
                    for value in federation_experiments.DEFAULT_STALENESS
                ),
                help="comma-separated aggregate-view staleness intervals in "
                "simulated seconds (0 = the router reads live digests)",
            )
            sub.add_argument(
                "--intensities",
                default=",".join(
                    str(value)
                    for value in federation_experiments.DEFAULT_INTENSITIES
                ),
                help="comma-separated cell-fault intensity multipliers over "
                "the federation baseline mix (0 = fault-free)",
            )
            sub.add_argument(
                "--policy",
                choices=federation_experiments.ROUTING_POLICIES,
                default="least-loaded",
                help="front-door routing policy (see docs/FEDERATION.md)",
            )
            sub.add_argument(
                "--smoke",
                action="store_true",
                help="CI smoke variant: tiny cells, short horizon, 1-2 "
                "cells, fault-free and hostile intensities",
            )
            sub.add_argument(
                "--degenerate-gate",
                action="store_true",
                help="run the degenerate-baseline gate instead of the "
                "sweep: a 1-cell/zero-staleness/zero-fault federation "
                "must reproduce the single-cell omega table "
                "byte-for-byte (exit 1 on any difference)",
            )
        if name == "conflict-avoidance":
            sub.add_argument(
                "--factors",
                default=",".join(
                    str(value)
                    for value in conflict_avoidance_experiments.DEFAULT_FACTORS
                ),
                help="comma-separated relative batch arrival-rate factors "
                "(Figure-8 operating points)",
            )
            sub.add_argument(
                "--intensities",
                default=",".join(
                    str(value)
                    for value in conflict_avoidance_experiments.DEFAULT_INTENSITIES
                ),
                help="comma-separated fault-intensity multipliers over the "
                "resilience baseline mix (0 = fault-free)",
            )
            sub.add_argument(
                "--smoke",
                action="store_true",
                help="CI smoke variant: tiny cell, short horizon, one "
                "operating point, predictor on and off",
            )

    lint_parser = subparsers.add_parser(
        "lint",
        help="run omega-lint, the domain static-analysis pass "
        "(determinism, transaction-safety, and resource-arithmetic "
        "rules; see docs/STATIC_ANALYSIS.md)",
    )
    lint.add_lint_arguments(lint_parser)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the curated performance benchmarks and regression gate "
        "(snapshot resync, placement packing, batched commit, paper-scale "
        "sweep, event-loop throughput, serial-vs-parallel sweep; see "
        "docs/PERFORMANCE.md)",
    )
    bench_parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale sizes; timing floors are reported, not enforced",
    )
    bench_parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the serial-vs-parallel sweep benchmark",
    )
    bench_parser.add_argument(
        "--output", metavar="FILE", help="write the result JSON to FILE"
    )
    bench_parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="committed baseline JSON to gate against (e.g. BENCH_PR3.json)",
    )
    bench_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative throughput-regression tolerance vs the baseline",
    )
    bench_parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="compare two saved result JSONs (delta table) instead of "
        "running benchmarks; exits 2 on corrupt or schema-invalid inputs",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="summarize a JSONL trace recorded with --trace: per-scheduler "
        "conflict fraction, busy-time breakdown, conflict timelines, "
        "retry chains",
    )
    trace_parser.add_argument("file", help="JSONL trace file to summarize")
    trace_parser.add_argument(
        "--jobs", type=int, default=5, help="retry chains to show (longest first)"
    )
    trace_parser.add_argument(
        "--bins", type=int, default=12, help="conflict-timeline bins"
    )
    trace_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable rollup (scheduler rows, "
        "percentiles, conflict timelines, timeline.* series) as JSON "
        "instead of the text report",
    )

    perfetto_parser = subparsers.add_parser(
        "perfetto",
        help="convert a JSONL trace to Chrome/Perfetto trace-event JSON "
        "(open the result in ui.perfetto.dev): spans and sched.busy "
        "intervals become duration events, timeline.* samples become "
        "counter tracks",
    )
    perfetto_parser.add_argument("file", help="JSONL trace file to convert")
    perfetto_parser.add_argument(
        "--output",
        metavar="FILE",
        help="output path (default: INPUT.perfetto.json)",
    )

    report_parser = subparsers.add_parser(
        "report",
        help="render JSONL trace(s) as a self-contained static HTML "
        "report: timeline charts (inline SVG), per-scheduler percentile "
        "tables, conflict timelines; several traces compare side by side",
    )
    report_parser.add_argument(
        "files", nargs="+", metavar="FILE", help="JSONL trace file(s)"
    )
    report_parser.add_argument(
        "--output",
        metavar="FILE",
        default="report.html",
        help="output path (default: report.html)",
    )
    return parser


def _verbose_stats_table() -> str:
    """Engine statistics accumulated over every run of this command."""
    snapshot = obs.get_registry().snapshot(prefix="sim.")
    rows = [{"stat": name, "value": value} for name, value in snapshot.items()]
    if not rows:
        return "(no simulator statistics recorded)"
    return format_table(rows)


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        summary = obs.summarize_file(args.file)
        if args.json:
            import json

            report = json.dumps(
                summary.json_rollup(top_jobs=args.jobs, bins=args.bins),
                indent=2,
                sort_keys=True,
            )
        else:
            report = summary.render(top_jobs=args.jobs, bins=args.bins)
    except (OSError, ValueError) as exc:
        print(f"omega-sim trace: {exc}", file=sys.stderr)
        return 2
    try:
        print(report)
    except BrokenPipeError:
        # Reports are long; piping into `head`/`less -F` is routine.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _cmd_perfetto(args: argparse.Namespace) -> int:
    from repro.obs.perfetto import export_file

    output = args.output or f"{args.file}.perfetto.json"
    try:
        count = export_file(args.file, output)
    except (OSError, ValueError) as exc:
        print(f"omega-sim perfetto: {exc}", file=sys.stderr)
        return 2
    print(
        f"perfetto: {count} trace events written to {output} "
        "(open in ui.perfetto.dev)",
        file=sys.stderr,
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import write_report

    try:
        size = write_report(args.files, args.output)
    except (OSError, ValueError) as exc:
        print(f"omega-sim report: {exc}", file=sys.stderr)
        return 2
    print(
        f"report: {len(args.files)} trace(s) rendered to {args.output} "
        f"({size} bytes)",
        file=sys.stderr,
    )
    return 0


def _manifest_parameters(args: argparse.Namespace) -> dict:
    """The result-determining parameters recorded in a run manifest.

    ``--jobs`` is deliberately absent: parallelism does not change the
    rows, so a sweep checkpointed with ``--jobs 8`` may resume serially.
    """
    parameters = {
        "scale": args.scale,
        "hours": args.hours,
    }
    # Only recorded when set: sampling changes the trace, so a resume
    # must match, but older checkpoints (no such key) stay resumable.
    if getattr(args, "timeline_interval", None) is not None:
        parameters["timeline_interval"] = args.timeline_interval
    if args.command == "omega":
        parameters["cluster"] = args.cluster
        parameters["rate_factor"] = args.rate_factor
        parameters["smoke"] = bool(args.smoke)
        # Only recorded when on, so pre-predictor checkpoints resume.
        if getattr(args, "predictor", False):
            parameters["predictor"] = True
    if args.command == "resilience":
        parameters["intensities"] = getattr(args, "intensities", "")
        parameters["policy"] = getattr(args, "policy", "")
        parameters["smoke"] = bool(getattr(args, "smoke", False))
        if getattr(args, "predictor", False):
            parameters["predictor"] = True
    if args.command == "conflict-avoidance":
        parameters["factors"] = getattr(args, "factors", "")
        parameters["intensities"] = getattr(args, "intensities", "")
        parameters["smoke"] = bool(getattr(args, "smoke", False))
    if args.command == "federation":
        parameters["cells"] = getattr(args, "cells", "")
        parameters["staleness"] = getattr(args, "staleness", "")
        parameters["intensities"] = getattr(args, "intensities", "")
        parameters["policy"] = getattr(args, "policy", "")
        parameters["smoke"] = bool(getattr(args, "smoke", False))
        parameters["degenerate_gate"] = bool(
            getattr(args, "degenerate_gate", False)
        )
    return parameters


def _make_recovery_context(args: argparse.Namespace) -> RecoveryContext | None:
    """Build the recovery context for a sweep command, or None.

    Raises :class:`RecoveryError` on unusable --checkpoint/--resume
    combinations (reported as a one-line message, exit 2).
    """
    checkpoint_dir = getattr(args, "checkpoint", None)
    resume = bool(getattr(args, "resume", False))
    if resume and not checkpoint_dir:
        raise RecoveryError("--resume requires --checkpoint DIR")
    policy = DEFAULT_POLICY
    timeout = getattr(args, "point_timeout", None)
    attempts = getattr(args, "point_attempts", DEFAULT_POLICY.max_attempts)
    if timeout is not None or attempts != DEFAULT_POLICY.max_attempts:
        try:
            policy = SupervisorPolicy(point_timeout=timeout, max_attempts=attempts)
        except ValueError as exc:
            raise RecoveryError(str(exc)) from exc
    if not checkpoint_dir:
        if policy is DEFAULT_POLICY:
            return None
        return RecoveryContext(policy=policy)
    manifest = RunManifest(
        experiment=args.command,
        seed=args.seed,
        parameters=_manifest_parameters(args),
    )
    store = CheckpointStore(checkpoint_dir)
    resumed = 0
    if resume:
        resumed = store.resume(manifest)
        if store.salvaged_line is not None:
            print(
                f"checkpoint: dropped a partial record at "
                f"{store.log_path}:{store.salvaged_line} (crash mid-append); "
                "the point will re-run",
                file=sys.stderr,
            )
        print(
            f"checkpoint: resuming from {checkpoint_dir} "
            f"({resumed} completed point(s) on record)",
            file=sys.stderr,
        )
    else:
        store.initialize(manifest)
    return RecoveryContext(store=store, policy=policy, resumed_points=resumed)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "lint":
        return lint.run_lint(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "perfetto":
        return _cmd_perfetto(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "bench":
        from repro.perf.bench import main_bench

        return main_bench(args)
    command, _ = COMMANDS[args.command]
    timeline_interval = getattr(args, "timeline_interval", None)
    if timeline_interval is not None:
        try:
            # Process-wide default: every LightweightConfig the command
            # builds (including pickled sweep points) inherits it.
            obs_timeline.set_default_interval(timeline_interval)
        except ValueError as exc:
            print(f"omega-sim: {exc}", file=sys.stderr)
            return 2
    if getattr(args, "jobs", 1) != 1:
        args.jobs = resolve_jobs(args.jobs)
        if args.command not in JOBS_COMMANDS:
            print(
                f"omega-sim: {args.command} does not support --jobs; "
                "running serially",
                file=sys.stderr,
            )

    try:
        context = _make_recovery_context(args)
    except RecoveryError as exc:
        print(f"omega-sim: {exc}", file=sys.stderr)
        return 2

    sanitizing = bool(getattr(args, "sanitize", False))
    saved_san_env = None
    if sanitizing:
        # The env var rides into --jobs N worker processes, which build
        # their own sanitizer from it (see LightweightSimulation.build).
        saved_san_env = os.environ.get("OMEGA_SAN")
        os.environ["OMEGA_SAN"] = "1"
        _san.install()

    recorder = None
    if getattr(args, "trace", None):
        try:
            recorder = obs.TraceRecorder(path=args.trace, keep_records=False)
        except OSError as exc:
            print(f"omega-sim: cannot open trace file: {exc}", file=sys.stderr)
            return 2
        obs.set_recorder(recorder)
    try:
        if context is not None:
            with activate(context):
                rows = command(args)
        else:
            rows = command(args)
    except RecoveryError as exc:
        print(f"omega-sim: {exc}", file=sys.stderr)
        return 2
    except PointFailure as exc:
        print(f"omega-sim: {exc}", file=sys.stderr)
        return 1
    except _san.IsolationViolation as exc:
        print(f"omega-sim: {exc}", file=sys.stderr)
        if exc.stack:
            print(exc.stack, file=sys.stderr, end="")
        return 1
    finally:
        if timeline_interval is not None:
            obs_timeline.set_default_interval(None)
        if sanitizing:
            san = _san.ACTIVE
            if san is not None and san.writes_checked:
                print(
                    f"omega-san: {san.writes_checked} writes, "
                    f"{san.reads_checked} reads, "
                    f"{san.commits_checked} commits checked, "
                    f"{san.violations} violation(s)",
                    file=sys.stderr,
                )
            _san.uninstall()
            if saved_san_env is None:
                os.environ.pop("OMEGA_SAN", None)
            else:
                os.environ["OMEGA_SAN"] = saved_san_env
        if recorder is not None:
            obs.reset_recorder()
            recorder.close()
            print(
                f"trace: {recorder.records_emitted} records written to {args.trace}",
                file=sys.stderr,
            )
    if context is not None and context.store is not None:
        print(
            f"checkpoint: {context.points_completed} point(s) appended, "
            f"{context.points_skipped} skipped (already complete) in "
            f"{context.store.directory}",
            file=sys.stderr,
        )
    print(format_table(rows))
    if getattr(args, "verbose", False):
        print()
        print("simulator statistics:")
        print(_verbose_stats_table())
    if getattr(args, "output", None):
        saved = save_rows(
            rows,
            args.output,
            experiment=args.command,
            parameters={
                "scale": args.scale,
                "hours": args.hours,
                "seed": args.seed,
            },
        )
        print(f"rows saved to {saved}", file=sys.stderr)
    if getattr(args, "plot", False):
        chart = render_plot(args.command, rows)
        if chart is None:
            print(f"(no chart available for {args.command})", file=sys.stderr)
        else:
            print()
            print(chart)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
