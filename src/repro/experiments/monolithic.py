"""Figures 5a/6a (monolithic single-path) and 5b/6b (multi-path).

Expected shapes (paper section 4.1): in the single-path case busyness
grows linearly with t_job and wait times blow up at saturation for
*both* job types, since every job shares the one slow path. The
multi-path scheduler keeps batch jobs on a fast path, so busyness and
average wait drop sharply — but batch jobs still queue behind slow
service decisions (head-of-line blocking), so batch wait grows with
t_job(service) far more than under Omega.
"""

from __future__ import annotations

from repro.experiments.common import DAY
from repro.experiments.sweeps import (
    DEFAULT_SWEEP_CLUSTERS,
    sweep_service_decision_time,
)

DEFAULT_T_JOBS = (0.01, 0.1, 1.0, 10.0, 100.0)


def figure5a_6a_rows(
    t_jobs=DEFAULT_T_JOBS,
    clusters=DEFAULT_SWEEP_CLUSTERS,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    jobs: int = 1,
) -> list[dict]:
    """Single-path monolithic: one decision time for every job."""
    return sweep_service_decision_time(
        "monolithic-single",
        t_jobs,
        clusters=clusters,
        horizon=horizon,
        seed=seed,
        scale=scale,
        jobs=jobs,
    )


def figure5b_6b_rows(
    t_jobs=DEFAULT_T_JOBS,
    clusters=DEFAULT_SWEEP_CLUSTERS,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    jobs: int = 1,
) -> list[dict]:
    """Multi-path monolithic: fast batch path, swept service path."""
    return sweep_service_decision_time(
        "monolithic-multi",
        t_jobs,
        clusters=clusters,
        horizon=horizon,
        seed=seed,
        scale=scale,
        jobs=jobs,
    )


def partitioned_rows(
    t_jobs=DEFAULT_T_JOBS,
    clusters=DEFAULT_SWEEP_CLUSTERS,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    batch_share: float = 0.5,
    jobs: int = 1,
) -> list[dict]:
    """Extension beyond the paper's plots: the statically partitioned
    scheduler of Table 1 measured under the same sweep, exposing the
    fragmentation cost (higher batch waits at equal loads)."""
    return sweep_service_decision_time(
        "partitioned",
        t_jobs,
        clusters=clusters,
        horizon=horizon,
        seed=seed,
        scale=scale,
        batch_partition_share=batch_share,
        jobs=jobs,
    )
