"""Experiment drivers: one module per table/figure of the paper's
evaluation (see DESIGN.md's per-experiment index).

Every driver produces plain result rows (lists of dicts) so that the
benchmark harness, the CLI and the tests all consume the same code.
"""

from repro.experiments.common import (
    LightweightConfig,
    LightweightResult,
    LightweightSimulation,
    run_lightweight,
)

__all__ = [
    "LightweightConfig",
    "LightweightResult",
    "LightweightSimulation",
    "run_lightweight",
]
