"""Resilience experiment: degradation curves under injected faults.

``omega-sim resilience`` sweeps fault intensity against scheduler
architecture. Every run injects the same deterministic fault mix —
machine failure/repair, scheduler crash/restart, commit latency spikes
and commit drops (see :mod:`repro.faults`) — scaled by an intensity
knob, and reports how each architecture's headline metrics (job wait
time, scheduler busyness, conflict fraction, abandonment) degrade as
the environment gets hostile. This probes the paper's availability
claims head-on: Omega's optimistically-concurrent shared state means
"there is no inter-scheduler head of line blocking", so a crashed or
slow scheduler should only hurt its own workload, while the monolithic
architectures serialize everything behind the failure.

Intensity 0 rows install no fault machinery at all and are byte-
identical to the corresponding fault-free experiment at the same seed
(tested in ``tests/experiments/test_resilience.py``). Every run also
carries a continuous :class:`~repro.faults.CellStateInvariantChecker`
plus a post-run gate, so a fault path that corrupts shared cell state
fails the experiment instead of silently skewing the numbers.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import LightweightConfig, LightweightSimulation
from repro.experiments.sweeps import SweepPoint, point_label, result_row
from repro.faults import FaultConfig, PredictorConfig
from repro.faults.retry import RetryPolicyConfig
from repro.perf.parallel import parallel_map
from repro.workload.clusters import CLUSTER_B

#: The architectures compared in the degradation table. The single-path
#: monolithic variant is omitted: it differs from multi-path only in
#: decision-time modeling, which fault injection does not exercise.
RESILIENCE_ARCHITECTURES = ("monolithic-multi", "partitioned", "mesos", "omega")

#: Default intensity grid: the fault-free baseline plus three hostility
#: levels (nominal, degraded, hostile).
DEFAULT_INTENSITIES = (0.0, 1.0, 3.0, 10.0)

#: The intensity-1.0 fault mix. Machine MTBF is per machine, so the
#: cell-wide failure rate scales with cell size; scheduler crash MTBF
#: is per scheduler. ``FaultConfig.scaled`` divides the MTBFs and
#: multiplies the commit-fault probabilities by the intensity.
BASELINE_FAULTS = FaultConfig(
    machine_mtbf=150 * 3600.0,
    machine_repair_time=1800.0,
    crash_mtbf=4 * 3600.0,
    crash_restart_time=60.0,
    commit_delay_prob=0.02,
    commit_delay_mean=2.0,
    commit_drop_prob=0.01,
)


def resilience_row(sim: LightweightSimulation, result, **extra) -> dict:
    """One degradation-table row: the standard metrics plus fault and
    invariant-gate counters."""
    row = result_row(result, **extra)
    metrics = result.metrics
    checker = sim.invariant_checker
    row.update(
        machine_failures=metrics.machine_failures,
        tasks_killed=metrics.fault_tasks_killed,
        crashes=metrics.scheduler_crashes_total,
        commit_drops=metrics.commits_dropped_total,
        escalated=metrics.jobs_escalated_total,
        abandoned_conflict=metrics.abandoned_for_reason("conflict-cap"),
        # Predictor-on columns (zero on predictor-off rows and for the
        # non-Omega architectures): steered placement attempts and the
        # steered-commit outcome split (see repro.faults.predictor).
        steered=metrics.placements_steered_total,
        avoided=metrics.predict_conflicts_avoided_total,
        incurred=metrics.predict_conflicts_incurred_total,
        invariant_checks=(checker.checks_run if checker is not None else 0),
    )
    return row


def _resilience_point(point: SweepPoint) -> dict:
    """Run one (architecture, intensity) point (parallel-worker body).

    The post-run :meth:`~LightweightSimulation.check_invariants` gate
    raises on any cell-state inconsistency, failing the whole sweep.
    """
    config, extra = point
    sim = LightweightSimulation(config)
    result = sim.run()
    sim.check_invariants()
    return resilience_row(sim, result, **extra)


def resilience_rows(
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    architectures: Sequence[str] = RESILIENCE_ARCHITECTURES,
    policy: str | None = "immediate",
    predictor: bool = False,
    scale: float = 0.2,
    horizon: float = 2 * 3600.0,
    seed: int = 3,
    faults: FaultConfig = BASELINE_FAULTS,
    jobs: int = 1,
) -> list[dict]:
    """Degradation table: architectures x fault intensities.

    ``policy`` selects the Omega conflict-retry policy (one of
    :data:`repro.faults.retry.RETRY_POLICIES`, or ``None`` for the
    built-in default). The default "immediate" policy reproduces the
    historical retry behavior exactly, which keeps the intensity-0 rows
    byte-identical to the fault-free experiments; pass "backoff" or
    "starvation" to study the section 3.6 remedies under fault load, or
    "predictive" for the proactive escalation driven by the conflict
    predictor. ``predictor`` additionally turns on contention-aware
    placement steering for the Omega rows regardless of ``policy``
    (``policy="predictive"`` implies it); the ``steered`` /
    ``avoided`` / ``incurred`` columns then report what steering did.

    Every point shares one master seed so the fault-free workload is
    identical across the whole table — degradation is attributable to
    the injected faults alone.
    """
    preset = CLUSTER_B.scaled(scale)
    retry = RetryPolicyConfig(kind=policy) if policy is not None else None
    predictor_config = PredictorConfig() if predictor else None
    points: list[SweepPoint] = []
    for architecture in architectures:
        for intensity in intensities:
            config = LightweightConfig(
                preset=preset,
                architecture=architecture,
                horizon=horizon,
                seed=seed,
                fault_config=faults.scaled(intensity),
                retry_policy=retry,
                predictor=predictor_config,
                invariant_check_interval=horizon / 8.0,
            )
            points.append(
                (config, {"architecture": architecture, "intensity": intensity})
            )
    return parallel_map(
        _resilience_point,
        points,
        jobs=jobs,
        labels=[point_label(extra) for _, extra in points],
    )


def resilience_smoke_rows(seed: int = 3, jobs: int = 1) -> list[dict]:
    """The CI smoke variant: tiny cell, short horizon, two intensities,
    all four architectures, with starvation escalation switched on so
    the fault, retry, and invariant paths all execute on every build."""
    return resilience_rows(
        intensities=(0.0, 5.0),
        policy="starvation",
        scale=0.05,
        horizon=1800.0,
        seed=seed,
        jobs=jobs,
    )
