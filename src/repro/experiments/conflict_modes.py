"""Figure 14: conflict-detection and commit-granularity choices.

Expected shapes (paper section 5.2): all-or-nothing (gang) commits
roughly double the conflict fraction relative to incremental commits
under fine-grained detection ("retries now must re-place all tasks,
increasing their chance of failing again"); coarse-grained sequence-
number detection adds spurious conflicts and pushes conflict rate and
scheduler busyness up by 2-3x. "Clearly, incremental transactions
should be the default."
"""

from __future__ import annotations

from typing import Sequence

from repro.core.transaction import CommitMode, ConflictMode
from repro.experiments.common import DAY
from repro.experiments.hifi_perf import make_trace
from repro.experiments.sweeps import point_label
from repro.hifi.replay import HighFidelityConfig, run_hifi
from repro.hifi.trace import Trace
from repro.perf.parallel import parallel_map
from repro.schedulers.base import DecisionTimeModel
from repro.workload.job import JobType

#: The four lines of Figure 14.
MODES = (
    ("Coarse/Gang", ConflictMode.COARSE, CommitMode.ALL_OR_NOTHING),
    ("Coarse/Incr.", ConflictMode.COARSE, CommitMode.INCREMENTAL),
    ("Fine/Gang", ConflictMode.FINE, CommitMode.ALL_OR_NOTHING),
    ("Fine/Incr.", ConflictMode.FINE, CommitMode.INCREMENTAL),
)


def _mode_point(point: tuple[str, float, HighFidelityConfig]) -> dict:
    """Run one (mode, t_job) point of Figure 14 (parallel-worker body)."""
    label, t_job, config = point
    result = run_hifi(config)
    return {
        "mode": label,
        "t_job_service": t_job,
        "conflict_service": result.conflict_fraction("service"),
        "conflict_batch": result.conflict_fraction("batch"),
        "busy_service": result.busyness("service"),
        "busy_batch": result.busyness("batch"),
        "wait_service": result.mean_wait(JobType.SERVICE),
        "unscheduled_fraction": result.unscheduled_fraction,
    }


def figure14_rows(
    trace: Trace | None = None,
    t_jobs: Sequence[float] = (1.0, 10.0, 100.0),
    cluster: str = "C",
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    jobs: int = 1,
) -> list[dict]:
    """Sweep t_job(service) under each conflict/commit mode pair.

    All mode/t_job pairs replay the *same* trace, so the sweep is a flat
    list of independent points — ``jobs > 1`` fans them out.
    """
    if trace is None:
        trace = make_trace(cluster, horizon, seed=seed, scale=scale)
    points = [
        (
            label,
            t_job,
            HighFidelityConfig(
                trace=trace,
                seed=seed,
                service_model=DecisionTimeModel(t_job=t_job),
                conflict_mode=conflict_mode,
                commit_mode=commit_mode,
            ),
        )
        for label, conflict_mode, commit_mode in MODES
        for t_job in t_jobs
    ]
    return parallel_map(
        _mode_point,
        points,
        jobs=jobs,
        labels=[
            point_label({"mode": label, "t_job_service": t_job})
            for label, t_job, _ in points
        ],
    )
