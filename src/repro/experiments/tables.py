"""Tables 1 and 2 of the paper, as structured data with renderers.

These tables are qualitative design comparisons; reproducing them means
encoding the claims so the test suite can cross-check them against the
implementation's actual behaviour (e.g. Table 1 says the monolithic
scheduler has no interference — the tests assert the monolithic
scheduler never records a conflict).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import format_table


@dataclass(frozen=True)
class ApproachRow:
    """One row of Table 1."""

    approach: str
    resource_choice: str
    interference: str
    alloc_granularity: str
    cluster_wide_policies: str


TABLE1: tuple[ApproachRow, ...] = (
    ApproachRow(
        approach="Monolithic",
        resource_choice="all available",
        interference="none (serialized)",
        alloc_granularity="global policy",
        cluster_wide_policies="strict priority (preemption)",
    ),
    ApproachRow(
        approach="Statically partitioned",
        resource_choice="fixed subset",
        interference="none (partitioned)",
        alloc_granularity="per-partition policy",
        cluster_wide_policies="scheduler-dependent",
    ),
    ApproachRow(
        approach="Two-level (Mesos)",
        resource_choice="dynamic subset",
        interference="pessimistic",
        alloc_granularity="hoarding",
        cluster_wide_policies="strict fairness",
    ),
    ApproachRow(
        approach="Shared-state (Omega)",
        resource_choice="all available",
        interference="optimistic",
        alloc_granularity="per-scheduler policy",
        cluster_wide_policies="free-for-all, priority preemption",
    ),
)


@dataclass(frozen=True)
class SimulatorRow:
    """One row of Table 2 (simulator properties)."""

    property: str
    lightweight: str
    high_fidelity: str


TABLE2: tuple[SimulatorRow, ...] = (
    SimulatorRow("Machines", "homogeneous", "actual data (synthetic trace)"),
    SimulatorRow("Resource req. size", "sampled", "actual data (synthetic trace)"),
    SimulatorRow("Initial cell state", "sampled", "actual data (synthetic trace)"),
    SimulatorRow("Tasks per job", "sampled", "actual data (synthetic trace)"),
    SimulatorRow("lambda jobs", "sampled", "actual data (synthetic trace)"),
    SimulatorRow("Task duration", "sampled", "actual data (synthetic trace)"),
    SimulatorRow("Sched. constraints", "ignored", "obeyed"),
    SimulatorRow(
        "Sched. algorithm",
        "randomized first fit",
        "constraint-aware scoring (production stand-in)",
    ),
    SimulatorRow("Runtime", "fast", "slow"),
)


def table1_rows() -> list[dict]:
    return [vars(row) for row in TABLE1]


def table2_rows() -> list[dict]:
    return [vars(row) for row in TABLE2]


def render_table1() -> str:
    return format_table(table1_rows())


def render_table2() -> str:
    return format_table(table2_rows())
