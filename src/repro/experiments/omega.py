"""Figures 5c/6c (Omega under the service sweep), 8 (workload scaling)
and 9 (multiple batch schedulers).

Expected shapes (paper section 4.3):

* Fig 5c/6c — wait times comparable to the multi-path monolithic case,
  but with *independent* batch and service lines: no head-of-line
  blocking, conflicts rare.
* Fig 8 — wait time and busyness rise with the batch arrival rate;
  clusters saturate in the order A (~2.5x) < B (~6x) < C (~9.5x).
* Fig 9 — the conflict fraction increases with the number of batch
  schedulers (more opportunities to conflict), but per-scheduler
  busyness drops, so the model scales to higher loads.
"""

from __future__ import annotations

from repro.core.transaction import CommitMode, ConflictMode
from repro.experiments.common import DAY
from repro.faults.retry import RetryPolicyConfig
from repro.experiments.sweeps import (
    DEFAULT_SWEEP_CLUSTERS,
    batch_load_points,
    run_sweep,
    saturation_point,
    sweep_service_decision_time,
)

DEFAULT_T_JOBS = (0.01, 0.1, 1.0, 10.0, 100.0)
DEFAULT_RATE_FACTORS = (1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
DEFAULT_SCHEDULER_COUNTS = (1, 2, 4, 8, 16, 32)


def figure5c_6c_rows(
    t_jobs=DEFAULT_T_JOBS,
    clusters=DEFAULT_SWEEP_CLUSTERS,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    conflict_mode: ConflictMode = ConflictMode.FINE,
    commit_mode: CommitMode = CommitMode.INCREMENTAL,
    jobs: int = 1,
) -> list[dict]:
    """Shared-state scheduling under the service-time sweep."""
    return sweep_service_decision_time(
        "omega",
        t_jobs,
        clusters=clusters,
        horizon=horizon,
        seed=seed,
        scale=scale,
        conflict_mode=conflict_mode,
        commit_mode=commit_mode,
        jobs=jobs,
    )


def figure8_rows(
    factors=DEFAULT_RATE_FACTORS,
    clusters=DEFAULT_SWEEP_CLUSTERS,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    jobs: int = 1,
) -> list[dict]:
    """Scaling the batch arrival rate on each cluster.

    The paper's Figure 8 plots cluster B; running all three clusters
    also recovers the quoted saturation points (A ~2.5x, B ~6x,
    C ~9.5x), reported via :func:`figure8_saturation_points`.
    """
    points = []
    for cluster in clusters:
        points.extend(
            batch_load_points(
                factors, cluster=cluster, horizon=horizon, seed=seed, scale=scale
            )
        )
    return run_sweep(points, jobs=jobs)


def single_run_rows(
    cluster: str = "B",
    rate_factor: float = 1.0,
    smoke: bool = False,
    predictor: bool = False,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    jobs: int = 1,
) -> list[dict]:
    """One Omega run at a single operating point.

    The figure drivers sweep whole parameter grids; this one runs
    exactly one shared-state simulation, which is the right shape for
    recording a time-resolved trace (``--trace`` plus
    ``--timeline-interval``) and inspecting it with ``omega-sim trace``
    / ``perfetto`` / ``report``. ``smoke`` is the CI variant: a 5%
    cell for 30 simulated minutes, ignoring ``scale``/``horizon``.
    ``predictor`` turns on predictive conflict avoidance (contention-
    aware placement steering plus the ``predictive`` escalation policy,
    see :mod:`repro.faults.predictor`); off, the run is byte-identical
    to a build without the predictor.
    """
    if smoke:
        scale = 0.05
        horizon = 1800.0
    config_kwargs = {}
    if predictor:
        config_kwargs["retry_policy"] = RetryPolicyConfig(kind="predictive")
    points = batch_load_points(
        (rate_factor,),
        cluster=cluster,
        horizon=horizon,
        seed=seed,
        scale=scale,
        **config_kwargs,
    )
    return run_sweep(points, jobs=jobs)


def figure8_saturation_points(rows: list[dict]) -> dict[str, float | None]:
    """Per-cluster saturation factors (the dashed vertical lines)."""
    points: dict[str, float | None] = {}
    for cluster in sorted({row["cluster"] for row in rows}):
        cluster_rows = [row for row in rows if row["cluster"] == cluster]
        points[cluster] = saturation_point(cluster_rows)
    return points


def figure9_rows(
    factors=DEFAULT_RATE_FACTORS,
    scheduler_counts=DEFAULT_SCHEDULER_COUNTS,
    cluster: str = "B",
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    jobs: int = 1,
) -> list[dict]:
    """Load-balancing the batch workload over 1-32 Omega schedulers."""
    points = []
    for count in scheduler_counts:
        points.extend(
            batch_load_points(
                factors,
                cluster=cluster,
                num_batch_schedulers=count,
                horizon=horizon,
                seed=seed,
                scale=scale,
            )
        )
    return run_sweep(points, jobs=jobs)
