"""Shared sweep machinery for the lightweight-simulator figures (5-10).

Each figure is a sweep of one decision-time or arrival-rate parameter
with everything else held fixed; this module owns the common loop and
row format so the per-figure modules stay declarative.

Sweeps are materialized as lists of *points* — ``(LightweightConfig,
extra_row_fields)`` pairs — and executed by :func:`run_sweep`, which
fans independent points out across worker processes when ``jobs > 1``
(see :mod:`repro.perf.parallel`). Every point carries its own master
seed, so serial and parallel executions produce identical rows.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.core.transaction import CommitMode, ConflictMode
from repro.experiments.common import (
    DAY,
    LightweightConfig,
    LightweightResult,
    run_lightweight,
)
from repro.perf.parallel import parallel_map
from repro.schedulers.base import DEFAULT_T_JOB, DEFAULT_T_TASK, DecisionTimeModel
from repro.workload.clusters import preset_by_name
from repro.workload.job import JobType

#: One sweep point: the run's full configuration plus the extra fields
#: (swept-parameter values, labels) merged into its result row.
SweepPoint = tuple[LightweightConfig, dict]

#: The paper's wait-time service level objective (30 s horizontal bar in
#: Figure 5).
WAIT_TIME_SLO = 30.0

DEFAULT_SWEEP_CLUSTERS = ("A", "B", "C")


def result_row(result: LightweightResult, **extra) -> dict:
    """Flatten one run into the standard row format."""
    row = {
        **extra,
        "wait_batch": result.mean_wait(JobType.BATCH),
        "wait_service": result.mean_wait(JobType.SERVICE),
        "busy_batch": result.busyness("batch"),
        "busy_batch_mad": result.busyness_mad("batch"),
        "busy_service": result.busyness("service"),
        "busy_service_mad": result.busyness_mad("service"),
        "conflict_batch": result.conflict_fraction("batch"),
        "conflict_service": result.conflict_fraction("service"),
        "abandoned": result.jobs_abandoned,
        "unscheduled_fraction": result.unscheduled_fraction,
        "utilization": result.final_cpu_utilization,
    }
    return row


def point_label(extra: dict) -> str:
    """A stable, human-readable identity for one sweep point.

    Canonical JSON over the point's extra row fields — used for
    checkpoint records (``--checkpoint``/``--resume`` keys points by it
    to refuse resumes whose sweep structure changed) and supervisor
    failure messages.
    """
    return json.dumps(extra, sort_keys=True, separators=(",", ":"))


def run_sweep_point(point: SweepPoint) -> dict:
    """Run one sweep point to its result row (parallel-worker body)."""
    config, extra = point
    return result_row(run_lightweight(config), **extra)


def run_sweep(points: Sequence[SweepPoint], jobs: int = 1) -> list[dict]:
    """Run sweep points — serially or across ``jobs`` worker processes —
    and return their rows in point order."""
    return parallel_map(
        run_sweep_point,
        points,
        jobs=jobs,
        labels=[point_label(extra) for _, extra in points],
    )


def service_decision_points(
    architecture: str,
    t_jobs: Sequence[float],
    clusters: Iterable[str] = DEFAULT_SWEEP_CLUSTERS,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    t_task_service: float = DEFAULT_T_TASK,
    conflict_mode: ConflictMode = ConflictMode.FINE,
    commit_mode: CommitMode = CommitMode.INCREMENTAL,
    **config_kwargs,
) -> list[SweepPoint]:
    """Points for the x-axis sweep shared by Figures 5, 6 and 7."""
    points: list[SweepPoint] = []
    for cluster in clusters:
        preset = preset_by_name(cluster)
        if scale != 1.0:
            preset = preset.scaled(scale)
        for t_job in t_jobs:
            config = LightweightConfig(
                preset=preset,
                architecture=architecture,
                horizon=horizon,
                seed=seed,
                batch_model=DecisionTimeModel(),
                service_model=DecisionTimeModel(t_job=t_job, t_task=t_task_service),
                conflict_mode=conflict_mode,
                commit_mode=commit_mode,
                **config_kwargs,
            )
            points.append((config, {"cluster": cluster, "t_job_service": t_job}))
    return points


def sweep_service_decision_time(
    architecture: str,
    t_jobs: Sequence[float],
    clusters: Iterable[str] = DEFAULT_SWEEP_CLUSTERS,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    t_task_service: float = DEFAULT_T_TASK,
    conflict_mode: ConflictMode = ConflictMode.FINE,
    commit_mode: CommitMode = CommitMode.INCREMENTAL,
    jobs: int = 1,
    **config_kwargs,
) -> list[dict]:
    """The x-axis sweep shared by Figures 5, 6 and 7: vary
    t_job(service) (and, for the single-path monolithic scheduler, the
    t_job applied to *every* job) while the batch path keeps defaults."""
    return run_sweep(
        service_decision_points(
            architecture,
            t_jobs,
            clusters=clusters,
            horizon=horizon,
            seed=seed,
            scale=scale,
            t_task_service=t_task_service,
            conflict_mode=conflict_mode,
            commit_mode=commit_mode,
            **config_kwargs,
        ),
        jobs=jobs,
    )


def batch_load_points(
    factors: Sequence[float],
    cluster: str = "B",
    num_batch_schedulers: int = 1,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    dilate_decision_times: bool = True,
    **config_kwargs,
) -> list[SweepPoint]:
    """Points for Figure 8/9's x-axis: scale the batch arrival rate
    (relative lambda_jobs(batch)).

    When the cell is scaled down, arrival rates shrink with it, which
    would move the saturation points (busyness = rate x decision time)
    off the paper's 1-10x sweep. ``dilate_decision_times`` compensates
    by stretching decision times by 1/scale: busyness, saturation
    factors, cluster fullness and per-transaction conflict exposure are
    all invariant under this joint scaling (see DESIGN.md).
    """
    preset = preset_by_name(cluster)
    dilation = 1.0
    if scale != 1.0:
        preset = preset.scaled(scale)
        if dilate_decision_times:
            dilation = 1.0 / scale
    model = DecisionTimeModel(
        t_job=DEFAULT_T_JOB * dilation, t_task=DEFAULT_T_TASK * dilation
    )
    points: list[SweepPoint] = []
    for factor in factors:
        config = LightweightConfig(
            preset=preset,
            architecture="omega",
            horizon=horizon,
            seed=seed,
            batch_model=model,
            service_model=model,
            batch_rate_factor=factor,
            num_batch_schedulers=num_batch_schedulers,
            **config_kwargs,
        )
        points.append(
            (
                config,
                {
                    "cluster": cluster,
                    "rate_factor": factor,
                    "num_batch_schedulers": num_batch_schedulers,
                },
            )
        )
    return points


def sweep_batch_load(
    factors: Sequence[float],
    cluster: str = "B",
    num_batch_schedulers: int = 1,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    dilate_decision_times: bool = True,
    jobs: int = 1,
    **config_kwargs,
) -> list[dict]:
    """Figure 8/9's x-axis sweep (see :func:`batch_load_points`)."""
    return run_sweep(
        batch_load_points(
            factors,
            cluster=cluster,
            num_batch_schedulers=num_batch_schedulers,
            horizon=horizon,
            seed=seed,
            scale=scale,
            dilate_decision_times=dilate_decision_times,
            **config_kwargs,
        ),
        jobs=jobs,
    )


def saturation_point(rows: list[dict], threshold: float = 0.05) -> float | None:
    """The smallest swept rate factor at which the workload is no longer
    fully scheduled (Figure 8's dashed vertical lines)."""
    saturated = [
        row["rate_factor"]
        for row in rows
        if row["unscheduled_fraction"] > threshold
    ]
    return min(saturated) if saturated else None


def surface_points(
    architecture: str,
    t_jobs: Sequence[float],
    t_tasks: Sequence[float],
    cluster: str = "B",
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    conflict_mode: ConflictMode = ConflictMode.FINE,
    commit_mode: CommitMode = CommitMode.INCREMENTAL,
    **config_kwargs,
) -> list[SweepPoint]:
    """Points for Figure 10/11's t_job x t_task (service) surface."""
    preset = preset_by_name(cluster)
    if scale != 1.0:
        preset = preset.scaled(scale)
    points: list[SweepPoint] = []
    for t_job in t_jobs:
        for t_task in t_tasks:
            config = LightweightConfig(
                preset=preset,
                architecture=architecture,
                horizon=horizon,
                seed=seed,
                batch_model=DecisionTimeModel(),
                service_model=DecisionTimeModel(t_job=t_job, t_task=t_task),
                conflict_mode=conflict_mode,
                commit_mode=commit_mode,
                **config_kwargs,
            )
            points.append(
                (
                    config,
                    {
                        "architecture": architecture,
                        "cluster": cluster,
                        "t_job_service": t_job,
                        "t_task_service": t_task,
                    },
                )
            )
    return points


def busyness_surface(
    architecture: str,
    t_jobs: Sequence[float],
    t_tasks: Sequence[float],
    cluster: str = "B",
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    conflict_mode: ConflictMode = ConflictMode.FINE,
    commit_mode: CommitMode = CommitMode.INCREMENTAL,
    jobs: int = 1,
    **config_kwargs,
) -> list[dict]:
    """Figure 10/11's surface: busyness over t_job x t_task (service).

    Red shading in the paper marks configurations where part of the
    workload remained unscheduled; rows carry ``unscheduled_fraction``
    for the same purpose.
    """
    return run_sweep(
        surface_points(
            architecture,
            t_jobs,
            t_tasks,
            cluster=cluster,
            horizon=horizon,
            seed=seed,
            scale=scale,
            conflict_mode=conflict_mode,
            commit_mode=commit_mode,
            **config_kwargs,
        ),
        jobs=jobs,
    )
