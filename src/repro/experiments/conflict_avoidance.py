"""Conflict-avoidance experiment: predictor on/off under contention.

``omega-sim conflict-avoidance`` measures what the predictive layer
(:mod:`repro.faults.predictor`) buys: each point runs the same
Figure-8-style Omega operating point (several gang-committing batch
schedulers at a swept arrival-rate factor) twice — once with the
reactive ``starvation`` retry policy (predictor **off**, the PR-4
baseline) and once with the ``predictive`` policy plus contention-aware
placement steering (predictor **on**) — across ``resilience``-style
fault intensities. Rows report the paper's headline metrics plus the
predictor counters, and every predictor-on row carries the deltas
against its own off twin:

* ``d_conflict`` — change in batch conflict fraction (conflicts per
  scheduled job);
* ``d_wasted`` — change in wasted work, measured as busyness minus the
  Figure-12c "no conflicts" productive busyness (conflict-retry rework
  as a busy fraction);
* ``d_abandoned`` — change in abandoned jobs.

Negative deltas mean the predictor helped. Gang commits
(``ALL_OR_NOTHING``) are used at every point so the predictive
escalation path is live — escalating an incremental job is a no-op.

The off rows install no predictor object at all, so they exercise the
byte-identical predictor-off code path the determinism gates protect;
the on/off pairing shares one master seed per point, so the deltas are
attributable to the predictor alone.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.transaction import CommitMode
from repro.experiments.common import LightweightSimulation
from repro.experiments.resilience import BASELINE_FAULTS
from repro.experiments.sweeps import (
    SweepPoint,
    batch_load_points,
    point_label,
    result_row,
)
from repro.faults import FaultConfig
from repro.faults.retry import RetryPolicyConfig
from repro.perf.parallel import parallel_map

#: Figure-8 operating points (relative lambda(batch)) swept by default:
#: one around cluster B's knee and one past it, where section 3.6 says
#: optimistic concurrency starts collapsing into retry storms.
DEFAULT_FACTORS = (4.0, 8.0)

#: Fault-intensity multipliers over the resilience baseline mix: the
#: fault-free operating points plus the hostile regime the acceptance
#: gate measures (intensity >= 5).
DEFAULT_INTENSITIES = (0.0, 5.0)

DEFAULT_NUM_BATCH_SCHEDULERS = 4

#: The delta columns attached to predictor-on rows (on minus off).
DELTA_COLUMNS = ("d_conflict", "d_wasted", "d_abandoned")


def conflict_avoidance_row(
    sim: LightweightSimulation, result, **extra
) -> dict:
    """One sweep row: standard metrics plus predictor counters."""
    row = result_row(result, **extra)
    metrics = result.metrics
    checker = sim.invariant_checker
    row.update(
        wasted_batch=result.busyness("batch")
        - result.noconflict_busyness("batch"),
        escalated=metrics.jobs_escalated_total,
        steered=metrics.placements_steered_total,
        steer_fallback=metrics.steer_fallback_tasks_total,
        avoided=metrics.predict_conflicts_avoided_total,
        incurred=metrics.predict_conflicts_incurred_total,
        invariant_checks=(checker.checks_run if checker is not None else 0),
    )
    return row


def _conflict_avoidance_point(point: SweepPoint) -> dict:
    """Run one (predictor, factor, intensity) point (worker body)."""
    config, extra = point
    sim = LightweightSimulation(config)
    result = sim.run()
    sim.check_invariants()
    return conflict_avoidance_row(sim, result, **extra)


def conflict_avoidance_points(
    factors: Sequence[float] = DEFAULT_FACTORS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    num_batch_schedulers: int = DEFAULT_NUM_BATCH_SCHEDULERS,
    scale: float = 0.2,
    horizon: float = 2 * 3600.0,
    seed: int = 3,
    faults: FaultConfig = BASELINE_FAULTS,
) -> list[SweepPoint]:
    """The on/off x factor x intensity point grid, off rows first per
    (factor, intensity) pair so :func:`attach_deltas` can pair them."""
    points: list[SweepPoint] = []
    for factor in factors:
        for intensity in intensities:
            for predictor_on in (False, True):
                retry = RetryPolicyConfig(
                    kind="predictive" if predictor_on else "starvation"
                )
                (config, extra), = batch_load_points(
                    (factor,),
                    cluster="B",
                    num_batch_schedulers=num_batch_schedulers,
                    horizon=horizon,
                    seed=seed,
                    scale=scale,
                    commit_mode=CommitMode.ALL_OR_NOTHING,
                    fault_config=faults.scaled(intensity),
                    retry_policy=retry,
                    invariant_check_interval=horizon / 8.0,
                )
                extra = {
                    "predictor": "on" if predictor_on else "off",
                    "rate_factor": extra["rate_factor"],
                    "intensity": intensity,
                }
                points.append((config, extra))
    return points


def attach_deltas(rows: list[dict]) -> list[dict]:
    """Add on-minus-off delta columns to every predictor-on row.

    Rows are paired by (rate_factor, intensity); off rows carry the
    columns too (as 0.0) so the text table renders one header set.
    """
    off_rows = {
        (row["rate_factor"], row["intensity"]): row
        for row in rows
        if row["predictor"] == "off"
    }
    for row in rows:
        if row["predictor"] != "on":
            for column in DELTA_COLUMNS:
                row[column] = 0.0
            continue
        off = off_rows.get((row["rate_factor"], row["intensity"]))
        if off is None:  # pragma: no cover - grid always emits pairs
            continue
        row["d_conflict"] = row["conflict_batch"] - off["conflict_batch"]
        row["d_wasted"] = row["wasted_batch"] - off["wasted_batch"]
        row["d_abandoned"] = row["abandoned"] - off["abandoned"]
    return rows


def conflict_avoidance_rows(
    factors: Sequence[float] = DEFAULT_FACTORS,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    num_batch_schedulers: int = DEFAULT_NUM_BATCH_SCHEDULERS,
    scale: float = 0.2,
    horizon: float = 2 * 3600.0,
    seed: int = 3,
    faults: FaultConfig = BASELINE_FAULTS,
    jobs: int = 1,
) -> list[dict]:
    """The predictor on/off degradation table (see module docstring)."""
    points = conflict_avoidance_points(
        factors=factors,
        intensities=intensities,
        num_batch_schedulers=num_batch_schedulers,
        scale=scale,
        horizon=horizon,
        seed=seed,
        faults=faults,
    )
    rows = parallel_map(
        _conflict_avoidance_point,
        points,
        jobs=jobs,
        labels=[point_label(extra) for _, extra in points],
    )
    return attach_deltas(rows)


def conflict_avoidance_smoke_rows(seed: int = 3, jobs: int = 1) -> list[dict]:
    """The CI smoke variant: tiny cell, short horizon, one operating
    point, fault-free plus intensity 5 — the predictor-on and -off
    paths, steering, escalation and chaos interplay all execute."""
    return conflict_avoidance_rows(
        factors=(4.0,),
        intensities=(0.0, 5.0),
        scale=0.05,
        horizon=1800.0,
        seed=seed,
        jobs=jobs,
    )
