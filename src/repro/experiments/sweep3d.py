"""Figure 10: busyness surfaces over t_job(service) x t_task(service)
for the five scheduling schemes, on cluster B.

Expected shapes (paper section 4.4): the monolithic single-path surface
saturates earliest (its decision time applies to every job); multi-path
improves but still saturates through head-of-line blocking; Mesos
degrades sharply with long decision times and leaves workload
unscheduled (red shading); shared-state Omega tolerates the widest
region; the coarse-grained + gang-scheduling variant of Omega is
noticeably worse than plain Omega but still better than Mesos.
"""

from __future__ import annotations

from repro.core.transaction import CommitMode, ConflictMode
from repro.experiments.common import DAY
from repro.experiments.sweeps import run_sweep, surface_points

DEFAULT_T_JOBS = (0.1, 1.0, 10.0, 100.0)
DEFAULT_T_TASKS = (0.001, 0.01, 0.1, 1.0)

#: The five panels of Figure 10, in order.
SCHEMES = (
    ("monolithic-single", ConflictMode.FINE, CommitMode.INCREMENTAL),
    ("monolithic-multi", ConflictMode.FINE, CommitMode.INCREMENTAL),
    ("mesos", ConflictMode.FINE, CommitMode.INCREMENTAL),
    ("omega", ConflictMode.FINE, CommitMode.INCREMENTAL),
    ("omega-coarse-gang", ConflictMode.COARSE, CommitMode.ALL_OR_NOTHING),
)


def figure10_rows(
    t_jobs=DEFAULT_T_JOBS,
    t_tasks=DEFAULT_T_TASKS,
    cluster: str = "B",
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    schemes=SCHEMES,
    jobs: int = 1,
    **config_kwargs,
) -> list[dict]:
    """All five scheme surfaces; the scheme label lands in each row.

    The full scheme x t_job x t_task grid is one flat point list, so
    ``jobs > 1`` parallelizes across the entire figure, not per panel.
    """
    points = []
    labels = []
    for label, conflict_mode, commit_mode in schemes:
        architecture = "omega" if label.startswith("omega") else label
        scheme_points = surface_points(
            architecture,
            t_jobs,
            t_tasks,
            cluster=cluster,
            horizon=horizon,
            seed=seed,
            scale=scale,
            conflict_mode=conflict_mode,
            commit_mode=commit_mode,
            **config_kwargs,
        )
        points.extend(scheme_points)
        labels.extend([label] * len(scheme_points))
    rows = run_sweep(points, jobs=jobs)
    for row, label in zip(rows, labels):
        row["scheme"] = label
    return rows
