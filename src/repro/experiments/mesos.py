"""Figure 7: two-level scheduling (Mesos) performance.

Expected shapes (paper section 4.2): because the simple allocator
offers *all* available resources to one framework at a time, a slow
service scheduler locks nearly the whole cell for its entire decision
time. Batch jobs then only see the few resources freed while the
service framework thinks, repeatedly fail to finish scheduling, and
(a) batch busyness rises far above the monolithic multi-path case,
(b) batch wait times grow, and (c) jobs start hitting the
1,000-attempt abandonment limit as t_job(service) grows.

The paper simulates Mesos for one day only "as they take much longer to
run because of the failed scheduling attempts"; the default horizon
here follows suit.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import DAY, LightweightConfig, run_lightweight
from repro.experiments.sweeps import (
    DEFAULT_SWEEP_CLUSTERS,
    result_row,
    sweep_service_decision_time,
)
from repro.schedulers.base import DecisionTimeModel
from repro.workload.clusters import CLUSTER_A, ClusterPreset, WorkloadParams
from repro.workload.distributions import (
    Constant,
    DiscretizedLogNormal,
    LogNormal,
    Mixture,
)

DEFAULT_T_JOBS = (0.01, 0.1, 1.0, 10.0, 100.0)


def pathology_preset(num_machines: int = 150) -> ClusterPreset:
    """A compact workload that exposes the section 4.2 offer-hold
    pathology at small scale.

    A busy batch stream fills a small cell; service jobs are rare and
    consume almost nothing, but their (swept) decision times hold the
    whole-cell offers, leaving batch only the churn scraps. A small
    fraction of batch jobs has big per-task requests ("above-average
    size batch jobs") that cannot be assembled from scraps — these are
    the jobs that burn through the 1,000-attempt limit and get
    abandoned, reproducing Figure 7c's mechanism.
    """
    batch = WorkloadParams(
        arrival_rate=1.5,
        tasks_per_job=DiscretizedLogNormal(median=5, sigma=1.0, low=1, high=200),
        task_duration=LogNormal(median=30.0, sigma=1.0, low=5.0, high=600.0),
        # 3 % of batch jobs have big per-task requests: whole machines'
        # worth of CPU that scrap offers cannot assemble.
        cpu_per_task=Mixture(
            [LogNormal(median=0.3, sigma=0.4, low=0.1, high=1.0), Constant(1.6)],
            weights=[0.97, 0.03],
        ),
        mem_per_task=LogNormal(median=1.0, sigma=0.4, low=0.1, high=8.0),
    )
    service = WorkloadParams(
        arrival_rate=0.01,
        tasks_per_job=Constant(1),
        task_duration=Constant(600.0),
        cpu_per_task=Constant(0.1),
        mem_per_task=Constant(0.1),
    )
    return dataclasses.replace(
        CLUSTER_A,
        name="mesos-pathology",
        num_machines=num_machines,
        cpu_per_machine=4.0,
        mem_per_machine=16.0,
        batch=batch,
        service=service,
        initial_utilization=0.45,
    )


def pathology_rows(
    t_jobs=(0.1, 10.0, 100.0),
    architectures=("mesos", "omega"),
    horizon: float = 2 * 3600.0,
    seed: int = 11,
    num_machines: int = 150,
    attempt_limit: int = 1000,
) -> list[dict]:
    """Run the pathology workload under Mesos (and reference
    architectures) across service decision times.

    ``attempt_limit`` can be reduced alongside the horizon: the paper's
    1,000-attempt limit matches day-long runs; a two-hour benchmark run
    reaches the same abandonment regime around 150-300 attempts.
    """
    preset = pathology_preset(num_machines)
    rows = []
    for architecture in architectures:
        for t_job in t_jobs:
            result = run_lightweight(
                LightweightConfig(
                    preset=preset,
                    architecture=architecture,
                    horizon=horizon,
                    seed=seed,
                    service_model=DecisionTimeModel(t_job=t_job),
                    attempt_limit=attempt_limit,
                )
            )
            rows.append(
                result_row(result, architecture=architecture, t_job_service=t_job)
            )
    return rows


def figure7_rows(
    t_jobs=DEFAULT_T_JOBS,
    clusters=DEFAULT_SWEEP_CLUSTERS,
    horizon: float = DAY,
    seed: int = 0,
    scale: float = 1.0,
    offer_policy: str = "all",
    jobs: int = 1,
) -> list[dict]:
    """Mesos-style two-level scheduling under the service-time sweep.

    ``offer_policy="fair_share"`` runs the ablation the paper discusses
    with the Mesos team (offers sized to fair share instead of
    offer-everything).
    """
    return sweep_service_decision_time(
        "mesos",
        t_jobs,
        clusters=clusters,
        horizon=horizon,
        seed=seed,
        scale=scale,
        mesos_offer_policy=offer_policy,
        jobs=jobs,
    )
