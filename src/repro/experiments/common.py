"""The lightweight simulator harness (paper section 4).

Assembles a cell, its standing task population, workload generators and
one of the five scheduler architectures, runs the discrete-event
simulation, and exposes the paper's metrics. The same seed produces a
byte-identical workload for every architecture, which is what makes the
section 4 comparisons apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import sanitizer as _san
from repro.core.cellstate import CellState
from repro.core.fill import populate
from repro.core.multi import SchedulerPool
from repro.core.placement import placement_fn
from repro.core.preemption import AllocationLedger
from repro.core.scheduler import OmegaScheduler
from repro.core.scheduler_preempting import PreemptingOmegaScheduler
from repro.core.transaction import CommitMode, ConflictMode
from repro.faults import CellStateInvariantChecker, ChaosEngine, FaultConfig
from repro.faults.predictor import ConflictPredictor, PredictorConfig
from repro.faults.retry import RetryPolicy, RetryPolicyConfig
from repro.metrics import MetricsCollector
from repro.metrics.results import RunSummary
from repro.obs import recorder as _obs
from repro.obs import timeline as _timeline
from repro.obs.registry import Histogram, publish_sim_stats
from repro.schedulers.base import DecisionTimeModel
from repro.schedulers.mesos import MesosAllocator, MesosFramework, reset_offer_ids
from repro.schedulers.monolithic import MonolithicScheduler
from repro.schedulers.partitioned import StaticPartition
from repro.sim import RandomStreams, Simulator
from repro.workload.clusters import ClusterPreset
from repro.workload.generator import InitialFill, WorkloadGenerator
from repro.workload.job import Job, JobType, reset_job_ids

DAY = 86400.0

#: The five architectures of Figure 10, left to right.
ARCHITECTURES = (
    "monolithic-single",
    "monolithic-multi",
    "partitioned",
    "mesos",
    "omega",
)


@dataclass
class LightweightConfig:
    """Everything that parameterizes one lightweight-simulator run."""

    preset: ClusterPreset
    architecture: str = "omega"
    horizon: float = DAY
    seed: int = 0
    batch_model: DecisionTimeModel = field(default_factory=DecisionTimeModel)
    service_model: DecisionTimeModel = field(default_factory=DecisionTimeModel)
    batch_rate_factor: float = 1.0  # Figure 8/9's relative lambda(batch)
    service_rate_factor: float = 1.0
    num_batch_schedulers: int = 1  # Figure 9: 1..32
    conflict_mode: ConflictMode = ConflictMode.FINE
    commit_mode: CommitMode = CommitMode.INCREMENTAL
    attempt_limit: int = 1000
    metrics_period: float | None = None
    initial_utilization: float | None = None
    batch_partition_share: float = 0.5
    mesos_offer_policy: str = "all"
    utilization_sample_interval: float | None = None
    retry_conflicts_at_front: bool = True
    #: Omega only: run the service scheduler as a
    #: :class:`~repro.core.scheduler_preempting.PreemptingOmegaScheduler`
    #: and register all allocations in a shared ledger so service jobs
    #: can evict batch tasks (Table 1: "priority preemption").
    enable_preemption: bool = False
    #: Omega only: hot-machine backoff window in seconds (section 8
    #: future work; 0 disables).
    conflict_avoidance_cooldown: float = 0.0
    #: Omega only: placement strategy ("random-first-fit" — the paper's
    #: lightweight algorithm — "best-fit", or "worst-fit"); see
    #: :data:`repro.core.placement.PLACEMENT_STRATEGIES`.
    placement_strategy: str = "random-first-fit"
    #: Deterministic fault injection (:mod:`repro.faults`). The default
    #: config is disabled, keeping every fault-free run byte-identical.
    fault_config: FaultConfig = field(default_factory=FaultConfig)
    #: Omega only: conflict-retry policy built per scheduler from its own
    #: named random stream. ``None`` keeps the historical immediate
    #: front-of-queue retry untouched.
    retry_policy: RetryPolicyConfig | None = None
    #: Omega only: predictive conflict avoidance
    #: (:mod:`repro.faults.predictor`). ``None`` disables the predictor
    #: entirely — every placement/commit/trace code path stays
    #: byte-identical to a predictor-free build. Auto-enabled with
    #: defaults when ``retry_policy.kind == "predictive"`` (the policy
    #: is meaningless without the shared predictor instance).
    predictor: PredictorConfig | None = None
    #: Run a :class:`~repro.faults.CellStateInvariantChecker` every this
    #: many seconds during the run; ``None`` disables continuous checks.
    invariant_check_interval: float | None = None
    #: Emit ``timeline.*`` trace records every this many simulated
    #: seconds (see :mod:`repro.obs.timeline`). ``None`` falls back to
    #: the process-wide default (``--timeline-interval``), resolved here
    #: at construction time so sweep configs pickled to ``--jobs N``
    #: workers carry the concrete value.
    timeline_interval: float | None = None
    #: Jobs arrive from outside (a federation front door) rather than
    #: from this simulation's own workload generators. When set, no
    #: generators are created; the owner feeds :attr:`submit` directly.
    external_arrivals: bool = False
    #: Prefix applied to scheduler *display* names (e.g. ``"c0/"`` for
    #: federation cell 0) so trace records and histogram labels from
    #: many cells sharing one recorder stay distinguishable. Random
    #: stream names are deliberately *not* prefixed: each cell owns its
    #: own :class:`~repro.sim.RandomStreams`, and an unprefixed stream
    #: name is what makes a 1-cell federation draw the same randomness
    #: as the single-cell baseline.
    name_prefix: str = ""

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; "
                f"choose from {ARCHITECTURES}"
            )
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.num_batch_schedulers < 1:
            raise ValueError("need at least one batch scheduler")
        if (
            self.invariant_check_interval is not None
            and self.invariant_check_interval <= 0
        ):
            raise ValueError(
                "invariant_check_interval must be positive, got "
                f"{self.invariant_check_interval}"
            )
        if (
            self.predictor is None
            and self.retry_policy is not None
            and self.retry_policy.kind == "predictive"
        ):
            self.predictor = PredictorConfig(
                escalate_probability=self.retry_policy.escalate_probability
            )
        if self.timeline_interval is None:
            self.timeline_interval = _timeline.default_interval()
        if self.timeline_interval is not None and self.timeline_interval <= 0:
            raise ValueError(
                f"timeline_interval must be positive, got {self.timeline_interval}"
            )

    @property
    def period(self) -> float:
        """Aggregation period for 'daily' statistics: real days for long
        runs, quarters of the horizon for scaled-down ones."""
        if self.metrics_period is not None:
            return self.metrics_period
        return min(DAY, self.horizon / 4.0)


@dataclass
class LightweightResult(RunSummary):
    """Metrics of one lightweight run, with the paper's derived
    quantities (see :class:`repro.metrics.results.RunSummary`)."""

    config: LightweightConfig | None = None


class LightweightSimulation:
    """Builds and runs one configured lightweight simulation.

    Split from :func:`run_lightweight` so extensions (the MapReduce
    case-study scheduler of section 6) can compose with a built
    simulation before running it.
    """

    def __init__(
        self,
        config: LightweightConfig,
        sim: Simulator | None = None,
        streams: RandomStreams | None = None,
    ) -> None:
        self.config = config
        #: An injected simulator/stream pair means this world is one
        #: cell of a larger composition (the federation): the owner
        #: drives the event loop, resets global id counters and the
        #: sanitizer run, and publishes engine stats exactly once.
        self._external_sim = sim is not None
        self.sim = sim if sim is not None else Simulator()
        self.streams = streams if streams is not None else RandomStreams(config.seed)
        self.metrics = MetricsCollector(period=config.period)
        self.cell = config.preset.cell()
        self.states: list[CellState] = []
        self.submit: Callable[[Job], None] | None = None
        self.batch_scheduler_names: list[str] = []
        self.service_scheduler_names: list[str] = []
        #: Every scheduler object, in construction order — the chaos
        #: engine's crash/commit faults target entries of this registry.
        self.schedulers: list = []
        self.ledger: AllocationLedger | None = None
        self.chaos: ChaosEngine | None = None
        self.invariant_checker: CellStateInvariantChecker | None = None
        self.timeline_sampler: _timeline.TimelineSampler | None = None
        self.utilization_series: list[tuple[float, float, float]] = []
        self._built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> "LightweightSimulation":
        if self._built:
            raise RuntimeError("simulation already built")
        self._built = True
        if not self._external_sim:
            if _san.ACTIVE is None and _san.env_enabled():
                # Workers spawned by ``--jobs N`` inherit OMEGA_SAN=1 from
                # the parent's ``--sanitize`` but not its installed
                # sanitizer.
                _san.install()
            if _san.ACTIVE is not None:
                _san.ACTIVE.begin_run(now=lambda: self.sim.now)
            # Per-run global counters; a federation owner resets them
            # once before building its cells (begin_run would wipe the
            # sanitizer shadows of already-built sibling cells).
            reset_job_ids()
            reset_offer_ids()
        builder = getattr(self, f"_build_{self.config.architecture.replace('-', '_')}")
        builder()
        self._fill_initial_state()
        self._start_workload()
        config = self.config
        if config.fault_config.enabled:
            self.chaos = ChaosEngine(
                self.sim,
                self.streams.fork("chaos"),
                config.fault_config,
                self.metrics,
            )
            self.chaos.install(
                self.states,
                self.schedulers,
                ledger=self.ledger,
                horizon=config.horizon,
            )
        if config.invariant_check_interval is not None:
            self.invariant_checker = CellStateInvariantChecker(
                self.states, ledger=self.ledger
            )
            self.invariant_checker.install(
                self.sim, config.invariant_check_interval, horizon=config.horizon
            )
        if self.config.utilization_sample_interval:
            self.sim.every(
                self.config.utilization_sample_interval,
                self._sample_utilization,
                until=self.config.horizon,
            )
        if config.timeline_interval is not None:
            self.timeline_sampler = _timeline.TimelineSampler(
                self.sim,
                self.metrics,
                self.states,
                self.schedulers,
                interval=config.timeline_interval,
                horizon=config.horizon,
                chaos=self.chaos,
            )
            self.timeline_sampler.install()
        return self

    def _build_monolithic_single(self) -> None:
        state = CellState(self.cell)
        self.states.append(state)
        # Single code path: the (swept) service model applies to all jobs.
        scheduler = MonolithicScheduler.single_path(
            self.sim,
            self.metrics,
            state,
            self.streams.stream("placement.monolithic"),
            self.config.service_model,
            attempt_limit=self.config.attempt_limit,
        )
        self.submit = scheduler.submit
        self.schedulers = [scheduler]
        self.batch_scheduler_names = [scheduler.name]
        self.service_scheduler_names = [scheduler.name]

    def _build_monolithic_multi(self) -> None:
        state = CellState(self.cell)
        self.states.append(state)
        scheduler = MonolithicScheduler.multi_path(
            self.sim,
            self.metrics,
            state,
            self.streams.stream("placement.monolithic"),
            batch_model=self.config.batch_model,
            service_model=self.config.service_model,
            attempt_limit=self.config.attempt_limit,
        )
        self.submit = scheduler.submit
        self.schedulers = [scheduler]
        self.batch_scheduler_names = [scheduler.name]
        self.service_scheduler_names = [scheduler.name]

    def _build_partitioned(self) -> None:
        partition = StaticPartition(
            self.sim,
            self.metrics,
            self.cell,
            self.streams.stream("placement.partition-batch"),
            self.streams.stream("placement.partition-service"),
            batch_model=self.config.batch_model,
            service_model=self.config.service_model,
            batch_share=self.config.batch_partition_share,
            attempt_limit=self.config.attempt_limit,
        )
        self.states.extend(partition.states)
        self.submit = partition.submit
        self.schedulers = [partition.batch_scheduler, partition.service_scheduler]
        self.batch_scheduler_names = [partition.batch_scheduler.name]
        self.service_scheduler_names = [partition.service_scheduler.name]

    def _build_mesos(self) -> None:
        state = CellState(self.cell)
        self.states.append(state)
        allocator = MesosAllocator(
            self.sim, state, offer_policy=self.config.mesos_offer_policy
        )
        batch = MesosFramework(
            "mesos-batch",
            self.sim,
            self.metrics,
            allocator,
            self.streams.stream("placement.mesos-batch"),
            self.config.batch_model,
            attempt_limit=self.config.attempt_limit,
        )
        service = MesosFramework(
            "mesos-service",
            self.sim,
            self.metrics,
            allocator,
            self.streams.stream("placement.mesos-service"),
            self.config.service_model,
            attempt_limit=self.config.attempt_limit,
        )
        self.allocator = allocator

        def submit(job: Job) -> None:
            target = batch if job.job_type is JobType.BATCH else service
            target.submit(job)

        self.submit = submit
        self.schedulers = [batch, service]
        self.batch_scheduler_names = [batch.name]
        self.service_scheduler_names = [service.name]

    def _retry_policy(
        self,
        scheduler_name: str,
        predictor: ConflictPredictor | None = None,
    ) -> RetryPolicy | None:
        """Build the configured retry policy for one Omega scheduler.

        Each scheduler gets its own named random stream so jittered
        backoff draws are independent of every other stochastic process
        in the run (the determinism discipline of ``repro.sim.random``).
        ``predictor`` is the scheduler's own conflict predictor; the
        ``predictive`` policy shares it so escalation decisions read the
        same contention model that placement steering writes.
        """
        config = self.config.retry_policy
        if config is None:
            return None
        return config.build(
            self.streams.stream(f"retry.{scheduler_name}"), predictor=predictor
        )

    def _predictor(self) -> ConflictPredictor | None:
        """Build one scheduler's conflict predictor (None when disabled).

        Per-scheduler, never shared between schedulers: the paper's
        schedulers share nothing but the cell state, and each one's
        contention model must crash (and reset) with it alone.
        """
        if self.config.predictor is None:
            return None
        return ConflictPredictor(self.config.predictor)

    def _build_omega(self) -> None:
        state = CellState(self.cell)
        self.states.append(state)
        config = self.config
        ledger = None
        if config.enable_preemption:
            ledger = AllocationLedger(state, self.sim)
            self.ledger = ledger
        placement = placement_fn(config.placement_strategy)
        prefix = config.name_prefix
        batch_schedulers = []
        for i in range(config.num_batch_schedulers):
            base_name = (
                f"omega-batch-{i}"
                if config.num_batch_schedulers > 1
                else "omega-batch"
            )
            predictor = self._predictor()
            batch_schedulers.append(
                OmegaScheduler(
                    prefix + base_name,
                    self.sim,
                    self.metrics,
                    state,
                    self.streams.stream(f"placement.omega-batch-{i}"),
                    config.batch_model,
                    conflict_mode=config.conflict_mode,
                    commit_mode=config.commit_mode,
                    attempt_limit=config.attempt_limit,
                    retry_conflicts_at_front=config.retry_conflicts_at_front,
                    ledger=ledger,
                    conflict_avoidance_cooldown=config.conflict_avoidance_cooldown,
                    placement=placement,
                    retry_policy=self._retry_policy(base_name, predictor),
                    predictor=predictor,
                )
            )
        pool = SchedulerPool(batch_schedulers)
        if config.enable_preemption:
            service = PreemptingOmegaScheduler(
                prefix + "omega-service",
                self.sim,
                self.metrics,
                state,
                self.streams.stream("placement.omega-service"),
                config.service_model,
                ledger=ledger,
                attempt_limit=config.attempt_limit,
                retry_conflicts_at_front=config.retry_conflicts_at_front,
                retry_policy=self._retry_policy("omega-service"),
            )
        else:
            service_predictor = self._predictor()
            service = OmegaScheduler(
                prefix + "omega-service",
                self.sim,
                self.metrics,
                state,
                self.streams.stream("placement.omega-service"),
                config.service_model,
                conflict_mode=config.conflict_mode,
                commit_mode=config.commit_mode,
                attempt_limit=config.attempt_limit,
                retry_conflicts_at_front=config.retry_conflicts_at_front,
                conflict_avoidance_cooldown=config.conflict_avoidance_cooldown,
                placement=placement,
                retry_policy=self._retry_policy(
                    "omega-service", service_predictor
                ),
                predictor=service_predictor,
            )
        self.omega_pool = pool
        self.omega_service = service

        def submit(job: Job) -> None:
            if job.job_type is JobType.BATCH:
                pool.submit(job)
            else:
                service.submit(job)

        self.submit = submit
        self.schedulers = batch_schedulers + [service]
        self.batch_scheduler_names = pool.names
        self.service_scheduler_names = [service.name]

    # ------------------------------------------------------------------
    def _fill_initial_state(self) -> None:
        fill = InitialFill(self.config.preset, self.config.initial_utilization)
        rng = self.streams.stream("initial-fill")
        tasks = fill.generate(rng)
        if len(self.states) == 1:
            populate(self.states[0], tasks, rng, self.sim, self.config.horizon)
            return
        # Partitioned cells: split the standing population proportionally
        # to partition capacity.
        total_cpu = sum(state.cell.total_cpu for state in self.states)
        start = 0
        for state in self.states:
            share = state.cell.total_cpu / total_cpu
            count = round(len(tasks) * share)
            chunk = tasks[start : start + count]
            start += count
            populate(state, chunk, rng, self.sim, self.config.horizon)

    def _start_workload(self) -> None:
        assert self.submit is not None
        config = self.config
        if config.external_arrivals:
            self.generators = {}
            return
        self.generators = {
            JobType.BATCH: WorkloadGenerator(
                self.sim,
                config.preset.batch,
                JobType.BATCH,
                self.streams.stream("workload.batch"),
                self.submit,
                config.horizon,
                rate_factor=config.batch_rate_factor,
            ),
            JobType.SERVICE: WorkloadGenerator(
                self.sim,
                config.preset.service,
                JobType.SERVICE,
                self.streams.stream("workload.service"),
                self.submit,
                config.horizon,
                rate_factor=config.service_rate_factor,
            ),
        }
        for generator in self.generators.values():
            generator.start()

    # ------------------------------------------------------------------
    def cpu_utilization(self) -> float:
        used = sum(state.used_cpu for state in self.states)
        total = sum(state.cell.total_cpu for state in self.states)
        return used / total

    def mem_utilization(self) -> float:
        used = sum(state.used_mem for state in self.states)
        total = sum(state.cell.total_mem for state in self.states)
        return used / total

    def _sample_utilization(self) -> None:
        self.utilization_series.append(
            (self.sim.now, self.cpu_utilization(), self.mem_utilization())
        )

    def _histogram_states(self) -> list[dict]:
        """The collector registry's histograms, serialized for the
        end-of-run ``run.metrics`` trace record.

        Sorted by (name, labels) so the record is independent of
        registry insertion order.
        """
        histograms = [
            metric for metric in self.metrics.registry if isinstance(metric, Histogram)
        ]
        histograms.sort(key=lambda m: (m.name, tuple(sorted(m.labels.items()))))
        return [
            {"name": metric.name, "labels": metric.labels, "state": metric.state()}
            for metric in histograms
        ]

    def check_invariants(self) -> list[str]:
        """Post-run invariant gate over every cell state (and ledger).

        Raises :class:`repro.faults.InvariantViolation` on any
        inconsistency; returns the (empty) violation list otherwise.
        A continuous checker installed via ``invariant_check_interval``
        is reused so its counters keep accumulating.
        """
        checker = self.invariant_checker
        if checker is None:
            checker = CellStateInvariantChecker(self.states, ledger=self.ledger)
        return checker.check(self.sim.now)

    # ------------------------------------------------------------------
    def run(self) -> LightweightResult:
        if not self._built:
            self.build()
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "run.start",
                t=self.sim.now,
                architecture=self.config.architecture,
                horizon=self.config.horizon,
                seed=self.config.seed,
                cluster=self.config.preset.name,
            )
        self.sim.run(until=self.config.horizon)
        return self.finalize()

    def finalize(self) -> LightweightResult:
        """Post-run bookkeeping: sanitizer end-of-run check, engine-stat
        publication, the ``run.metrics`` trace record and result
        assembly.

        Split from :meth:`run` so a composition driving a *shared*
        event loop (the federation harness) can run the simulator once
        and then finalize each member cell. With an injected simulator,
        engine stats are *not* published here — the owner publishes the
        shared loop's stats exactly once.
        """
        if _san.ACTIVE is not None:
            _san.ACTIVE.final_check(self.states)
        stats = self.sim.stats()
        if not self._external_sim:
            publish_sim_stats(stats)
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "run.metrics",
                t=self.sim.now,
                histograms=self._histogram_states(),
            )
        return LightweightResult(
            metrics=self.metrics,
            horizon=self.config.horizon,
            batch_scheduler_names=self.batch_scheduler_names,
            service_scheduler_names=self.service_scheduler_names,
            jobs_submitted=self.metrics.jobs_submitted,
            jobs_scheduled=self.metrics.jobs_scheduled_total,
            jobs_abandoned=self.metrics.jobs_abandoned_total,
            final_cpu_utilization=self.cpu_utilization(),
            utilization_series=self.utilization_series,
            events_processed=self.sim.events_processed,
            sim_stats=stats,
            config=self.config,
        )


def run_lightweight(config: LightweightConfig) -> LightweightResult:
    """Build and run one lightweight-simulator experiment."""
    return LightweightSimulation(config).run()


# ----------------------------------------------------------------------
# Shared helpers for the per-figure drivers
# ----------------------------------------------------------------------
def geometric_grid(low: float, high: float, points: int) -> list[float]:
    """A log-spaced parameter grid (the paper's log10 sweep axes)."""
    if points < 2:
        raise ValueError(f"need at least 2 points, got {points}")
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got {low}, {high}")
    ratio = (high / low) ** (1.0 / (points - 1))
    return [low * ratio**i for i in range(points)]


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render result rows as a fixed-width text table.

    This is how every benchmark prints "the same rows/series the paper
    reports"; floats are rendered with four significant digits.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    ]
    return "\n".join([header, separator, *body])
