"""The metrics collector shared by all simulated scheduler architectures.

Schedulers report busy intervals, commit outcomes, scheduled and
abandoned jobs; experiments query per-day aggregates. "Our values for
scheduler busyness and conflict fraction are medians of the daily
values, and wait time values are overall averages" (paper section 4).

For scaled-down runs the aggregation *period* is configurable (a
two-hour run can use 30-minute "days"); the statistics keep the paper's
structure either way.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from repro.metrics.stats import mad, median, percentile
from repro.obs.registry import MetricsRegistry
from repro.workload.job import Job, JobType


@dataclass
class SchedulerMetrics:
    """Raw per-scheduler counters, bucketed by aggregation period."""

    busy_time: dict[int, float] = field(default_factory=lambda: defaultdict(float))
    #: Busy time excluding conflict-retry attempts — the "no conflicts"
    #: approximation of Figure 12c.
    busy_time_productive: dict[int, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    jobs_scheduled: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    conflicts: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    transactions_attempted: int = 0
    transactions_committed: int = 0
    jobs_abandoned: int = 0
    #: Abandonments split by terminal reason ("attempt-limit" for the
    #: generic ceiling, "conflict-cap" for a retry-policy verdict).
    abandoned_by_reason: dict[str, int] = field(default_factory=dict)
    #: Tasks this scheduler evicted from lower-precedence jobs.
    preemptions_caused: int = 0
    #: This scheduler's tasks evicted by higher-precedence jobs.
    tasks_lost_to_preemption: int = 0
    #: Fault-injection counters (see :mod:`repro.faults`).
    crashes: int = 0
    commits_dropped: int = 0
    commit_delay_seconds: float = 0.0
    #: Jobs switched to incremental commit mode by a
    #: starvation-escalation retry policy (paper section 3.6).
    jobs_escalated: int = 0
    #: Predictive conflict avoidance (see :mod:`repro.faults.predictor`):
    #: attempts whose placement was steered away from predicted-hot
    #: machines, and how many tasks the work-conserving fallback had to
    #: put on hot machines anyway.
    placements_steered: int = 0
    steer_fallback_tasks: int = 0
    #: Commit outcomes split by whether the attempt was steered: a
    #: steered commit that lands clean is an *avoided* conflict
    #: (prediction acted and no conflict materialized); a steered commit
    #: that still conflicts is an *incurred* one.
    predict_conflicts_avoided: int = 0
    predict_conflicts_incurred: int = 0


class MetricsCollector:
    """Collects and aggregates the paper's evaluation metrics."""

    def __init__(
        self, period: float = 86400.0, registry: MetricsRegistry | None = None
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.schedulers: dict[str, SchedulerMetrics] = defaultdict(SchedulerMetrics)
        self._wait_times: dict[JobType, list[float]] = {
            job_type: [] for job_type in JobType
        }
        self._per_scheduler_waits: dict[str, list[float]] = defaultdict(list)
        self.jobs_submitted = 0
        self.jobs_scheduled_total = 0
        self.jobs_abandoned_total = 0
        self.tasks_scheduled_total = 0
        #: Cell-level fault-injection counters (see :mod:`repro.faults`).
        self.machine_failures = 0
        self.machine_repairs = 0
        self.fault_tasks_killed = 0
        #: Low-level counter/histogram mirror of everything recorded
        #: here (see :mod:`repro.obs.registry`). Private per collector
        #: by default so concurrent runs do not pollute each other;
        #: pass a shared registry to aggregate across runs.
        self.registry = registry if registry is not None else MetricsRegistry()
        # Hot-path cache: avoids rebuilding registry label keys on
        # every record_busy/record_commit call.
        self._registry_cache: dict[tuple[str, str], object] = {}

    def _counter(self, name: str, scheduler: str):
        key = (name, scheduler)
        metric = self._registry_cache.get(key)
        if metric is None:
            metric = self.registry.counter(name, scheduler=scheduler)
            self._registry_cache[key] = metric
        return metric

    def _histogram(self, name: str, scheduler: str):
        key = (name, scheduler)
        metric = self._registry_cache.get(key)
        if metric is None:
            metric = self.registry.histogram(name, scheduler=scheduler)
            self._registry_cache[key] = metric
        return metric

    # ------------------------------------------------------------------
    # Recording (called by schedulers)
    # ------------------------------------------------------------------
    def _bucket(self, time: float) -> int:
        return int(time // self.period)

    def _num_buckets(self, horizon: float) -> int:
        """Number of (possibly partial) periods covering ``[0, horizon)``.

        Uses a relative epsilon so a horizon that is an exact multiple of
        the period yields exactly ``horizon / period`` buckets instead of
        a trailing zero-length one.
        """
        ratio = horizon / self.period
        nearest = round(ratio)
        if nearest >= 1 and abs(ratio - nearest) < 1e-9 * max(1.0, ratio):
            return int(nearest)
        return max(1, math.ceil(ratio))

    def record_submission(self, job: Job) -> None:
        self.jobs_submitted += 1
        self.registry.counter("jobs.submitted").inc()

    def record_first_attempt(self, scheduler: str, job: Job) -> None:
        """Record the job's wait time the moment its first attempt starts."""
        wait = job.wait_time
        if wait is None:  # pragma: no cover - callers mark first; guard anyway
            return
        if wait < 0:
            raise ValueError(
                f"negative wait time {wait} for job {job.job_id} "
                f"(first attempt before submission?)"
            )
        self._wait_times[job.job_type].append(wait)
        self._per_scheduler_waits[scheduler].append(wait)
        self._histogram("jobs.wait_seconds", scheduler).observe(wait)

    def record_busy(
        self, scheduler: str, start: float, end: float, conflict_retry: bool = False
    ) -> None:
        """Accumulate a busy interval, split across period boundaries.

        ``conflict_retry`` marks rework caused by a commit conflict; it
        counts toward busyness but not toward the productive ("no
        conflicts") busyness approximation.

        Negative times are rejected loudly: a negative ``start`` would
        land in bucket -1 and silently corrupt every period aggregate.
        """
        if start < 0:
            raise ValueError(f"negative busy-interval start: {start}")
        if end < start:
            raise ValueError(f"busy interval ends before it starts: {start}..{end}")
        self._counter("sched.busy_seconds", scheduler).inc(end - start)
        metrics = self.schedulers[scheduler]
        cursor = start
        while cursor < end:
            bucket = self._bucket(cursor)
            bucket_end = (bucket + 1) * self.period
            chunk_end = min(end, bucket_end)
            metrics.busy_time[bucket] += chunk_end - cursor
            if not conflict_retry:
                metrics.busy_time_productive[bucket] += chunk_end - cursor
            cursor = chunk_end

    def record_commit(self, scheduler: str, conflicted: bool, time: float) -> None:
        """Record one transaction attempt and whether it conflicted."""
        if time < 0:
            raise ValueError(f"negative commit time: {time}")
        metrics = self.schedulers[scheduler]
        metrics.transactions_attempted += 1
        self._counter("txn.attempted", scheduler).inc()
        if conflicted:
            metrics.conflicts[self._bucket(time)] += 1
            self._counter("txn.conflicted", scheduler).inc()
        else:
            metrics.transactions_committed += 1
            self._counter("txn.committed", scheduler).inc()

    def record_scheduled(self, scheduler: str, job: Job, time: float) -> None:
        """Record that a job finished scheduling (all tasks placed)."""
        if time < 0:
            raise ValueError(f"negative scheduling time: {time}")
        metrics = self.schedulers[scheduler]
        metrics.jobs_scheduled[self._bucket(time)] += 1
        self.jobs_scheduled_total += 1
        self.tasks_scheduled_total += job.num_tasks
        self._counter("jobs.scheduled", scheduler).inc()
        self._counter("tasks.scheduled", scheduler).inc(job.num_tasks)

    def record_abandoned(
        self, scheduler: str, job: Job, reason: str = "attempt-limit"
    ) -> None:
        """Record a job reaching the explicit abandoned terminal state.

        ``reason`` distinguishes the generic attempt-limit ceiling from
        a retry policy's conflict cap, so permanently-conflicting jobs
        are visible in the tables rather than lumped together.
        """
        metrics = self.schedulers[scheduler]
        metrics.jobs_abandoned += 1
        metrics.abandoned_by_reason[reason] = (
            metrics.abandoned_by_reason.get(reason, 0) + 1
        )
        self.jobs_abandoned_total += 1
        self._counter("jobs.abandoned", scheduler).inc()
        self.registry.counter(
            "jobs.abandoned_by_reason", scheduler=scheduler, reason=reason
        ).inc()

    # ------------------------------------------------------------------
    # Fault injection (called by the chaos engine and schedulers)
    # ------------------------------------------------------------------
    def record_machine_failure(self, tasks_killed: int) -> None:
        """A chaos-injected machine failure killed ``tasks_killed`` tasks."""
        if tasks_killed < 0:
            raise ValueError(f"tasks_killed must be >= 0, got {tasks_killed}")
        self.machine_failures += 1
        self.fault_tasks_killed += tasks_killed
        self.registry.counter("faults.machine_failures").inc()
        if tasks_killed:
            self.registry.counter("faults.tasks_killed").inc(tasks_killed)

    def record_machine_repair(self) -> None:
        self.machine_repairs += 1
        self.registry.counter("faults.machine_repairs").inc()

    def record_scheduler_crash(self, scheduler: str) -> None:
        """``scheduler`` crashed, losing its in-flight transaction."""
        self.schedulers[scheduler].crashes += 1
        self._counter("faults.sched_crashes", scheduler).inc()

    def record_commit_dropped(self, scheduler: str) -> None:
        """One of ``scheduler``'s commits was dropped in flight."""
        self.schedulers[scheduler].commits_dropped += 1
        self._counter("faults.commit_drops", scheduler).inc()

    def record_commit_delayed(self, scheduler: str, delay: float) -> None:
        """A commit-path latency spike of ``delay`` seconds was injected."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedulers[scheduler].commit_delay_seconds += delay
        self._counter("faults.commit_delay_seconds", scheduler).inc(delay)

    def record_escalated(
        self, scheduler: str, attempts: int | None = None, policy: str | None = None
    ) -> None:
        """A retry policy escalated one job to incremental commits.

        ``attempts`` is the job's attempt count at escalation time; it
        feeds the per-policy escalation-latency histogram
        (``jobs.attempts_until_escalation``), which is what makes
        predictive escalation (early, on the model's forecast)
        comparable against reactive starvation escalation (late, after
        the job has personally conflicted ``escalate_after`` times).
        """
        self.schedulers[scheduler].jobs_escalated += 1
        self._counter("jobs.escalated", scheduler).inc()
        if attempts is not None:
            self.registry.histogram(
                "jobs.attempts_until_escalation",
                scheduler=scheduler,
                policy=policy or "none",
            ).observe(float(attempts))

    def record_steered(self, scheduler: str, fallback_tasks: int) -> None:
        """One placement attempt was steered away from predicted-hot
        machines; ``fallback_tasks`` tasks still landed on them via the
        work-conserving fallback."""
        if fallback_tasks < 0:
            raise ValueError(f"fallback_tasks must be >= 0, got {fallback_tasks}")
        metrics = self.schedulers[scheduler]
        metrics.placements_steered += 1
        metrics.steer_fallback_tasks += fallback_tasks
        self._counter("predict.steered", scheduler).inc()
        if fallback_tasks:
            self._counter("predict.steer_fallback_tasks", scheduler).inc(
                fallback_tasks
            )

    def record_predictor_commit(
        self, scheduler: str, steered: bool, conflicted: bool
    ) -> None:
        """Attribute one predictor-on commit outcome.

        Steered-and-clean counts as an avoided conflict, steered-but-
        conflicted as an incurred one; unsteered commits are tracked only
        in the registry (``predict.commits_unsteered``) for rate math.
        """
        metrics = self.schedulers[scheduler]
        if steered:
            if conflicted:
                metrics.predict_conflicts_incurred += 1
                self._counter("predict.conflicts_incurred", scheduler).inc()
            else:
                metrics.predict_conflicts_avoided += 1
                self._counter("predict.conflicts_avoided", scheduler).inc()
        else:
            self._counter("predict.commits_unsteered", scheduler).inc()

    def record_preemption_caused(self, preemptor: str, tasks: int) -> None:
        """``preemptor`` evicted ``tasks`` lower-precedence tasks."""
        if tasks < 0:
            raise ValueError(f"tasks must be >= 0, got {tasks}")
        self.schedulers[preemptor].preemptions_caused += tasks
        self._counter("preemptions.caused", preemptor).inc(tasks)

    def record_preemption_victim(self, victim: str, tasks: int) -> None:
        """``victim`` lost ``tasks`` running tasks to preemption."""
        if tasks < 0:
            raise ValueError(f"tasks must be >= 0, got {tasks}")
        self.schedulers[victim].tasks_lost_to_preemption += tasks
        self._counter("preemptions.suffered", victim).inc(tasks)

    # ------------------------------------------------------------------
    # Queries (called by experiments)
    # ------------------------------------------------------------------
    def busyness_series(self, scheduler: str, horizon: float) -> list[float]:
        """Per-period busyness (busy fraction); the final partial period
        is normalized by its elapsed length."""
        metrics = self.schedulers[scheduler]
        if horizon <= 0:
            return []
        series = []
        for bucket in range(self._num_buckets(horizon)):
            length = min(self.period, horizon - bucket * self.period)
            series.append(metrics.busy_time.get(bucket, 0.0) / length)
        return series

    def median_busyness(self, scheduler: str, horizon: float) -> float:
        return median(self.busyness_series(scheduler, horizon))

    def productive_busyness_series(self, scheduler: str, horizon: float) -> list[float]:
        """Per-period busyness excluding conflict-retry rework."""
        metrics = self.schedulers[scheduler]
        if horizon <= 0:
            return []
        series = []
        for bucket in range(self._num_buckets(horizon)):
            length = min(self.period, horizon - bucket * self.period)
            series.append(metrics.busy_time_productive.get(bucket, 0.0) / length)
        return series

    def median_productive_busyness(self, scheduler: str, horizon: float) -> float:
        return median(self.productive_busyness_series(scheduler, horizon))

    def mad_busyness(self, scheduler: str, horizon: float) -> float:
        return mad(self.busyness_series(scheduler, horizon))

    def conflict_fraction_series(self, scheduler: str, horizon: float) -> list[float]:
        """Per-period conflicts per successfully scheduled job."""
        metrics = self.schedulers[scheduler]
        if horizon <= 0:
            return []
        series = []
        for bucket in range(self._num_buckets(horizon)):
            scheduled = metrics.jobs_scheduled.get(bucket, 0)
            conflicts = metrics.conflicts.get(bucket, 0)
            if scheduled > 0:
                series.append(conflicts / scheduled)
            elif conflicts == 0:
                series.append(0.0)
            # Periods with conflicts but no completions are skipped:
            # there is no defined per-job ratio for them.
        return series

    def median_conflict_fraction(self, scheduler: str, horizon: float) -> float:
        return median(self.conflict_fraction_series(scheduler, horizon))

    def overall_conflict_fraction(self, scheduler: str) -> float:
        """Total conflicts per successfully scheduled job over the run."""
        metrics = self.schedulers[scheduler]
        scheduled = sum(metrics.jobs_scheduled.values())
        if scheduled == 0:
            return float("nan")
        return sum(metrics.conflicts.values()) / scheduled

    def wait_times(self, job_type: JobType) -> list[float]:
        return list(self._wait_times[job_type])

    def mean_wait_time(self, job_type: JobType) -> float:
        waits = self._wait_times[job_type]
        if not waits:
            return float("nan")
        return sum(waits) / len(waits)

    def p90_wait_time(self, job_type: JobType) -> float:
        return percentile(self._wait_times[job_type], 90.0)

    def scheduler_wait_times(self, scheduler: str) -> list[float]:
        return list(self._per_scheduler_waits[scheduler])

    def mean_scheduler_wait_time(self, scheduler: str) -> float:
        waits = self._per_scheduler_waits[scheduler]
        if not waits:
            return float("nan")
        return sum(waits) / len(waits)

    def abandoned(self, scheduler: str) -> int:
        return self.schedulers[scheduler].jobs_abandoned

    def abandoned_for_reason(self, reason: str) -> int:
        """Jobs abandoned for ``reason``, totalled across schedulers."""
        return sum(
            metrics.abandoned_by_reason.get(reason, 0)
            for _, metrics in sorted(self.schedulers.items())
        )

    @property
    def scheduler_crashes_total(self) -> int:
        return sum(
            metrics.crashes for _, metrics in sorted(self.schedulers.items())
        )

    @property
    def commits_dropped_total(self) -> int:
        return sum(
            metrics.commits_dropped
            for _, metrics in sorted(self.schedulers.items())
        )

    @property
    def jobs_escalated_total(self) -> int:
        return sum(
            metrics.jobs_escalated
            for _, metrics in sorted(self.schedulers.items())
        )

    @property
    def placements_steered_total(self) -> int:
        return sum(
            metrics.placements_steered
            for _, metrics in sorted(self.schedulers.items())
        )

    @property
    def steer_fallback_tasks_total(self) -> int:
        return sum(
            metrics.steer_fallback_tasks
            for _, metrics in sorted(self.schedulers.items())
        )

    @property
    def predict_conflicts_avoided_total(self) -> int:
        return sum(
            metrics.predict_conflicts_avoided
            for _, metrics in sorted(self.schedulers.items())
        )

    @property
    def predict_conflicts_incurred_total(self) -> int:
        return sum(
            metrics.predict_conflicts_incurred
            for _, metrics in sorted(self.schedulers.items())
        )

    def scheduler_names(self) -> list[str]:
        return sorted(self.schedulers)
