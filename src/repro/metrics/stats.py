"""Small, dependency-light statistics helpers.

The paper reports medians of daily values with error bars of one median
absolute deviation (MAD), "a robust estimator of typical value
dispersion" (Figure 6 caption), plus CDFs for workload characterization.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def median(values: Sequence[float]) -> float:
    """Median of a sequence; NaN for an empty one."""
    if len(values) == 0:
        return float("nan")
    return float(np.median(np.asarray(values, dtype=np.float64)))


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation from the median (paper's error bars)."""
    if len(values) == 0:
        return float("nan")
    array = np.asarray(values, dtype=np.float64)
    return float(np.median(np.abs(array - np.median(array))))


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100); NaN for an empty sequence."""
    if len(values) == 0:
        return float("nan")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def ecdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities).

    The returned arrays plot exactly like the paper's CDF figures; the
    probability of the i-th sorted value is (i + 1) / n.
    """
    array = np.sort(np.asarray(values, dtype=np.float64))
    if array.size == 0:
        return array, array
    probabilities = np.arange(1, array.size + 1, dtype=np.float64) / array.size
    return array, probabilities


def cdf_at(values: Sequence[float], thresholds: Sequence[float]) -> np.ndarray:
    """Fraction of ``values`` that are <= each threshold.

    Used to read CDF curves at the paper's labeled axis points (e.g.
    "fraction of service jobs running longer than 29 days").
    """
    array = np.sort(np.asarray(values, dtype=np.float64))
    if array.size == 0:
        return np.full(len(thresholds), float("nan"))
    positions = np.searchsorted(array, np.asarray(thresholds, dtype=np.float64), "right")
    return positions / array.size
