"""Run summaries shared by the lightweight and high-fidelity simulators.

:class:`RunSummary` wraps a :class:`~repro.metrics.collector.MetricsCollector`
with the derived quantities the paper plots: per-role busyness
(median of daily values +- MAD), conflict fractions, wait times
(means and 90th percentiles), abandonment and saturation indicators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import percentile
from repro.workload.job import JobType


@dataclass
class RunSummary:
    """Metrics of one simulation run."""

    metrics: MetricsCollector
    horizon: float
    batch_scheduler_names: list[str]
    service_scheduler_names: list[str]
    jobs_submitted: int
    jobs_scheduled: int
    jobs_abandoned: int
    final_cpu_utilization: float
    utilization_series: list[tuple[float, float, float]] = field(default_factory=list)
    events_processed: int = 0
    #: Engine runtime statistics (:meth:`repro.sim.engine.Simulator.stats`):
    #: events processed, peak queue depth, wall seconds, final sim time.
    sim_stats: dict[str, float | int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Role-level accessors ("batch" / "service")
    # ------------------------------------------------------------------
    def _role_names(self, role: str) -> list[str]:
        if role == "batch":
            return self.batch_scheduler_names
        if role == "service":
            return self.service_scheduler_names
        raise ValueError(f"role must be 'batch' or 'service', got {role!r}")

    def mean_wait(self, job_type: JobType) -> float:
        """Overall average job wait time for a job type (paper's Fig 5)."""
        return self.metrics.mean_wait_time(job_type)

    def p90_wait(self, job_type: JobType) -> float:
        return self.metrics.p90_wait_time(job_type)

    def busyness(self, role: str) -> float:
        """Median daily busyness, averaged over the role's schedulers
        (Figure 9b plots this as "mean sched. busyness")."""
        names = self._role_names(role)
        values = [self.metrics.median_busyness(n, self.horizon) for n in names]
        return sum(values) / len(values)

    def busyness_mad(self, role: str) -> float:
        names = self._role_names(role)
        values = [self.metrics.mad_busyness(n, self.horizon) for n in names]
        return sum(values) / len(values)

    def noconflict_busyness(self, role: str) -> float:
        """The Figure 12c "no conflicts" approximation: busyness with
        conflict-retry rework excluded."""
        names = self._role_names(role)
        values = [
            self.metrics.median_productive_busyness(n, self.horizon) for n in names
        ]
        return sum(values) / len(values)

    def conflict_fraction(self, role: str) -> float:
        """Conflicts per successfully scheduled job, pooled over the
        role's schedulers for the whole run."""
        names = self._role_names(role)
        conflicts = 0
        scheduled = 0
        for name in names:
            per_scheduler = self.metrics.schedulers[name]
            conflicts += sum(per_scheduler.conflicts.values())
            scheduled += sum(per_scheduler.jobs_scheduled.values())
        if scheduled == 0:
            return float("nan")
        return conflicts / scheduled

    def abandoned(self, role: str) -> int:
        return sum(self.metrics.abandoned(n) for n in self._role_names(role))

    def preemptions_caused(self, role: str) -> int:
        """Tasks this role's schedulers evicted from lower-precedence jobs."""
        return sum(
            self.metrics.schedulers[n].preemptions_caused
            for n in self._role_names(role)
        )

    def tasks_lost_to_preemption(self, role: str) -> int:
        """This role's running tasks evicted by higher-precedence jobs."""
        return sum(
            self.metrics.schedulers[n].tasks_lost_to_preemption
            for n in self._role_names(role)
        )

    # ------------------------------------------------------------------
    # Per-scheduler accessors (Figure 13 plots Batch 0/1/2 separately)
    # ------------------------------------------------------------------
    def scheduler_busyness(self, name: str) -> float:
        return self.metrics.median_busyness(name, self.horizon)

    def scheduler_wait_mean(self, name: str) -> float:
        return self.metrics.mean_scheduler_wait_time(name)

    def scheduler_wait_p90(self, name: str) -> float:
        return percentile(self.metrics.scheduler_wait_times(name), 90.0)

    # ------------------------------------------------------------------
    # Saturation
    # ------------------------------------------------------------------
    @property
    def unscheduled_fraction(self) -> float:
        """Fraction of submitted jobs not fully scheduled by the end
        (abandoned or stuck in queues) — the saturation indicator behind
        Figure 8's dashed lines and Figure 10's red shading."""
        if self.jobs_submitted == 0:
            return 0.0
        return 1.0 - self.jobs_scheduled / self.jobs_submitted

    def saturated(self, threshold: float = 0.05) -> bool:
        return self.unscheduled_fraction > threshold
