"""Measurement: the paper's evaluation metrics (section 4, "Metrics").

* **job wait time** — submission to start of first scheduling attempt,
* **scheduler busyness** — fraction of time spent making decisions,
  reported as median-of-daily-values with median absolute deviation,
* **conflict fraction** — mean conflicts per successfully scheduled job,
* **abandoned jobs** — jobs dropped at the 1,000-attempt retry limit.
"""

from repro.metrics.ascii_chart import cdf_chart, line_chart
from repro.metrics.collector import MetricsCollector, SchedulerMetrics
from repro.metrics.results import RunSummary
from repro.metrics.stats import ecdf, mad, median, percentile

__all__ = [
    "MetricsCollector",
    "SchedulerMetrics",
    "RunSummary",
    "ecdf",
    "mad",
    "median",
    "percentile",
    "line_chart",
    "cdf_chart",
]
