"""Plain-text charts for terminal output.

The paper's results are figures; the ``omega-sim`` CLI can render the
reproduced series directly in the terminal with ``--plot``. Charts are
deliberately dependency-free (no matplotlib in this offline
environment): a character grid with per-series glyphs, linear or log10
axes, and a compact legend.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Per-series plot glyphs, assigned in insertion order.
GLYPHS = "*+ox#@%&"

Point = tuple[float, float]


def _transform(value: float, log: bool) -> float | None:
    if log:
        if value <= 0:
            return None
        return math.log10(value)
    return value


def line_chart(
    series: Mapping[str, Sequence[Point]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
    log_y: bool = False,
) -> str:
    """Render named point series on one character grid.

    Points with non-positive coordinates on a log axis are dropped.
    Overlapping points from different series show the later series'
    glyph. Returns a multi-line string ready to print.
    """
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4 characters")
    if not series:
        raise ValueError("need at least one series")

    transformed: dict[str, list[Point]] = {}
    for label, points in series.items():
        kept = []
        for x, y in points:
            tx = _transform(x, log_x)
            ty = _transform(y, log_y)
            if tx is not None and ty is not None:
                kept.append((tx, ty))
        transformed[label] = kept
    all_points = [p for points in transformed.values() for p in points]
    if not all_points:
        raise ValueError("no plottable points (log axes drop values <= 0)")

    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(transformed.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in points:
            column = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = glyph

    def axis_value(value: float, log: bool) -> str:
        shown = 10**value if log else value
        return f"{shown:.3g}"

    lines = []
    if title:
        lines.append(title)
    top_label = axis_value(y_max, log_y)
    bottom_label = axis_value(y_min, log_y)
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(gutter)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    left = axis_value(x_min, log_x)
    right = axis_value(x_max, log_x)
    middle = x_label + (" [log10]" if log_x and x_label else "")
    pad = max(1, width - len(left) - len(right) - len(middle))
    lines.append(
        " " * (gutter + 1) + left + " " * (pad // 2) + middle
        + " " * (pad - pad // 2) + right
    )
    legend = "   ".join(
        f"{GLYPHS[i % len(GLYPHS)]} {label}" for i, label in enumerate(series)
    )
    suffix = f"   (y: {y_label}{', log10' if log_y else ''})" if y_label else ""
    lines.append("  legend: " + legend + suffix)
    return "\n".join(lines)


def cdf_chart(
    values_by_label: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    log_x: bool = False,
) -> str:
    """Render empirical CDFs of one or more value collections."""
    series: dict[str, list[Point]] = {}
    for label, values in values_by_label.items():
        ordered = sorted(values)
        n = len(ordered)
        if n == 0:
            continue
        series[label] = [
            (value, (index + 1) / n) for index, value in enumerate(ordered)
        ]
    return line_chart(
        series,
        width=width,
        height=height,
        title=title,
        x_label=x_label,
        y_label="CDF",
        log_x=log_x,
    )
