"""The specialized MapReduce scheduler, an Omega scheduler subclass.

"Our specialized MapReduce scheduler ... observes the overall resource
utilization in the cluster, predicts the benefits of scaling up current
and pending MapReduce jobs, and apportions some fraction of the unused
resources across those jobs according to some policy" (section 6).

Adding it is deliberately easy — the case study's conclusion is that
"adding a specialized functionality to the Omega system is
straightforward": this subclass only overrides the placement attempt to
size the worker pool before claiming, and everything else (snapshots,
optimistic commit, retries, metrics) is inherited.

Simplification vs the paper (documented in DESIGN.md): resources are
granted when the job is scheduled, not re-adjusted while it runs; the
paper itself notes its model ignores worker setup time, so one-shot
sizing preserves the studied effect (speedup distributions and
utilization variability).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.cellstate import CellState
from repro.core.placement import randomized_first_fit
from repro.core.scheduler import OmegaScheduler
from repro.core.transaction import CommitMode, ConflictMode, commit
from repro.mapreduce.model import MapReduceJob, sample_profile
from repro.mapreduce.policies import AllocationPolicy, ClusterView, decide_workers
from repro.metrics import MetricsCollector
from repro.schedulers.base import DecisionTimeModel
from repro.sim import Simulator
from repro.workload.job import Job


class MapReduceScheduler(OmegaScheduler):
    """An Omega scheduler that opportunistically grows MapReduce jobs."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        metrics: MetricsCollector,
        state: CellState,
        rng: np.random.Generator,
        model: DecisionTimeModel,
        policy: AllocationPolicy,
        conflict_mode: ConflictMode = ConflictMode.FINE,
        attempt_limit: int = 1000,
    ) -> None:
        super().__init__(
            name,
            sim,
            metrics,
            state,
            rng,
            model,
            conflict_mode=conflict_mode,
            commit_mode=CommitMode.INCREMENTAL,
            attempt_limit=attempt_limit,
        )
        self.policy = policy
        #: Realized speedups of completed grants (Figure 15's data).
        self.speedups: list[float] = []
        self.workers_granted_total = 0
        self.workers_configured_total = 0

    # ------------------------------------------------------------------
    def cluster_view(self) -> ClusterView:
        """Whole-cluster visibility via the shared cell state."""
        return ClusterView(
            idle_cpu=self.state.idle_cpu,
            idle_mem=self.state.idle_mem,
            total_cpu=self.state.cell.total_cpu,
            total_mem=self.state.cell.total_mem,
        )

    def attempt(self, job: Job) -> None:
        if not isinstance(job, MapReduceJob):
            # Non-MR work follows the plain Omega path.
            super().attempt(job)
            return
        snapshot = self._snapshot
        self._snapshot = None
        if snapshot is None:  # pragma: no cover - loop always snapshots first
            raise RuntimeError("attempt() without begin_attempt()")
        profile = job.profile
        assert profile is not None

        target = decide_workers(profile, self.policy, self.cluster_view())
        claims = randomized_first_fit(
            snapshot.free_cpu,
            snapshot.free_mem,
            profile.cpu_per_worker,
            profile.mem_per_worker,
            target,
            self._rng,
        )
        if not claims:
            self._resolve_attempt(job, had_conflict=False)
            return
        result = commit(
            self.state,
            claims,
            snapshot,
            conflict_mode=self.conflict_mode,
            commit_mode=self.commit_mode,
        )
        self.metrics.record_commit(self.name, result.conflicted, self.sim.now)
        placed = result.accepted_tasks
        if placed == 0:
            self._resolve_attempt(job, had_conflict=result.conflicted)
            return

        # Workers are elastic: whatever was placed becomes the job's
        # worker pool, and the performance model predicts its runtime.
        job.granted_workers = placed
        job.unplaced_tasks = 0
        job.duration = profile.completion_time(placed)
        self.speedups.append(profile.speedup(placed))
        self.workers_granted_total += placed
        self.workers_configured_total += profile.workers_configured
        self._start_tasks(self.state, job, result.accepted)
        self._resolve_attempt(job, had_conflict=result.conflicted)


class MapReduceWorkload:
    """Poisson arrival process of MapReduce jobs.

    "About 20% of jobs in Google are MapReduce ones" — experiments
    derive this generator's rate from the cluster preset's batch rate.
    """

    def __init__(
        self,
        sim: Simulator,
        rate: float,
        rng: np.random.Generator,
        submit: Callable[[MapReduceJob], None],
        horizon: float,
        worker_scale: float = 1.0,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self._sim = sim
        self._rate = rate
        self._rng = rng
        self._submit = submit
        self._horizon = horizon
        self._worker_scale = worker_scale
        self.jobs_generated = 0

    def start(self) -> None:
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self._rng.exponential(1.0 / self._rate)
        arrival = self._sim.now + gap
        if arrival <= self._horizon:
            self._sim.at(arrival, self._arrive)

    def _arrive(self) -> None:
        profile = sample_profile(self._rng, worker_scale=self._worker_scale)
        job = MapReduceJob.from_profile(profile, self._sim.now)
        self.jobs_generated += 1
        self._submit(job)
        self._schedule_next()
