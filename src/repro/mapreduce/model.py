"""MapReduce job profiles and the idealized performance model.

Paper section 6.1: "we deliberately use a simple performance model that
only relies on historical data about the job's average map and reduce
activity duration. It assumes that adding more workers results in an
idealized linear speedup (modulo dependencies between mappers and
reducers), up to the point where all map activities and all reduce
activities respectively run in parallel."
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workload.distributions import WeightedChoice
from repro.workload.job import Job, JobType

#: "data from a month's worth of MapReduce jobs run at Google showed
#: that frequently observed values were 5, 11, 200 and 1,000 workers."
CONFIGURED_WORKER_CHOICES = WeightedChoice(
    values=[5, 11, 200, 1000], weights=[0.40, 0.30, 0.25, 0.05]
)


@dataclass(frozen=True)
class MapReduceProfile:
    """Historical shape of one MapReduce job.

    ``maps``/``reduces`` count *activities* (the paper renames
    MapReduce-level "tasks" to activities to avoid clashing with
    cluster-level tasks); workers are cluster tasks that execute them.
    """

    maps: int
    reduces: int
    map_duration: float
    reduce_duration: float
    workers_configured: int
    cpu_per_worker: float = 1.0
    mem_per_worker: float = 2.0

    def __post_init__(self) -> None:
        if self.maps < 1:
            raise ValueError("a MapReduce job needs at least one map activity")
        if self.reduces < 0:
            raise ValueError("reduces must be >= 0")
        if self.map_duration <= 0:
            raise ValueError("map_duration must be positive")
        if self.reduces > 0 and self.reduce_duration <= 0:
            raise ValueError("reduce_duration must be positive when reduces > 0")
        if self.workers_configured < 1:
            raise ValueError("workers_configured must be >= 1")

    # ------------------------------------------------------------------
    @property
    def max_useful_workers(self) -> int:
        """Beyond this, extra workers cannot reduce the completion time
        ("up to the point where all map activities and all reduce
        activities respectively run in parallel")."""
        return max(self.maps, self.reduces, 1)

    def completion_time(self, workers: int) -> float:
        """Predicted completion time with ``workers`` parallel workers.

        Idealized linear speedup within each phase; the map phase must
        finish before the reduce phase (the mapper-reducer dependency).
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        map_time = self.maps * self.map_duration / min(workers, self.maps)
        reduce_time = 0.0
        if self.reduces > 0:
            reduce_time = (
                self.reduces * self.reduce_duration / min(workers, self.reduces)
            )
        return map_time + reduce_time

    def speedup(self, workers: int) -> float:
        """Completion speedup relative to the user-configured size."""
        return self.completion_time(self.workers_configured) / self.completion_time(
            workers
        )


@dataclass
class MapReduceJob(Job):
    """A batch job whose tasks are elastic MapReduce workers.

    ``num_tasks`` is the user-configured worker count at submission; the
    specialized scheduler may grant more (or fewer) workers, recorded in
    ``granted_workers``.
    """

    profile: MapReduceProfile | None = None
    granted_workers: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.profile is None:
            raise ValueError("MapReduceJob requires a profile")

    @classmethod
    def from_profile(cls, profile: MapReduceProfile, submit_time: float) -> "MapReduceJob":
        return cls(
            job_type=JobType.BATCH,
            submit_time=submit_time,
            num_tasks=profile.workers_configured,
            cpu_per_task=profile.cpu_per_worker,
            mem_per_task=profile.mem_per_worker,
            duration=profile.completion_time(profile.workers_configured),
            profile=profile,
        )


#: Reference cell size for worker-count scaling: the paper's observed
#: worker counts (5..1000) come from Google cells of roughly this many
#: machines. Profiles sampled for smaller cells shrink proportionally.
REFERENCE_CELL_MACHINES = 10_000


def sample_profile(
    rng: np.random.Generator, worker_scale: float = 1.0
) -> MapReduceProfile:
    """Sample a MapReduce job profile.

    Activity counts are several times the configured worker count
    ("large MapReduce jobs typically have many more of these activities
    than configured workers"), so most jobs have acceleration headroom.

    ``worker_scale`` shrinks the configured worker counts for scaled-
    down cells (a 1,000-worker job is meaningless on a 200-machine
    cell); use ``num_machines / REFERENCE_CELL_MACHINES``.
    """
    if worker_scale <= 0:
        raise ValueError(f"worker_scale must be positive, got {worker_scale}")
    workers = max(1, round(CONFIGURED_WORKER_CHOICES.sample(rng) * worker_scale))
    activity_ratio = float(rng.lognormal(mean=np.log(4.0), sigma=0.8))
    maps = max(workers, int(workers * max(activity_ratio, 1.0)))
    reduce_ratio = float(rng.uniform(0.0, 0.5))
    reduces = int(maps * reduce_ratio)
    return MapReduceProfile(
        maps=maps,
        reduces=reduces,
        map_duration=float(rng.lognormal(mean=np.log(45.0), sigma=0.8)),
        reduce_duration=float(rng.lognormal(mean=np.log(90.0), sigma=0.8)),
        workers_configured=workers,
        cpu_per_worker=float(rng.lognormal(mean=np.log(0.8), sigma=0.3)),
        mem_per_worker=float(rng.lognormal(mean=np.log(1.5), sigma=0.3)),
    )
