"""Resource-allocation policies for the MapReduce scheduler.

Paper section 6.1: "We consider three different policies for adding
resources: max-parallelism, which keeps on adding workers as long as
benefit is obtained, global cap, which stops the MapReduce scheduler
using idle resources if the total cluster utilization is above a target
value, and relative job size, which limits the maximum number of
workers to four times as many as it initially requested. In each case,
a set of resource allocations to be investigated is run through the
predictive model, and the allocation leading to the earliest possible
finish time is used."
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.mapreduce.model import MapReduceProfile

#: Fraction of genuinely idle resources the opportunistic scheduler is
#: willing to consume ("apportions some fraction of the unused
#: resources across those jobs").
IDLE_USE_FRACTION = 0.9

#: The paper's global-cap utilization threshold ("the threshold, which
#: was set at 60%").
GLOBAL_CAP_THRESHOLD = 0.6


@dataclass(frozen=True)
class ClusterView:
    """What the MapReduce scheduler sees in the shared cell state.

    This whole-cluster visibility is the point of the case study: "To
    do its work, the MapReduce scheduler relies on being able to see
    the entire cluster's state, which is straightforward in the Omega
    architecture."
    """

    idle_cpu: float
    idle_mem: float
    total_cpu: float
    total_mem: float

    @property
    def utilization(self) -> float:
        """CPU utilization (the dominant dimension for MR workers)."""
        return 1.0 - self.idle_cpu / self.total_cpu


class AllocationPolicy(abc.ABC):
    """A policy answers: at most how many workers may this job get?"""

    name: str = "policy"

    @abc.abstractmethod
    def worker_cap(self, profile: MapReduceProfile, view: ClusterView) -> int:
        """Upper bound on total workers for a job under this policy."""


class NoAccelerationPolicy(AllocationPolicy):
    """Baseline: the user-configured size, exactly (Figure 16 "normal")."""

    name = "normal"

    def worker_cap(self, profile: MapReduceProfile, view: ClusterView) -> int:
        return profile.workers_configured


class MaxParallelismPolicy(AllocationPolicy):
    """"keeps on adding workers as long as benefit is obtained"."""

    name = "max-parallelism"

    def worker_cap(self, profile: MapReduceProfile, view: ClusterView) -> int:
        return max(profile.max_useful_workers, profile.workers_configured)


class GlobalCapPolicy(AllocationPolicy):
    """"stops ... using idle resources if the total cluster utilization
    is above a target value"."""

    name = "global-cap"

    def __init__(self, threshold: float = GLOBAL_CAP_THRESHOLD) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold

    def worker_cap(self, profile: MapReduceProfile, view: ClusterView) -> int:
        if view.utilization >= self.threshold:
            return profile.workers_configured
        # Extra workers may consume idle CPU only down to the threshold.
        headroom_cpu = (self.threshold - view.utilization) * view.total_cpu
        extra = int(headroom_cpu / profile.cpu_per_worker)
        cap = profile.workers_configured + max(extra, 0)
        return min(cap, max(profile.max_useful_workers, profile.workers_configured))


class RelativeJobSizePolicy(AllocationPolicy):
    """"limits the maximum number of workers to four times as many as
    it initially requested"."""

    name = "relative-job-size"

    def __init__(self, factor: float = 4.0) -> None:
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.factor = factor

    def worker_cap(self, profile: MapReduceProfile, view: ClusterView) -> int:
        cap = int(profile.workers_configured * self.factor)
        return min(cap, max(profile.max_useful_workers, profile.workers_configured))


def _affordable_workers(profile: MapReduceProfile, view: ClusterView) -> int:
    """Workers the cluster's idle resources can actually host."""
    budget_cpu = view.idle_cpu * IDLE_USE_FRACTION
    budget_mem = view.idle_mem * IDLE_USE_FRACTION
    by_cpu = int(budget_cpu / profile.cpu_per_worker)
    by_mem = int(budget_mem / profile.mem_per_worker)
    return min(by_cpu, by_mem)


def decide_workers(
    profile: MapReduceProfile,
    policy: AllocationPolicy,
    view: ClusterView,
    candidates: int = 16,
) -> int:
    """Pick the worker count with the earliest predicted finish time.

    Evaluates a geometric grid of candidate allocations between the
    configured size and the policy/resource cap through the predictive
    model, per the paper's "a set of resource allocations to be
    investigated is run through the predictive model".
    """
    if candidates < 2:
        raise ValueError(f"candidates must be >= 2, got {candidates}")
    configured = profile.workers_configured
    cap = min(policy.worker_cap(profile, view), _affordable_workers(profile, view))
    cap = max(cap, 1)
    if cap <= configured:
        # No headroom (or the policy forbids growth): ask for the
        # requested size; if even that does not fit, placement itself
        # grants what it can — policies never shrink a job's request.
        return configured
    low, high = configured, cap
    grid = sorted(
        {
            max(1, round(low * (high / low) ** (i / (candidates - 1))))
            for i in range(candidates)
        }
    )
    best = configured
    best_time = profile.completion_time(configured)
    for workers in grid:
        predicted = profile.completion_time(workers)
        if predicted < best_time - 1e-12:
            best = workers
            best_time = predicted
    return best
