"""The flexibility case study: a specialized MapReduce scheduler
(paper section 6).

The scheduler "opportunistically us[es] idle cluster resources to speed
up MapReduce jobs": it observes overall utilization through the shared
cell state (something a two-level framework cannot do), predicts the
benefit of extra workers with a simple performance model, and sizes the
job's worker pool according to a policy:

* **max-parallelism** — keep adding workers while the model predicts
  benefit;
* **global cap** — stop using idle resources when cluster utilization
  exceeds a target (60 %);
* **relative job size** — at most 4x the requested workers.
"""

from repro.mapreduce.model import (
    MapReduceJob,
    MapReduceProfile,
    sample_profile,
)
from repro.mapreduce.policies import (
    AllocationPolicy,
    ClusterView,
    GlobalCapPolicy,
    MaxParallelismPolicy,
    NoAccelerationPolicy,
    RelativeJobSizePolicy,
    decide_workers,
)
from repro.mapreduce.scheduler import MapReduceScheduler, MapReduceWorkload

__all__ = [
    "MapReduceProfile",
    "MapReduceJob",
    "sample_profile",
    "ClusterView",
    "AllocationPolicy",
    "MaxParallelismPolicy",
    "GlobalCapPolicy",
    "RelativeJobSizePolicy",
    "NoAccelerationPolicy",
    "decide_workers",
    "MapReduceScheduler",
    "MapReduceWorkload",
]
