"""Order-preserving parallel execution of independent sweep points.

:func:`parallel_map` is the single entry point: it maps a module-level
function over picklable work items, fanning out across a
``multiprocessing`` pool when ``jobs > 1`` and degrading to a plain
loop when ``jobs <= 1`` or there is only one item. Three guarantees
make it safe for the experiment drivers:

* **Determinism** — results come back in submission order
  (``Pool.map``), and each item's computation must already be
  self-seeded (every sweep point carries its master seed; see
  :func:`point_seed` for deriving distinct per-point seeds from one
  master seed). Serial and parallel runs therefore produce identical
  result tables.
* **Trace equivalence** — when the process-global trace recorder is
  enabled, workers cannot write to the parent's recorder. Instead each
  worker captures its records in a private in-memory recorder and the
  parent replays them, in submission order, through
  :meth:`repro.obs.TraceRecorder.replay` (which renumbers span ids).
  The stitched trace is byte-identical to a serial run's, apart from
  wall-clock fields.
* **Isolation** — workers always reset the global recorder first, so a
  forked copy of a file-backed parent recorder can never interleave
  writes into the parent's file descriptor.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Sequence

from repro.obs import recorder as _obs
from repro.sim.random import derive_seed


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0 means one worker per CPU."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def point_seed(master_seed: int, label: str) -> int:
    """A stable per-point seed derived from a sweep's master seed.

    Thin wrapper over the golden-pinned :func:`~repro.sim.random.derive_seed`
    so sweep drivers that want *distinct* seeds per point (e.g. repeated
    trials of one configuration) get seeds that depend only on the
    point's label — never on execution order or worker assignment.
    """
    return derive_seed(master_seed, f"sweep-point:{label}")


def _plain_call(payload: tuple[Callable[..., Any], tuple]) -> Any:
    """Worker body when the parent is not tracing."""
    fn, args = payload
    # A forked worker inherits the parent's global recorder; writing
    # through it (worse: through its file descriptor) would corrupt the
    # parent's trace, so always drop to the null recorder first.
    _obs.reset_recorder()
    return fn(*args)


def _capturing_call(payload: tuple[Callable[..., Any], tuple]) -> tuple[Any, list[dict]]:
    """Worker body when the parent is tracing: capture records locally."""
    fn, args = payload
    from repro.obs.recorder import TraceRecorder

    recorder = TraceRecorder(keep_records=True)
    _obs.set_recorder(recorder)
    try:
        result = fn(*args)
    finally:
        _obs.reset_recorder()
        recorder.close()
    return result, recorder.records


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int | None = 1,
) -> list[Any]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``fn`` must be a module-level (picklable-by-reference) function and
    each item must be picklable. Results are returned in item order
    regardless of completion order. ``jobs=None`` or ``0`` uses one
    worker per CPU; ``jobs<=1`` (or a single item) runs serially in
    this process, under the parent's trace recorder as usual.
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]

    recorder = _obs.RECORDER
    payloads = [(fn, (item,)) for item in items]
    processes = min(jobs, len(items))
    with multiprocessing.Pool(processes=processes) as pool:
        if recorder.enabled:
            captured = pool.map(_capturing_call, payloads, chunksize=1)
            results = []
            for result, records in captured:
                recorder.replay(records)
                results.append(result)
            return results
        return pool.map(_plain_call, payloads, chunksize=1)
