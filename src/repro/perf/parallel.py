"""Order-preserving parallel execution of independent sweep points.

:func:`parallel_map` is the single entry point the experiment drivers
use: it maps a module-level function over picklable work items, fanning
out across supervised worker processes when ``jobs > 1`` and degrading
to a plain loop when ``jobs <= 1`` or there is only one item. Three
guarantees make it safe for the experiment drivers:

* **Determinism** — results come back in submission order, and each
  item's computation must already be self-seeded (every sweep point
  carries its master seed; see :func:`point_seed` for deriving distinct
  per-point seeds from one master seed). Serial and parallel runs
  therefore produce identical result tables.
* **Trace equivalence** — when the process-global trace recorder is
  enabled, workers cannot write to the parent's recorder. Instead each
  worker captures its records in a private in-memory recorder and the
  parent replays them, in submission order, through
  :meth:`repro.obs.TraceRecorder.replay` (which renumbers span ids).
  The stitched trace is byte-identical to a serial run's, apart from
  wall-clock fields.
* **Isolation** — workers always reset the global recorder first, so a
  forked copy of a file-backed parent recorder can never interleave
  writes into the parent's file descriptor.

Execution itself lives in :mod:`repro.recovery`: points run under a
supervisor (per-point timeouts, bounded retry on worker crashes,
degradation to serial when the pool is unhealthy) and, when the CLI
activated a checkpoint (``--checkpoint DIR``), completed points are
durably logged and skipped on ``--resume``. ``labels`` gives each
point a stable human-readable identity for checkpoint records and
failure messages; drivers pass the point's extra row fields.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Sequence

from repro.sim.random import derive_seed


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0 means one worker per CPU."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def point_seed(master_seed: int, label: str) -> int:
    """A stable per-point seed derived from a sweep's master seed.

    Thin wrapper over the golden-pinned :func:`~repro.sim.random.derive_seed`
    so sweep drivers that want *distinct* seeds per point (e.g. repeated
    trials of one configuration) get seeds that depend only on the
    point's label — never on execution order or worker assignment.
    """
    return derive_seed(master_seed, f"sweep-point:{label}")


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int | None = 1,
    labels: Sequence[str] | None = None,
) -> list[Any]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    ``fn`` must be a module-level (picklable-by-reference) function and
    each item must be picklable. Results are returned in item order
    regardless of completion order. ``jobs=None`` or ``0`` uses one
    worker per CPU; ``jobs<=1`` (or a single item) runs serially in
    this process, under the parent's trace recorder as usual.

    Execution is supervised and checkpoint-aware — see
    :func:`repro.recovery.runner.execute_map` and docs/RECOVERY.md.
    """
    from repro.recovery.runner import execute_map

    return execute_map(fn, items, jobs=resolve_jobs(jobs), labels=labels)
