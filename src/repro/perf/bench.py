"""Curated performance benchmarks and the regression gate behind
``omega-sim bench``.

Eight benchmarks cover the hot paths this repository optimises:

``snapshot_resync``
    Incremental :meth:`repro.core.cellstate.CellSnapshot.resync` against
    taking a fresh full-copy snapshot, under an identical mutation
    schedule. The delta path must win by at least
    :data:`RESYNC_SPEEDUP_FLOOR`.
``placement_pack``
    :func:`repro.core.placement.randomized_first_fit` throughput over a
    realistic half-full cell, against a retained copy of the
    pre-vectorization kernel (full candidate shuffle + scalar pack).
    The sampled kernel must win by :data:`PLACEMENT_SPEEDUP_FLOOR`
    (:data:`PLACEMENT_SPEEDUP_FLOOR_SMOKE` at smoke sizes — the legacy
    kernel's shuffle cost shrinks with the cell).
``commit_batch``
    Large-transaction :func:`repro.core.transaction.commit` (batched
    validation + ``CellState.claim_batch`` scatter apply) against the
    retained scalar :func:`~repro.core.transaction.commit_reference`,
    on identical states and claim schedules; the outcomes must be
    byte-identical and the batched path must win by
    :data:`COMMIT_BATCH_SPEEDUP_FLOOR`.
``paper_scale``
    An honest paper-scale proof: a Figure-5-style service-decision-time
    sweep on a 10,000-machine cluster-B cell over a multi-day horizon,
    reporting wall time, simulated events/second, and the figure's
    result rows. Full runs must actually be at paper scale
    (:data:`PAPER_SCALE_MACHINES` machines,
    :data:`PAPER_SCALE_MIN_DAYS` simulated days); smoke runs record a
    scaled-down version without enforcing the shape.
``event_loop``
    Raw :class:`repro.sim.Simulator` dispatch throughput
    (events/second).
``tracing_overhead``
    The event-loop benchmark with an instrumented tick: uninstrumented
    vs no-op recorder vs active recorder vs active recorder plus the
    :class:`~repro.obs.timeline.TimelineSampler`. The no-op recorder
    (the default in every untraced run) must retain at least
    :data:`NOOP_THROUGHPUT_FLOOR` of uninstrumented throughput.
``sanitizer_overhead``
    ``CellState.claim``/``release`` throughput with the omega-san hook
    sites compared against a hook-free replica of the same arithmetic,
    and against a fully active sanitizer. The off mode (the ``ACTIVE is
    None`` guard every unsanitized run pays) must retain at least
    :data:`SANITIZER_OFF_FLOOR` of hook-free throughput — enforced even
    in smoke runs, since the guard's cost is size-independent.
``predictor_overhead``
    The Omega attempt hot path (snapshot placement + commit) with the
    conflict-predictor hook sites compared against a hook-free replica
    of the same arithmetic, and against a fully active
    :class:`~repro.faults.predictor.ConflictPredictor` (hotness reads,
    steering, conflict/commit observations). The off mode (the
    ``predictor is None`` guards every predictor-off run pays) must
    retain at least :data:`PREDICTOR_OFF_FLOOR` of hook-free throughput
    — enforced even in smoke runs, since the guards' cost is
    size-independent.
``federation_overhead``
    A 1-cell/zero-staleness/zero-fault federated run against the plain
    single-cell simulation of the identical configuration. The two runs
    process the same event schedule (the degenerate-baseline identity),
    so the ratio isolates the federation plumbing's cost: the shared
    event loop, the front door on every submission, and per-cell
    finalization. The federated run must retain at least
    :data:`FEDERATION_OVERHEAD_FLOOR` of plain throughput — enforced
    even in smoke runs, since the per-event overhead is
    size-independent.
``sweep_serial_parallel``
    A reduced Figure 5c sweep run serially and with ``--jobs 4``
    through :mod:`repro.perf.parallel`. The rows must be byte-identical
    (JSON-encoded, so NaN == NaN); the speedup expectation
    (:data:`PARALLEL_SPEEDUP_FLOOR`) is only enforced on machines with
    at least four cores — a single-core container cannot demonstrate it,
    and the result JSON records the machine so readers can tell.

Results serialize to JSON (see :func:`run_benchmarks`), and
:func:`gate` compares a fresh run against a committed baseline with a
relative tolerance, skipping wall-clock comparisons when the machine
shape changed.

Wall-clock reads here are intentional (this module *measures* wall
time) and allowlisted for omega-lint DET002 in ``pyproject.toml``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Callable

import numpy as np

from repro.core.cellstate import CellState
from repro.core.placement import randomized_first_fit
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

#: Bump when the JSON layout changes incompatibly.
FORMAT_VERSION = 1

#: Incremental resync must beat a fresh full-copy snapshot by this much.
RESYNC_SPEEDUP_FLOOR = 1.5

#: The sampled placement kernel must beat the retained pre-vectorization
#: kernel (full-cell mask + shuffle + scalar pack) by this much at full
#: (10k-machine) size.
PLACEMENT_SPEEDUP_FLOOR = 5.0

#: Placement floor at smoke sizes. The legacy kernel's dominant cost —
#: shuffling every feasible machine — shrinks with the cell, so the
#: achievable ratio at 2,000 machines is smaller (observed 2.7-3.3x
#: quiet, dipping below 2x when CI shares the core); it is still
#: enforced so CI catches kernel regressions without the full bench.
PLACEMENT_SPEEDUP_FLOOR_SMOKE = 1.3

#: Batched commit (array validation + ``claim_batch`` scatter apply)
#: must beat the retained scalar ``commit_reference`` by this much at
#: full size.
COMMIT_BATCH_SPEEDUP_FLOOR = 3.0

#: Commit floor at smoke sizes (observed ~4x at 2,000 machines quiet;
#: loosened below the full-run floor for headroom on shared CI cores).
COMMIT_BATCH_SPEEDUP_FLOOR_SMOKE = 2.0

#: Full-mode paper-scale proof: the Figure-5-style sweep must actually
#: run at the paper's cell size and a multi-day horizon.
PAPER_SCALE_MACHINES = 10_000
PAPER_SCALE_MIN_DAYS = 2.0

#: The reduced Figure 5c sweep at ``--jobs 4`` must beat serial by this
#: much — enforced only when the machine has >= 4 cores.
PARALLEL_SPEEDUP_FLOOR = 2.0

#: Core count below which the parallel-speedup expectation is recorded
#: but not enforced.
PARALLEL_MIN_CORES = 4

#: The default no-op recorder must keep at least this fraction of
#: uninstrumented event-loop throughput (i.e. tracing hooks may cost
#: untraced runs at most ~20%).
NOOP_THROUGHPUT_FLOOR = 0.8

#: With the sanitizer uninstalled, claim/release must keep at least
#: this fraction of hook-free throughput (i.e. the ``ACTIVE is None``
#: guards may cost unsanitized runs at most ~10%).
SANITIZER_OFF_FLOOR = 0.9

#: With no predictor installed, the attempt hot path must keep at least
#: this fraction of hook-free throughput (i.e. the ``predictor is
#: None`` guards may cost predictor-off runs at most ~10%).
PREDICTOR_OFF_FLOOR = 0.9

#: A 1-cell federated run must keep at least this fraction of the plain
#: single-cell event-loop throughput (i.e. the front door + shared-loop
#: plumbing may cost a degenerate federation at most ~10%).
FEDERATION_OVERHEAD_FLOOR = 0.9

#: Relative tolerance for baseline regression comparisons.
DEFAULT_TOLERANCE = 0.25


def machine_info() -> dict:
    """The machine facts a benchmark result is only meaningful with."""
    import os

    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def _best_of(repeats: int, run: Callable[[], float]) -> float:
    """Best (minimum) wall-seconds over ``repeats`` runs — the standard
    noise-rejection discipline for microbenchmarks."""
    return min(run() for _ in range(max(1, repeats)))


# ----------------------------------------------------------------------
# snapshot_resync
# ----------------------------------------------------------------------
def _bench_cell(num_machines: int):
    from repro.cluster import Cell

    return Cell.homogeneous(
        num_machines, cpu_per_machine=16.0, mem_per_machine=64.0, name="bench"
    )


def bench_snapshot_resync(
    num_machines: int = 10_000,
    iterations: int = 400,
    writes_per_iteration: int = 8,
    repeats: int = 3,
) -> dict:
    """Time full-copy snapshots vs incremental resync under the same
    mutation schedule.

    Each iteration claims resources on a few random machines (the master
    moves on, as when other schedulers commit) and then refreshes the
    scheduler's private view — by taking a fresh snapshot in the
    full-copy phase, by :meth:`CellSnapshot.resync` in the delta phase.
    """
    streams = RandomStreams(0)

    def mutation_schedule() -> list[list[int]]:
        rng = streams.stream("bench.resync.machines")
        return [
            [int(m) for m in rng.integers(0, num_machines, writes_per_iteration)]
            for _ in range(iterations)
        ]

    def run_full() -> float:
        state = CellState(_bench_cell(num_machines))
        total = 0.0
        for machines in mutation_schedule():
            for machine in machines:
                state.claim(machine, 0.001, 0.001)
            start = time.perf_counter()
            view = state.snapshot(0.0)
            total += time.perf_counter() - start
        assert view.version == state.version
        return total

    def run_resync() -> float:
        state = CellState(_bench_cell(num_machines))
        view = state.snapshot(0.0)
        total = 0.0
        for machines in mutation_schedule():
            for machine in machines:
                state.claim(machine, 0.001, 0.001)
            start = time.perf_counter()
            view.resync(state)
            total += time.perf_counter() - start
        # The delta-synced view must equal a fresh snapshot exactly.
        fresh = state.snapshot(0.0)
        assert np.array_equal(view.free_cpu, fresh.free_cpu)
        assert np.array_equal(view.free_mem, fresh.free_mem)
        assert np.array_equal(view.seq, fresh.seq)
        return total

    full_s = _best_of(repeats, run_full)
    resync_s = _best_of(repeats, run_resync)
    return {
        "num_machines": num_machines,
        "iterations": iterations,
        "writes_per_iteration": writes_per_iteration,
        "full_copy_s": full_s,
        "resync_s": resync_s,
        "speedup": full_s / resync_s if resync_s > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# placement_pack
# ----------------------------------------------------------------------
def _legacy_randomized_first_fit(free_cpu, free_mem, cpu, mem, num_tasks, rng):
    """The pre-vectorization placement kernel, retained verbatim as the
    speedup baseline: mask the whole cell, shuffle *every* feasible
    machine, then walk the shuffled order with scalar numpy indexing."""
    from repro.core.cellstate import EPSILON
    from repro.core.transaction import Claim

    candidates = np.flatnonzero(
        (free_cpu + EPSILON >= cpu) & (free_mem + EPSILON >= mem)
    )
    if candidates.size == 0:
        return []
    rng.shuffle(candidates)
    claims = []
    remaining = num_tasks
    for machine in candidates:
        per_machine = remaining
        if cpu > 0:
            per_machine = min(per_machine, int((free_cpu[machine] + EPSILON) // cpu))
        if mem > 0:
            per_machine = min(per_machine, int((free_mem[machine] + EPSILON) // mem))
        if per_machine <= 0:
            continue
        claims.append(
            Claim(machine=int(machine), cpu=cpu, mem=mem, count=per_machine)
        )
        remaining -= per_machine
        if remaining == 0:
            break
    return claims


def bench_placement_pack(
    num_machines: int = 10_000,
    placements: int = 300,
    tasks_per_job: int = 50,
    repeats: int = 3,
) -> dict:
    """Randomized-first-fit throughput over a half-full cell, current
    sampled kernel vs the retained pre-vectorization kernel.

    Both kernels run the same placement count over the same free arrays
    with independent forks of the same stream family; the enforced
    number is their throughput ratio (``speedup``)."""
    streams = RandomStreams(1)
    fill_rng = streams.stream("bench.placement.fill")
    free_cpu = fill_rng.uniform(0.0, 8.0, num_machines)
    free_mem = fill_rng.uniform(0.0, 32.0, num_machines)

    def run(kernel) -> float:
        rng = streams.fork("bench.placement").stream("pack")
        start = time.perf_counter()
        planned = 0
        for _ in range(placements):
            claims = kernel(free_cpu, free_mem, 0.5, 1.0, tasks_per_job, rng)
            planned += sum(claim.count for claim in claims)
        elapsed = time.perf_counter() - start
        assert planned > 0
        return elapsed

    wall_s = _best_of(repeats, lambda: run(randomized_first_fit))
    legacy_s = _best_of(repeats, lambda: run(_legacy_randomized_first_fit))
    return {
        "num_machines": num_machines,
        "placements": placements,
        "tasks_per_job": tasks_per_job,
        "wall_s": wall_s,
        "placements_per_s": placements / wall_s if wall_s > 0 else float("inf"),
        "legacy_wall_s": legacy_s,
        "legacy_placements_per_s": (
            placements / legacy_s if legacy_s > 0 else float("inf")
        ),
        "speedup": legacy_s / wall_s if wall_s > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# commit_batch
# ----------------------------------------------------------------------
def bench_commit_batch(
    num_machines: int = 10_000,
    transactions: int = 200,
    claims_per_txn: int = 256,
    hot_machines: int = 256,
    repeats: int = 3,
) -> dict:
    """Large-transaction commit throughput, batched vs scalar reference.

    Builds one deterministic schedule of ``transactions`` transactions
    (``claims_per_txn`` distinct machines each), then replays it twice
    against identically-seeded cells: once through :func:`commit`
    (batched validation + ``claim_batch`` scatter apply) and once
    through the retained :func:`commit_reference` scalar walk. Every
    fifth transaction targets a small hot-machine subset with larger
    claims, so the schedule exercises the partial-accept and
    capacity-reject paths, not just clean accepts. The private view
    resyncs before each commit (the real scheduler discipline) but only
    the commit calls are timed — resync has its own benchmark — and the
    two replays must produce identical :class:`CommitResult` sequences
    and bit-identical final cell states.
    """
    from repro.core.transaction import Claim, commit, commit_reference

    streams = RandomStreams(3)
    plan_rng = streams.stream("bench.commit.plan")
    plans = []
    for index in range(transactions):
        if index % 5 == 4:
            machines = plan_rng.choice(
                hot_machines, min(claims_per_txn, hot_machines), replace=False
            )
            cpu, mem, count = 0.5, 2.0, 4
        else:
            machines = plan_rng.choice(num_machines, claims_per_txn, replace=False)
            cpu, mem, count = 0.05, 0.2, 2
        plans.append(
            [Claim(int(m), cpu, mem, count) for m in machines.tolist()]
        )

    def run(commit_fn):
        state = CellState(_bench_cell(num_machines))
        view = state.snapshot(0.0)
        results = []
        elapsed = 0.0
        for claims in plans:
            view.resync(state)
            start = time.perf_counter()
            results.append(commit_fn(state, claims, view))
            elapsed += time.perf_counter() - start
        return elapsed, results, state

    batch_s = float("inf")
    reference_s = float("inf")
    identical = True
    for _ in range(max(1, repeats)):
        elapsed, results, state = run(commit)
        ref_elapsed, ref_results, ref_state = run(commit_reference)
        batch_s = min(batch_s, elapsed)
        reference_s = min(reference_s, ref_elapsed)
        identical = identical and (
            results == ref_results
            and np.array_equal(state.free_cpu, ref_state.free_cpu)
            and np.array_equal(state.free_mem, ref_state.free_mem)
            and np.array_equal(state.seq, ref_state.seq)
            and state.version == ref_state.version
            and state.used_cpu == ref_state.used_cpu  # omega-lint: disable=FLT001 -- bit-identity is the claim under test
            and state.used_mem == ref_state.used_mem  # omega-lint: disable=FLT001 -- bit-identity is the claim under test
        )
    total_claims = sum(len(plan) for plan in plans)
    return {
        "num_machines": num_machines,
        "transactions": transactions,
        "claims_per_txn": claims_per_txn,
        "batch_s": batch_s,
        "reference_s": reference_s,
        "batch_claims_per_s": (
            total_claims / batch_s if batch_s > 0 else float("inf")
        ),
        "reference_claims_per_s": (
            total_claims / reference_s if reference_s > 0 else float("inf")
        ),
        "speedup": reference_s / batch_s if batch_s > 0 else float("inf"),
        "identical_outcomes": bool(identical),
    }


# ----------------------------------------------------------------------
# paper_scale
# ----------------------------------------------------------------------
def bench_paper_scale(
    horizon_days: float = 3.0,
    t_jobs=(0.1, 1.0, 10.0),
    cluster: str = "B",
    machines: int = PAPER_SCALE_MACHINES,
    seed: int = 0,
) -> dict:
    """An honest Figure-5-style sweep at paper scale.

    Scales the named cluster preset up to ``machines`` machines and runs
    the service-decision-time sweep over a ``horizon_days`` horizon,
    point by point, recording wall time, simulated events and the
    figure's result rows. No shortcuts: every row comes from a complete
    discrete-event run at the stated size.
    """
    from repro.experiments.sweeps import result_row, service_decision_points
    from repro.workload.clusters import preset_by_name

    day_s = 86_400.0
    base = preset_by_name(cluster)
    scale = machines / base.num_machines
    points = service_decision_points(
        "omega",
        t_jobs=t_jobs,
        clusters=(cluster,),
        horizon=horizon_days * day_s,
        seed=seed,
        scale=scale,
    )
    from repro.experiments.common import run_lightweight

    actual_machines = points[0][0].preset.num_machines
    rows = []
    total_events = 0
    start = time.perf_counter()
    for config, extra in points:
        point_start = time.perf_counter()
        result = run_lightweight(config)
        point_wall = time.perf_counter() - point_start
        row = result_row(result, **extra)
        row["events_processed"] = result.events_processed
        row["wall_s"] = point_wall
        rows.append(row)
        total_events += result.events_processed
    wall_s = time.perf_counter() - start
    return {
        "cluster": cluster,
        "machines": actual_machines,
        "horizon_days": horizon_days,
        "t_jobs": list(t_jobs),
        "points": len(points),
        "wall_s": wall_s,
        "events_processed": total_events,
        "events_per_s": total_events / wall_s if wall_s > 0 else float("inf"),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# event_loop
# ----------------------------------------------------------------------
def bench_event_loop(events: int = 200_000, repeats: int = 3) -> dict:
    """Raw event-dispatch throughput of the discrete-event engine."""

    def run() -> float:
        sim = Simulator()
        remaining = [events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.after(1.0, tick)

        sim.after(1.0, tick)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        assert sim.events_processed == events
        return elapsed

    wall_s = _best_of(repeats, run)
    return {
        "events": events,
        "wall_s": wall_s,
        "events_per_s": events / wall_s if wall_s > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# tracing_overhead
# ----------------------------------------------------------------------
def bench_tracing_overhead(
    events: int = 200_000, repeats: int = 3, timeline_every: float = 100.0
) -> dict:
    """Event-loop throughput under increasing instrumentation.

    Four modes, same event count: ``plain`` (uninstrumented tick, the
    ``event_loop`` benchmark's shape), ``noop`` (the tick checks
    ``RECORDER.enabled`` exactly like real hot paths — the cost every
    untraced run pays), ``active`` (an in-memory
    :class:`~repro.obs.TraceRecorder`, one record per event) and
    ``timeline`` (active recorder plus a
    :class:`~repro.obs.timeline.TimelineSampler` ticking every
    ``timeline_every`` simulated seconds).
    """
    from repro import obs
    from repro.metrics import MetricsCollector
    from repro.obs import recorder as _obs
    from repro.obs.timeline import TimelineSampler

    def run(mode: str) -> float:
        sim = Simulator()
        remaining = [events]

        if mode == "plain":

            def tick() -> None:
                remaining[0] -= 1
                if remaining[0] > 0:
                    sim.after(1.0, tick)

        else:

            def tick() -> None:
                rec = _obs.RECORDER
                if rec.enabled:
                    rec.event("bench.tick", t=sim.now)
                remaining[0] -= 1
                if remaining[0] > 0:
                    sim.after(1.0, tick)

        previous = obs.get_recorder()
        if mode in ("active", "timeline"):
            obs.set_recorder(obs.TraceRecorder(keep_records=False))
        if mode == "timeline":
            sampler = TimelineSampler(
                sim,
                MetricsCollector(),
                states=[],
                schedulers=[],
                interval=timeline_every,
                horizon=float(events),
            )
            sampler.install()
        sim.after(1.0, tick)
        try:
            start = time.perf_counter()
            sim.run()
            elapsed = time.perf_counter() - start
        finally:
            obs.set_recorder(previous)
        assert remaining[0] == 0
        return elapsed

    timings = {mode: _best_of(repeats, lambda m=mode: run(m))
               for mode in ("plain", "noop", "active", "timeline")}
    rates = {
        f"{mode}_events_per_s": events / wall_s if wall_s > 0 else float("inf")
        for mode, wall_s in timings.items()
    }
    return {
        "events": events,
        "timeline_every_s": timeline_every,
        **{f"{mode}_s": wall_s for mode, wall_s in timings.items()},
        **rates,
        "noop_throughput_ratio": (
            rates["noop_events_per_s"] / rates["plain_events_per_s"]
            if rates["plain_events_per_s"] > 0
            else float("inf")
        ),
    }


# ----------------------------------------------------------------------
# sanitizer_overhead
# ----------------------------------------------------------------------
def bench_sanitizer_overhead(
    num_machines: int = 2_000, operations: int = 200_000, repeats: int = 3
) -> dict:
    """Cost of the omega-san hook sites in ``claim``/``release``.

    Three modes run the same claim-then-release schedule:

    * ``plain`` — a hook-free replica of the exact CellState arithmetic
      (what the mutation paths cost before the sanitizer existed);
    * ``off`` — the real :class:`CellState` with the sanitizer
      uninstalled, paying only the ``ACTIVE is None`` guard;
    * ``on`` — the same schedule under an installed sanitizer inside a
      sanctioned scope (ownership, scope and shadow-replay checks live).

    ``off_throughput_ratio`` (off/plain, best interleaved round) must
    stay at least :data:`SANITIZER_OFF_FLOOR`; the guard's cost does not
    depend on benchmark size, so the floor is enforced even in smoke
    runs.
    """
    from repro.analysis import sanitizer as _san
    from repro.core.cellstate import EPSILON, OvercommitError

    streams = RandomStreams(2)
    machines = [
        int(m)
        for m in streams.stream("bench.san.machines").integers(
            0, num_machines, operations
        )
    ]

    # The plain mode is *deliberately* a hook-free copy of the claim/
    # release arithmetic applied to a real CellState — the thing TXN001
    # exists to forbid everywhere else — so each write carries a
    # suppression.
    def plain_claim(state, machine: int, cpu: float, mem: float) -> None:
        if (
            state.free_cpu[machine] + EPSILON < cpu
            or state.free_mem[machine] + EPSILON < mem
        ):
            raise OvercommitError(f"bench claim does not fit on {machine}")
        state.free_cpu[machine] -= cpu  # omega-lint: disable=TXN001 -- hook-free baseline replica
        state.free_mem[machine] -= mem  # omega-lint: disable=TXN001 -- hook-free baseline replica
        if state.free_cpu[machine] < 0.0:
            state.free_cpu[machine] = 0.0  # omega-lint: disable=TXN001 -- hook-free baseline replica
        if state.free_mem[machine] < 0.0:
            state.free_mem[machine] = 0.0  # omega-lint: disable=TXN001 -- hook-free baseline replica
        state._used_cpu += cpu
        state._used_mem += mem
        state.seq[machine] += 1  # omega-lint: disable=TXN001 -- hook-free baseline replica
        state._touch(machine)

    def plain_release(state, machine: int, cpu: float, mem: float) -> None:
        new_free_cpu = state.free_cpu[machine] + cpu
        new_free_mem = state.free_mem[machine] + mem
        if (
            new_free_cpu > state.cell.cpu_capacity[machine] + EPSILON
            or new_free_mem > state.cell.mem_capacity[machine] + EPSILON
        ):
            raise OvercommitError(f"bench release exceeds capacity on {machine}")
        old_free_cpu = float(state.free_cpu[machine])
        old_free_mem = float(state.free_mem[machine])
        state.free_cpu[machine] = min(  # omega-lint: disable=TXN001 -- hook-free baseline replica
            new_free_cpu, state.cell.cpu_capacity[machine]
        )
        state.free_mem[machine] = min(  # omega-lint: disable=TXN001 -- hook-free baseline replica
            new_free_mem, state.cell.mem_capacity[machine]
        )
        state._used_cpu -= float(state.free_cpu[machine]) - old_free_cpu
        state._used_mem -= float(state.free_mem[machine]) - old_free_mem
        state.seq[machine] += 1  # omega-lint: disable=TXN001 -- hook-free baseline replica
        state._touch(machine)

    def run(mode: str) -> float:
        state = CellState(_bench_cell(num_machines))
        previous = _san.ACTIVE
        scope = None
        try:
            if mode == "on":
                san = _san.install()
                san.begin_run()
                scope = san.scope("bench")
                scope.__enter__()
            else:
                _san.uninstall()
            start = time.perf_counter()
            if mode == "plain":
                for machine in machines:
                    plain_claim(state, machine, 0.001, 0.001)
                    plain_release(state, machine, 0.001, 0.001)
            else:
                for machine in machines:
                    state.claim(machine, 0.001, 0.001)
                    state.release(machine, 0.001, 0.001)
            elapsed = time.perf_counter() - start
        finally:
            if scope is not None:
                scope.__exit__(None, None, None)
            _san.ACTIVE = previous
        assert state.used_cpu < 1.0
        return elapsed

    # Interleave the modes round-robin (rather than all repeats of one
    # mode back-to-back) so CPU-frequency and load drift hits every mode
    # equally — the off/plain ratio is the enforced number and a few
    # percent of block-ordering bias would swamp the real guard cost.
    modes = ("plain", "off", "on")
    for mode in modes:
        run(mode)  # warm-up: first-touch allocation and code caches
    timings = {mode: float("inf") for mode in modes}
    round_ratios = []
    for _ in range(repeats):
        round_times = {mode: run(mode) for mode in modes}
        for mode in modes:
            timings[mode] = min(timings[mode], round_times[mode])
        round_ratios.append(round_times["plain"] / round_times["off"])
    rates = {
        f"{mode}_ops_per_s": (
            2 * operations / wall_s if wall_s > 0 else float("inf")
        )
        for mode, wall_s in timings.items()
    }
    return {
        "num_machines": num_machines,
        "operations": operations,
        **{f"{mode}_s": wall_s for mode, wall_s in timings.items()},
        **rates,
        # Best paired round, not min-of-runs: scheduling noise can only
        # make the off mode look *slower* than it is, so the fairest
        # bound on the intrinsic guard cost is the round where the two
        # adjacent runs saw the most equal conditions.
        "off_throughput_ratio": max(round_ratios),
        "on_overhead_x": (
            rates["plain_ops_per_s"] / rates["on_ops_per_s"]
            if rates["on_ops_per_s"] > 0
            else float("inf")
        ),
    }


# ----------------------------------------------------------------------
# predictor_overhead
# ----------------------------------------------------------------------
def bench_predictor_overhead(
    num_machines: int = 2_000,
    attempts: int = 5_000,
    tasks_per_job: int = 10,
    repeats: int = 3,
) -> dict:
    """Cost of the conflict-predictor hook sites on the attempt path.

    Three modes run the same resync → place → commit schedule (the
    :meth:`~repro.core.scheduler.OmegaScheduler.attempt` hot path):

    * ``plain`` — a hook-free replica: placement and :func:`commit`
      called directly, no predictor branches anywhere (what an attempt
      cost before the predictor existed);
    * ``off`` — the real guard shape with ``predictor=None``: the
      hotness check before placement and the ``on_conflict``/
      ``observe_commit`` guards around commit, all short-circuiting
      (the cost every predictor-off run pays);
    * ``on`` — an active :class:`~repro.faults.predictor.
      ConflictPredictor` fed a synthetic contention stream, so every
      attempt pays hotness reads, steered placement and the
      conflict/commit observations.

    ``off_throughput_ratio`` (off/plain, best interleaved round) must
    stay at least :data:`PREDICTOR_OFF_FLOOR`; the guards' cost does
    not depend on benchmark size, so the floor is enforced even in
    smoke runs.
    """
    from repro.core.placement import placement_fn, steered_placement
    from repro.core.transaction import commit
    from repro.faults.predictor import ConflictPredictor, PredictorConfig

    class _BenchJob:
        """The three attributes the placement closures read."""

        cpu_per_task = 0.05
        mem_per_task = 0.2
        unplaced_tasks = tasks_per_job

    placement = placement_fn("random-first-fit")

    def run(mode: str) -> float:
        state = CellState(_bench_cell(num_machines))
        view = state.snapshot(0.0)
        # Fresh streams per run: plain and off execute the identical
        # draw schedule, so the ratio isolates the guard cost.
        rng = RandomStreams(5).stream("bench.predictor.pack")
        predictor = (
            ConflictPredictor(PredictorConfig()) if mode == "on" else None
        )
        job = _BenchJob()
        nowref = [0.0]

        def observe(machine: int, tasks: int, cause: str) -> None:
            predictor.observe_conflict(machine, tasks, cause, nowref[0])

        start = time.perf_counter()
        for index in range(attempts):
            now = nowref[0] = float(index)
            view.resync(state)
            if mode == "plain":
                claims = placement(view, job, rng)
                result = commit(state, claims, view)
            else:
                hot: tuple[int, ...] = ()
                if predictor is not None:
                    # Synthetic contention feed: keeps the hot set
                    # populated against decay so steering stays live.
                    predictor.observe_conflict(index % 16, 4, "capacity", now)
                    hot = predictor.hot_machines(now)
                if hot:
                    claims, _ = steered_placement(placement, view, job, rng, hot)
                else:
                    claims = placement(view, job, rng)
                result = commit(
                    state,
                    claims,
                    view,
                    on_conflict=(observe if predictor is not None else None),
                )
                if predictor is not None:
                    predictor.observe_commit(bool(result.rejected), now)
            for claim in result.accepted:
                state.release(
                    claim.machine, claim.cpu * claim.count, claim.mem * claim.count
                )
        elapsed = time.perf_counter() - start
        assert state.used_cpu < 1.0
        return elapsed

    # Interleave the modes round-robin (see bench_sanitizer_overhead):
    # the off/plain ratio is the enforced number and block-ordering bias
    # would swamp the real guard cost.
    modes = ("plain", "off", "on")
    for mode in modes:
        run(mode)  # warm-up: first-touch allocation and code caches
    timings = {mode: float("inf") for mode in modes}
    round_ratios = []
    for _ in range(max(1, repeats)):
        round_times = {mode: run(mode) for mode in modes}
        for mode in modes:
            timings[mode] = min(timings[mode], round_times[mode])
        round_ratios.append(round_times["plain"] / round_times["off"])
    rates = {
        f"{mode}_attempts_per_s": (
            attempts / wall_s if wall_s > 0 else float("inf")
        )
        for mode, wall_s in timings.items()
    }
    return {
        "num_machines": num_machines,
        "attempts": attempts,
        "tasks_per_job": tasks_per_job,
        **{f"{mode}_s": wall_s for mode, wall_s in timings.items()},
        **rates,
        # Best paired round, not min-of-runs — scheduling noise can only
        # make the off mode look slower than it is.
        "off_throughput_ratio": max(round_ratios),
        "on_overhead_x": (
            rates["plain_attempts_per_s"] / rates["on_attempts_per_s"]
            if rates["on_attempts_per_s"] > 0
            else float("inf")
        ),
    }


# ----------------------------------------------------------------------
# federation_overhead
# ----------------------------------------------------------------------
def bench_federation_overhead(
    scale: float = 0.2,
    horizon: float = 3600.0,
    seed: int = 7,
    cluster: str = "B",
    repeats: int = 3,
) -> dict:
    """Cost of the federation plumbing on the degenerate baseline.

    Two modes run the identical configuration end to end (build + run):

    * ``plain`` — the single-cell :class:`~repro.experiments.common.
      LightweightSimulation`, exactly what ``omega-sim omega`` runs;
    * ``federated`` — the same cell wrapped in a 1-cell, zero-staleness,
      zero-fault :class:`~repro.federation.FederatedSimulation`, so
      every arrival crosses the front door and the cell shares the
      federation's event loop.

    The degenerate-baseline identity guarantees both modes process the
    same simulated events (asserted), so ``federated_throughput_ratio``
    (federated/plain events-per-second, best interleaved round) isolates
    the plumbing's overhead. It must stay at least
    :data:`FEDERATION_OVERHEAD_FLOOR`, smoke runs included — the
    per-event cost does not depend on benchmark size.
    """
    from repro.experiments.common import LightweightSimulation
    from repro.experiments.federation import build_federation
    from repro.experiments.sweeps import batch_load_points
    from repro.federation import FederationConfig

    def cell_config():
        config, _ = batch_load_points(
            (1.0,), cluster=cluster, horizon=horizon, seed=seed, scale=scale
        )[0]
        return config

    def run(mode: str) -> tuple[float, int]:
        if mode == "plain":
            world = LightweightSimulation(cell_config())
            start = time.perf_counter()
            result = world.run()
        else:
            federation = build_federation(
                FederationConfig(cell_config=cell_config(), num_cells=1)
            )
            start = time.perf_counter()
            result = federation.run()
        return time.perf_counter() - start, result.events_processed

    modes = ("plain", "federated")
    for mode in modes:
        run(mode)  # warm-up: first-touch allocation and code caches
    timings = {mode: float("inf") for mode in modes}
    events = {}
    round_ratios = []
    for _ in range(max(1, repeats)):
        round_times = {}
        for mode in modes:
            round_times[mode], events[mode] = run(mode)
            timings[mode] = min(timings[mode], round_times[mode])
        round_ratios.append(round_times["plain"] / round_times["federated"])
    # The degenerate identity is what makes the ratio meaningful: both
    # modes must have dispatched the same event schedule.
    assert events["plain"] == events["federated"], (
        f"degenerate federation processed {events['federated']} events "
        f"vs plain {events['plain']}"
    )
    rates = {
        f"{mode}_events_per_s": (
            events[mode] / wall_s if wall_s > 0 else float("inf")
        )
        for mode, wall_s in timings.items()
    }
    return {
        "scale": scale,
        "horizon_s": horizon,
        "events_processed": events["plain"],
        **{f"{mode}_s": wall_s for mode, wall_s in timings.items()},
        **rates,
        # Best paired round, not min-of-runs — scheduling noise can only
        # make the federated mode look slower than it is.
        "federated_throughput_ratio": max(round_ratios),
    }


# ----------------------------------------------------------------------
# sweep_serial_parallel
# ----------------------------------------------------------------------
def bench_sweep_serial_parallel(
    jobs: int = 4,
    horizon: float = 1800.0,
    scale: float = 0.1,
    t_jobs=(0.1, 1.0, 10.0, 100.0),
    clusters=("A", "B"),
) -> dict:
    """The reduced Figure 5c sweep, serial vs ``jobs`` workers.

    Beyond timing, this asserts the tentpole's correctness property:
    serial and parallel rows are byte-identical once JSON-encoded.
    """
    from repro.experiments.omega import figure5c_6c_rows

    def run(n: int) -> tuple[float, str]:
        start = time.perf_counter()
        rows = figure5c_6c_rows(
            t_jobs=t_jobs, clusters=clusters, horizon=horizon, scale=scale, jobs=n
        )
        return time.perf_counter() - start, json.dumps(rows, sort_keys=False)

    serial_s, serial_rows = run(1)
    parallel_s, parallel_rows = run(jobs)
    return {
        "jobs": jobs,
        "points": len(t_jobs) * len(clusters),
        "horizon_s": horizon,
        "scale": scale,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "identical_rows": serial_rows == parallel_rows,
    }


# ----------------------------------------------------------------------
# Driver, expectations and gate
# ----------------------------------------------------------------------
def run_benchmarks(smoke: bool = False, jobs: int = 4) -> dict:
    """Run the full suite (or a seconds-scale smoke version) and return
    the result document, expectations evaluated."""
    if smoke:
        benchmarks = {
            "snapshot_resync": bench_snapshot_resync(
                num_machines=2_000, iterations=60, repeats=1
            ),
            "placement_pack": bench_placement_pack(
                num_machines=2_000, placements=40, repeats=2
            ),
            "commit_batch": bench_commit_batch(
                num_machines=2_000, transactions=40, hot_machines=128,
                repeats=2,
            ),
            "paper_scale": bench_paper_scale(
                horizon_days=0.02, t_jobs=(1.0,), machines=1_000
            ),
            "event_loop": bench_event_loop(events=20_000, repeats=1),
            "tracing_overhead": bench_tracing_overhead(
                events=20_000, repeats=1, timeline_every=100.0
            ),
            "sanitizer_overhead": bench_sanitizer_overhead(
                num_machines=500, operations=50_000, repeats=3
            ),
            "predictor_overhead": bench_predictor_overhead(
                num_machines=500, attempts=2_000, repeats=3
            ),
            "federation_overhead": bench_federation_overhead(
                scale=0.05, horizon=1800.0, repeats=3
            ),
            "sweep_serial_parallel": bench_sweep_serial_parallel(
                jobs=jobs, horizon=300.0, scale=0.05, t_jobs=(0.1, 10.0),
                clusters=("A",),
            ),
        }
    else:
        benchmarks = {
            "snapshot_resync": bench_snapshot_resync(),
            "placement_pack": bench_placement_pack(),
            "commit_batch": bench_commit_batch(),
            "paper_scale": bench_paper_scale(),
            "event_loop": bench_event_loop(),
            "tracing_overhead": bench_tracing_overhead(),
            "sanitizer_overhead": bench_sanitizer_overhead(),
            "predictor_overhead": bench_predictor_overhead(),
            "federation_overhead": bench_federation_overhead(),
            "sweep_serial_parallel": bench_sweep_serial_parallel(jobs=jobs),
        }
    results = {
        "format_version": FORMAT_VERSION,
        "smoke": smoke,
        "machine": machine_info(),
        "benchmarks": benchmarks,
    }
    results["expectations"] = evaluate_expectations(results)
    return results


def evaluate_expectations(results: dict) -> list[dict]:
    """The suite's structural pass/fail criteria.

    Each entry records whether it passed AND whether it is *enforced*:
    speedup floors that depend on hardware the current machine lacks
    (parallel speedup on a single-core box) or on sizes the smoke run
    skips are recorded as unenforced so the gate stays honest about what
    it actually verified.
    """
    benchmarks = results["benchmarks"]
    smoke = results["smoke"]
    cores = results["machine"]["cpu_count"]
    expectations = []

    resync = benchmarks["snapshot_resync"]
    expectations.append(
        {
            "name": "resync_speedup",
            "value": resync["speedup"],
            "floor": RESYNC_SPEEDUP_FLOOR,
            "passed": resync["speedup"] >= RESYNC_SPEEDUP_FLOOR,
            # Smoke sizes are too small for a stable ratio.
            "enforced": not smoke,
            "reason": "smoke run: sizes too small for stable timing"
            if smoke
            else None,
        }
    )

    pack = benchmarks["placement_pack"]
    placement_floor = (
        PLACEMENT_SPEEDUP_FLOOR_SMOKE if smoke else PLACEMENT_SPEEDUP_FLOOR
    )
    expectations.append(
        {
            "name": "placement_speedup",
            "value": pack["speedup"],
            "floor": placement_floor,
            "passed": pack["speedup"] >= placement_floor,
            # Enforced in smoke runs too (with the smoke-size floor): a
            # kernel regression should fail CI, not wait for a full run.
            "enforced": True,
            "reason": "smoke run: smoke-size floor" if smoke else None,
        }
    )

    commit_batch = benchmarks["commit_batch"]
    commit_floor = (
        COMMIT_BATCH_SPEEDUP_FLOOR_SMOKE if smoke else COMMIT_BATCH_SPEEDUP_FLOOR
    )
    expectations.append(
        {
            "name": "commit_batch_speedup",
            "value": commit_batch["speedup"],
            "floor": commit_floor,
            "passed": commit_batch["speedup"] >= commit_floor,
            "enforced": True,
            "reason": "smoke run: smoke-size floor" if smoke else None,
        }
    )
    expectations.append(
        {
            "name": "commit_batch_identical",
            "value": commit_batch["identical_outcomes"],
            "floor": True,
            "passed": bool(commit_batch["identical_outcomes"]),
            "enforced": True,
            "reason": None,
        }
    )

    paper = benchmarks["paper_scale"]
    at_scale = (
        paper["machines"] >= PAPER_SCALE_MACHINES
        and paper["horizon_days"] >= PAPER_SCALE_MIN_DAYS
    )
    expectations.append(
        {
            "name": "paper_scale_shape",
            "value": f"{paper['machines']} machines x "
            f"{paper['horizon_days']:g} days",
            "floor": f"{PAPER_SCALE_MACHINES} machines x "
            f"{PAPER_SCALE_MIN_DAYS:g} days",
            "passed": at_scale,
            # Smoke runs use a scaled-down sweep by design; only full
            # runs claim the paper-scale proof.
            "enforced": not smoke,
            "reason": "smoke run: reduced sweep, shape not claimed"
            if smoke
            else None,
        }
    )

    tracing = benchmarks["tracing_overhead"]
    expectations.append(
        {
            "name": "tracing_noop_throughput",
            "value": tracing["noop_throughput_ratio"],
            "floor": NOOP_THROUGHPUT_FLOOR,
            "passed": tracing["noop_throughput_ratio"] >= NOOP_THROUGHPUT_FLOOR,
            # Smoke sizes are too small for a stable ratio.
            "enforced": not smoke,
            "reason": "smoke run: sizes too small for stable timing"
            if smoke
            else None,
        }
    )

    sanitizer = benchmarks["sanitizer_overhead"]
    expectations.append(
        {
            "name": "sanitizer_off_throughput",
            "value": sanitizer["off_throughput_ratio"],
            "floor": SANITIZER_OFF_FLOOR,
            "passed": sanitizer["off_throughput_ratio"] >= SANITIZER_OFF_FLOOR,
            # The ACTIVE-is-None guard's relative cost is independent of
            # benchmark size, so this floor holds in smoke runs too.
            "enforced": True,
            "reason": None,
        }
    )

    predictor = benchmarks["predictor_overhead"]
    expectations.append(
        {
            "name": "predictor_off_throughput",
            "value": predictor["off_throughput_ratio"],
            "floor": PREDICTOR_OFF_FLOOR,
            "passed": predictor["off_throughput_ratio"] >= PREDICTOR_OFF_FLOOR,
            # The predictor-is-None guards' relative cost is independent
            # of benchmark size, so this floor holds in smoke runs too.
            "enforced": True,
            "reason": None,
        }
    )

    federation = benchmarks["federation_overhead"]
    expectations.append(
        {
            "name": "federation_overhead",
            "value": federation["federated_throughput_ratio"],
            "floor": FEDERATION_OVERHEAD_FLOOR,
            "passed": (
                federation["federated_throughput_ratio"]
                >= FEDERATION_OVERHEAD_FLOOR
            ),
            # The front door's per-event cost is independent of
            # benchmark size, so this floor holds in smoke runs too.
            "enforced": True,
            "reason": None,
        }
    )

    sweep = benchmarks["sweep_serial_parallel"]
    expectations.append(
        {
            "name": "serial_parallel_identical",
            "value": sweep["identical_rows"],
            "floor": True,
            "passed": bool(sweep["identical_rows"]),
            "enforced": True,
            "reason": None,
        }
    )
    enough_cores = cores >= PARALLEL_MIN_CORES
    expectations.append(
        {
            "name": "parallel_speedup",
            "value": sweep["speedup"],
            "floor": PARALLEL_SPEEDUP_FLOOR,
            "passed": sweep["speedup"] >= PARALLEL_SPEEDUP_FLOOR,
            "enforced": enough_cores and not smoke,
            "reason": None
            if enough_cores and not smoke
            else (
                "smoke run: horizon too short to amortize worker startup"
                if smoke
                else f"machine has {cores} core(s); "
                f"needs >= {PARALLEL_MIN_CORES} to demonstrate parallel speedup"
            ),
        }
    )
    return expectations


#: Baseline-comparison metrics where higher is better, per benchmark.
_THROUGHPUT_METRICS = {
    "snapshot_resync": ("speedup",),
    "placement_pack": ("placements_per_s", "speedup"),
    "commit_batch": ("batch_claims_per_s", "speedup"),
    "paper_scale": ("events_per_s",),
    "event_loop": ("events_per_s",),
    "tracing_overhead": ("noop_events_per_s", "active_events_per_s"),
    "sanitizer_overhead": ("off_ops_per_s",),
    "predictor_overhead": ("off_attempts_per_s",),
    "federation_overhead": ("federated_events_per_s",),
    "sweep_serial_parallel": ("speedup",),
}


def gate(
    results: dict,
    baseline: dict | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Failure messages for a benchmark run (empty = pass).

    Checks every *enforced* structural expectation, and — when a
    baseline from the same machine shape is given — that no throughput
    metric regressed by more than ``tolerance`` relative to it.
    """
    failures = []
    for expectation in results.get("expectations", []):
        if expectation["enforced"] and not expectation["passed"]:
            failures.append(
                f"expectation {expectation['name']}: value "
                f"{expectation['value']} below floor {expectation['floor']}"
            )
    if baseline is None:
        return failures

    if baseline.get("machine", {}).get("cpu_count") != results["machine"][
        "cpu_count"
    ]:
        # Wall-clock numbers from a different machine shape are not
        # comparable; structural expectations above still apply.
        return failures
    if baseline.get("smoke") != results.get("smoke"):
        return failures
    for name, metrics in _THROUGHPUT_METRICS.items():
        base_bench = baseline.get("benchmarks", {}).get(name)
        curr_bench = results["benchmarks"].get(name)
        if not base_bench or not curr_bench:
            continue
        for metric in metrics:
            base = base_bench.get(metric)
            curr = curr_bench.get(metric)
            if base is None or curr is None:
                continue
            floor = base * (1.0 - tolerance)
            if curr < floor:
                failures.append(
                    f"regression in {name}.{metric}: {curr:.3g} < "
                    f"{floor:.3g} (baseline {base:.3g} - {tolerance:.0%})"
                )
    return failures


def render_report(results: dict) -> str:
    """Human-readable summary of one run."""
    lines = []
    machine = results["machine"]
    lines.append(
        f"machine: {machine['cpu_count']} core(s), {machine['platform']}, "
        f"python {machine['python']}, numpy {machine['numpy']}"
    )
    if results["smoke"]:
        lines.append("mode: smoke (reduced sizes; timing floors not enforced)")
    resync = results["benchmarks"]["snapshot_resync"]
    lines.append(
        f"snapshot_resync: full copy {resync['full_copy_s']:.4f}s vs resync "
        f"{resync['resync_s']:.4f}s -> {resync['speedup']:.2f}x "
        f"({resync['num_machines']} machines)"
    )
    pack = results["benchmarks"]["placement_pack"]
    lines.append(
        f"placement_pack: {pack['placements_per_s']:.0f} placements/s vs "
        f"legacy {pack['legacy_placements_per_s']:.0f} -> "
        f"{pack['speedup']:.2f}x "
        f"({pack['num_machines']} machines, {pack['tasks_per_job']} tasks/job)"
    )
    commit_batch = results["benchmarks"]["commit_batch"]
    outcomes = (
        "identical" if commit_batch["identical_outcomes"] else "DIFFERENT"
    )
    lines.append(
        f"commit_batch: {commit_batch['batch_claims_per_s']:.0f} claims/s vs "
        f"reference {commit_batch['reference_claims_per_s']:.0f} -> "
        f"{commit_batch['speedup']:.2f}x, outcomes {outcomes} "
        f"({commit_batch['num_machines']} machines, "
        f"{commit_batch['claims_per_txn']} claims/txn)"
    )
    paper = results["benchmarks"]["paper_scale"]
    lines.append(
        f"paper_scale: cluster {paper['cluster']} x{paper['machines']} "
        f"machines, {paper['horizon_days']:g} day(s), {paper['points']} "
        f"point(s): {paper['events_processed']} events in "
        f"{paper['wall_s']:.1f}s ({paper['events_per_s']:.0f} events/s)"
    )
    loop = results["benchmarks"]["event_loop"]
    lines.append(f"event_loop: {loop['events_per_s']:.0f} events/s")
    tracing = results["benchmarks"]["tracing_overhead"]
    lines.append(
        f"tracing_overhead: plain {tracing['plain_events_per_s']:.0f} ev/s, "
        f"noop {tracing['noop_events_per_s']:.0f} "
        f"({tracing['noop_throughput_ratio']:.2f}x), "
        f"active {tracing['active_events_per_s']:.0f}, "
        f"active+timeline {tracing['timeline_events_per_s']:.0f}"
    )
    sanitizer = results["benchmarks"]["sanitizer_overhead"]
    lines.append(
        f"sanitizer_overhead: plain {sanitizer['plain_ops_per_s']:.0f} ops/s, "
        f"off {sanitizer['off_ops_per_s']:.0f} "
        f"({sanitizer['off_throughput_ratio']:.2f}x), "
        f"on {sanitizer['on_ops_per_s']:.0f} "
        f"({sanitizer['on_overhead_x']:.2f}x slower)"
    )
    predictor = results["benchmarks"]["predictor_overhead"]
    lines.append(
        f"predictor_overhead: plain {predictor['plain_attempts_per_s']:.0f} "
        f"attempts/s, off {predictor['off_attempts_per_s']:.0f} "
        f"({predictor['off_throughput_ratio']:.2f}x), "
        f"on {predictor['on_attempts_per_s']:.0f} "
        f"({predictor['on_overhead_x']:.2f}x slower)"
    )
    federation = results["benchmarks"]["federation_overhead"]
    lines.append(
        f"federation_overhead: plain {federation['plain_events_per_s']:.0f} "
        f"ev/s, 1-cell federated {federation['federated_events_per_s']:.0f} "
        f"({federation['federated_throughput_ratio']:.2f}x, "
        f"{federation['events_processed']} events)"
    )
    sweep = results["benchmarks"]["sweep_serial_parallel"]
    identical = "identical" if sweep["identical_rows"] else "DIFFERENT"
    lines.append(
        f"sweep_serial_parallel: serial {sweep['serial_s']:.2f}s vs "
        f"--jobs {sweep['jobs']} {sweep['parallel_s']:.2f}s -> "
        f"{sweep['speedup']:.2f}x, rows {identical}"
    )
    for expectation in results["expectations"]:
        status = "PASS" if expectation["passed"] else "FAIL"
        if not expectation["enforced"]:
            status += f" (not enforced: {expectation['reason']})"
        lines.append(
            f"expectation {expectation['name']}: {expectation['value']} "
            f"vs floor {expectation['floor']} -> {status}"
        )
    return "\n".join(lines)


def render_compare(old: dict, new: dict) -> str:
    """Delta table between two saved benchmark result documents.

    One row per throughput metric present in both documents: old value,
    new value, and the relative change (positive = new is faster).
    Header notes flag machine-shape or smoke-mode mismatches, which make
    wall-clock deltas meaningless.
    """
    lines = []
    old_machine = old.get("machine", {})
    new_machine = new.get("machine", {})
    if old_machine.get("cpu_count") != new_machine.get("cpu_count"):
        lines.append(
            f"note: machine shapes differ ({old_machine.get('cpu_count')} vs "
            f"{new_machine.get('cpu_count')} cores); deltas are not "
            f"comparable"
        )
    if old.get("smoke") != new.get("smoke"):
        lines.append(
            f"note: smoke modes differ (old smoke={old.get('smoke')}, "
            f"new smoke={new.get('smoke')}); deltas are not comparable"
        )
    header = f"{'metric':<40} {'old':>12} {'new':>12} {'delta':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    rows = 0
    for name, metrics in _THROUGHPUT_METRICS.items():
        old_bench = old.get("benchmarks", {}).get(name)
        new_bench = new.get("benchmarks", {}).get(name)
        if not old_bench or not new_bench:
            continue
        for metric in metrics:
            old_value = old_bench.get(metric)
            new_value = new_bench.get(metric)
            if old_value is None or new_value is None:
                continue
            delta = (
                (new_value - old_value) / old_value
                if old_value
                else float("inf")
            )
            lines.append(
                f"{name + '.' + metric:<40} {old_value:>12.4g} "
                f"{new_value:>12.4g} {delta:>+7.1%}"
            )
            rows += 1
    if rows == 0:
        lines.append("(no comparable throughput metrics found)")
    return "\n".join(lines)


def main_compare(old_path: str, new_path: str) -> int:
    """``omega-sim bench --compare OLD NEW``: load two saved results and
    print the delta table. Exit 2 on missing/corrupt/schema-invalid
    inputs, 0 otherwise (the comparison itself is informational)."""
    from repro.recovery.artifacts import ArtifactError, load_json_artifact

    documents = []
    for path in (old_path, new_path):
        try:
            documents.append(
                load_json_artifact(
                    path,
                    description="bench results",
                    require=("benchmarks", "machine"),
                )
            )
        except ArtifactError as exc:
            print(f"omega-sim bench: {exc}", file=sys.stderr)
            return 2
    print(render_compare(documents[0], documents[1]))
    return 0


def main_bench(args) -> int:
    """``omega-sim bench`` entry point (argparse namespace in, exit
    status out)."""
    from repro.recovery.artifacts import ArtifactError, load_json_artifact, write_json_artifact

    if getattr(args, "compare", None):
        return main_compare(args.compare[0], args.compare[1])

    baseline = None
    if args.baseline:
        try:
            baseline = load_json_artifact(
                args.baseline,
                description="bench baseline",
                require=("benchmarks", "machine"),
            )
        except ArtifactError as exc:
            print(f"omega-sim bench: {exc}", file=sys.stderr)
            return 2
    results = run_benchmarks(smoke=args.smoke, jobs=args.jobs)
    print(render_report(results))
    if args.output:
        write_json_artifact(args.output, results)
        print(f"results saved to {args.output}", file=sys.stderr)
    failures = gate(results, baseline, tolerance=args.tolerance)
    for failure in failures:
        print(f"omega-sim bench: FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0
