"""Performance infrastructure: parallel sweep execution and benchmarks.

The paper's evaluation is a grid of *independent* simulations (Table 2:
a 24h lightweight run in minutes; Figures 5-14 sweep decision times,
arrival rates and scheduler counts). Two properties make that grid
embarrassingly parallel without sacrificing reproducibility:

* every sweep point carries its own explicit master seed, and every
  random draw inside a run comes from a named stream derived from it
  via :func:`repro.sim.random.derive_seed` — so a point's result does
  not depend on *when or where* it runs;
* runs share no mutable state: each builds its own simulator, cell
  state and metrics.

:mod:`repro.perf.parallel` exploits this with an order-preserving
multiprocessing map (``omega-sim <sweep> --jobs N``): serial and
parallel executions produce byte-identical result tables and — via
worker-side trace capture and span-renumbered replay — byte-identical
JSONL traces.

:mod:`repro.perf.bench` is the perf-regression harness behind
``omega-sim bench``: curated micro/macro benchmarks (snapshot resync,
placement packing, event-loop throughput, a reduced Figure-5 sweep
serial vs parallel) written to ``BENCH_*.json`` and gated against a
committed baseline. See ``docs/PERFORMANCE.md``.
"""

from repro.perf.parallel import parallel_map, point_seed, resolve_jobs

__all__ = ["parallel_map", "point_seed", "resolve_jobs"]
