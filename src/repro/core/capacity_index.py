"""Bucketed free-capacity index for sublinear ordered placement.

Best/worst fit (:func:`repro.core.placement.best_fit` /
:func:`~repro.core.placement.worst_fit`) order candidate machines by
their total free capacity ``free_cpu + free_mem``. Sorting all machines
per placement costs O(n log n) at every job — at the paper's cell sizes
(~10,000 machines, Table 1) that dominates the scheduler's think time.

:class:`CapacityIndex` keeps machines grouped into **power-of-two
capacity buckets**: bucket ``b`` holds machines whose free-capacity key
lies in ``[2^(b-1), 2^b)`` (bucket 0 holds keys below 1, the top bucket
everything above). Claims and releases move at most one machine between
buckets (O(1) amortised), and an ordered placement scans buckets
ascending (best fit) or descending (worst fit), sorting only the
members of the few buckets it actually touches.

**Determinism contract**: scanning buckets in order and sorting each
bucket's members by ``(key, machine)`` visits machines in *exactly* the
global ``(key, machine)`` order, because bucket key ranges are disjoint
and machines with equal keys share a bucket. The property tests in
``tests/core/test_kernel_equivalence.py`` pin the index-backed scan
against a plain ``np.lexsort`` over all candidates.
"""

from __future__ import annotations

import math

import numpy as np

#: Number of power-of-two buckets. Keys are non-negative free-capacity
#: sums; 64 buckets cover every key a float64 cell can produce (keys
#: >= 2^62 all land in the top bucket).
NUM_BUCKETS = 64


def bucket_of(key: float) -> int:
    """The bucket index for one free-capacity key (scalar path).

    ``math.frexp(key)[1]`` is the exponent ``e`` with
    ``key in [2^(e-1), 2^e)``; clipping maps sub-1.0 keys (including 0)
    to bucket 0 and astronomically large keys to the top bucket.
    """
    if key <= 0.0:
        return 0
    return min(max(math.frexp(key)[1], 0), NUM_BUCKETS - 1)


def bucket_of_array(keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`bucket_of` (used for the initial build)."""
    exponents = np.frexp(keys)[1]
    exponents[keys <= 0.0] = 0
    return np.clip(exponents, 0, NUM_BUCKETS - 1).astype(np.int64)


class CapacityIndex:
    """Incrementally-maintained capacity buckets over free arrays.

    The index never reads the free arrays after construction; the owner
    (:class:`~repro.core.cellstate.CellState` or
    :class:`~repro.core.cellstate.CellSnapshot`) pushes every key change
    through :meth:`update_one` / :meth:`update_many`.
    """

    __slots__ = ("_bucket_of_machine", "_members", "_sorted_cache")

    def __init__(self, free_cpu: np.ndarray, free_mem: np.ndarray) -> None:
        keys = free_cpu + free_mem
        buckets = bucket_of_array(keys)
        self._bucket_of_machine = buckets
        self._members: list[set[int]] = [set() for _ in range(NUM_BUCKETS)]
        for machine, bucket in enumerate(buckets.tolist()):
            self._members[bucket].add(machine)
        #: Per-bucket cache of the members as a sorted machine-id array;
        #: invalidated whenever the bucket's membership changes.
        self._sorted_cache: list[np.ndarray | None] = [None] * NUM_BUCKETS

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def update_one(self, machine: int, key: float) -> None:
        """Re-bucket ``machine`` after its free-capacity key changed."""
        machine = int(machine)
        new_bucket = bucket_of(key)
        old_bucket = int(self._bucket_of_machine[machine])
        if new_bucket == old_bucket:
            return
        self._members[old_bucket].discard(machine)
        self._members[new_bucket].add(machine)
        self._sorted_cache[old_bucket] = None
        self._sorted_cache[new_bucket] = None
        self._bucket_of_machine[machine] = new_bucket

    def update_many(self, machines: np.ndarray, keys: np.ndarray) -> None:
        """Re-bucket several machines (duplicates allowed; the last key
        given for a machine wins, matching sequential updates)."""
        for machine, key in zip(machines.tolist(), keys.tolist()):
            self.update_one(machine, key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def members_sorted(self, bucket: int) -> np.ndarray:
        """The bucket's machines as an ascending machine-id array."""
        cached = self._sorted_cache[bucket]
        if cached is None:
            members = self._members[bucket]
            cached = np.fromiter(sorted(members), dtype=np.intp, count=len(members))
            self._sorted_cache[bucket] = cached
        return cached

    def scan(self, ascending: bool, start_bucket: int = 0):
        """Yield each non-empty bucket's sorted members, bucket-ordered.

        ``ascending=True`` scans low-capacity buckets first (best fit);
        ``False`` scans high-capacity buckets first (worst fit). Buckets
        below ``start_bucket`` can never hold a feasible machine and are
        skipped in both directions.
        """
        if ascending:
            buckets = range(start_bucket, NUM_BUCKETS)
        else:
            buckets = range(NUM_BUCKETS - 1, start_bucket - 1, -1)
        for bucket in buckets:
            if self._members[bucket]:
                yield self.members_sorted(bucket)

    def check(self, free_cpu: np.ndarray, free_mem: np.ndarray) -> None:
        """Assert the index matches the arrays (test/debug helper)."""
        expected = bucket_of_array(free_cpu + free_mem)
        if not np.array_equal(self._bucket_of_machine, expected):
            bad = np.flatnonzero(self._bucket_of_machine != expected)
            raise AssertionError(
                f"capacity index out of sync on machines {bad[:8].tolist()}"
            )
        for bucket, members in enumerate(self._members):
            for machine in sorted(members):
                if int(expected[machine]) != bucket:
                    raise AssertionError(
                        f"machine {machine} filed in bucket {bucket}, "
                        f"belongs in {int(expected[machine])}"
                    )
