"""Populating cell state with the standing task population.

"At the start of a simulation, the lightweight simulator initializes
cluster state using task-size data extracted from the relevant trace,
but only instantiates sufficiently many tasks to utilize about 60% of
cluster resources" (paper section 4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis import sanitizer as _san
from repro.core.cellstate import EPSILON, CellState
from repro.sim import Simulator
from repro.workload.generator import StandingTask


def populate(
    state: CellState,
    tasks: Sequence[StandingTask],
    rng: np.random.Generator,
    sim: Simulator | None = None,
    horizon: float | None = None,
) -> int:
    """Place standing tasks into ``state``; returns how many were placed.

    Placement walks a randomly shuffled machine order with a moving
    cursor (cheap first fit — the cell is mostly empty during fill).
    When ``sim`` is given, each placed task's release is scheduled at
    its remaining duration; releases past ``horizon`` are skipped since
    they could never run.
    """
    order = rng.permutation(state.num_machines)
    cursor = 0
    placed = 0
    free_cpu = state.free_cpu
    free_mem = state.free_mem
    san = _san.ACTIVE
    release = state.release if san is None else san.scoped(state.release, "fill-end")
    with _san.master_scope("fill"):
        for task in tasks:
            found = None
            for step in range(state.num_machines):
                machine = order[(cursor + step) % state.num_machines]
                if (
                    free_cpu[machine] + EPSILON >= task.cpu
                    and free_mem[machine] + EPSILON >= task.mem
                ):
                    found = int(machine)
                    cursor = (cursor + step) % state.num_machines
                    break
            if found is None:
                # Cell cannot hold the rest of the fill; stop rather than spin.
                break
            state.claim(found, task.cpu, task.mem, 1)
            placed += 1
            if sim is not None and (horizon is None or task.duration <= horizon):
                sim.at(task.duration, release, found, task.cpu, task.mem, 1)
    return placed
