"""Cell state: the shared master copy of resource allocations.

Paper section 3.4: "We maintain a resilient master copy of the resource
allocations in the cluster, which we call cell state. Each scheduler is
given a private, local, frequently-updated copy of cell state that it
uses for making scheduling decisions."

:class:`CellState` is the master copy; :meth:`CellState.snapshot`
produces the private copy (a :class:`CellSnapshot`). Per-machine
sequence numbers support the coarse-grained conflict detection variant
of section 5.2 ("a simple sequence number in the machine's state
object") and are bumped on every state change.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import Cell

#: Tolerance for floating-point resource accounting. A machine is
#: considered able to hold a task if the request exceeds the free amount
#: by no more than this.
EPSILON = 1e-9


class OvercommitError(RuntimeError):
    """Raised when an operation would over-commit a machine.

    Commits never raise this (conflicting claims are *rejected*, not
    applied); it guards direct mutation paths against bugs.
    """


class CellSnapshot:
    """A scheduler's private, local copy of cell state.

    Cheap to take (three array copies) and read-only from the master's
    point of view: schedulers may freely mutate their snapshot while
    planning (placement subtracts planned claims so one job's tasks
    stack correctly), and the master copy is only changed by
    :func:`repro.core.transaction.commit`.
    """

    __slots__ = ("free_cpu", "free_mem", "seq", "time")

    def __init__(
        self,
        free_cpu: np.ndarray,
        free_mem: np.ndarray,
        seq: np.ndarray,
        time: float,
    ) -> None:
        self.free_cpu = free_cpu
        self.free_mem = free_mem
        self.seq = seq
        self.time = time

    @property
    def num_machines(self) -> int:
        return self.free_cpu.shape[0]


class CellState:
    """The shared master copy of per-machine free resources.

    Invariants (property-tested in ``tests/core/test_cellstate.py``):

    * ``0 <= free <= capacity`` in both dimensions on every machine,
    * used totals equal capacity minus free,
    * sequence numbers never decrease.
    """

    def __init__(self, cell: Cell) -> None:
        self.cell = cell
        self.free_cpu = cell.cpu_capacity.copy()
        self.free_mem = cell.mem_capacity.copy()
        self.seq = np.zeros(len(cell), dtype=np.int64)
        self._used_cpu = 0.0
        self._used_mem = 0.0

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return len(self.cell)

    @property
    def used_cpu(self) -> float:
        return self._used_cpu

    @property
    def used_mem(self) -> float:
        return self._used_mem

    @property
    def cpu_utilization(self) -> float:
        return self._used_cpu / self.cell.total_cpu

    @property
    def mem_utilization(self) -> float:
        return self._used_mem / self.cell.total_mem

    @property
    def idle_cpu(self) -> float:
        return self.cell.total_cpu - self._used_cpu

    @property
    def idle_mem(self) -> float:
        return self.cell.total_mem - self._used_mem

    def snapshot(self, time: float = 0.0) -> CellSnapshot:
        """Take a private copy of the current state (sync point of an
        Omega transaction)."""
        return CellSnapshot(
            self.free_cpu.copy(), self.free_mem.copy(), self.seq.copy(), time
        )

    def fits(self, machine: int, cpu: float, mem: float, count: int = 1) -> bool:
        """Whether ``count`` tasks of the given size fit on ``machine`` now."""
        return (
            self.free_cpu[machine] + EPSILON >= cpu * count
            and self.free_mem[machine] + EPSILON >= mem * count
        )

    # ------------------------------------------------------------------
    # Mutations (used by transaction commit and task completion)
    # ------------------------------------------------------------------
    def claim(self, machine: int, cpu: float, mem: float, count: int = 1) -> None:
        """Allocate ``count`` tasks' resources on ``machine``.

        Raises :class:`OvercommitError` if they do not fit — commit
        logic must check first; this is the last-line safety net that
        keeps the master copy consistent ("all must agree on ... a
        common notion of whether a machine is full").
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        total_cpu = cpu * count
        total_mem = mem * count
        if (
            self.free_cpu[machine] + EPSILON < total_cpu
            or self.free_mem[machine] + EPSILON < total_mem
        ):
            raise OvercommitError(
                f"claim of {count} x ({cpu} cpu, {mem} mem) does not fit on "
                f"machine {machine} (free: {self.free_cpu[machine]} cpu, "
                f"{self.free_mem[machine]} mem)"
            )
        self.free_cpu[machine] -= total_cpu
        self.free_mem[machine] -= total_mem
        # Clamp float dust so "exactly full" machines read as full, not
        # as negative free capacity.
        if self.free_cpu[machine] < 0.0:
            self.free_cpu[machine] = 0.0
        if self.free_mem[machine] < 0.0:
            self.free_mem[machine] = 0.0
        self._used_cpu += total_cpu
        self._used_mem += total_mem
        self.seq[machine] += 1

    def release(self, machine: int, cpu: float, mem: float, count: int = 1) -> None:
        """Return ``count`` tasks' resources on ``machine`` (task end or
        preemption)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        total_cpu = cpu * count
        total_mem = mem * count
        new_free_cpu = self.free_cpu[machine] + total_cpu
        new_free_mem = self.free_mem[machine] + total_mem
        if (
            new_free_cpu > self.cell.cpu_capacity[machine] + EPSILON
            or new_free_mem > self.cell.mem_capacity[machine] + EPSILON
        ):
            raise OvercommitError(
                f"release of {count} x ({cpu} cpu, {mem} mem) on machine "
                f"{machine} exceeds its capacity"
            )
        self.free_cpu[machine] = min(new_free_cpu, self.cell.cpu_capacity[machine])
        self.free_mem[machine] = min(new_free_mem, self.cell.mem_capacity[machine])
        self._used_cpu -= total_cpu
        self._used_mem -= total_mem
        if self._used_cpu < 0.0:
            self._used_cpu = 0.0
        if self._used_mem < 0.0:
            self._used_mem = 0.0
        self.seq[machine] += 1
