"""Cell state: the shared master copy of resource allocations.

Paper section 3.4: "We maintain a resilient master copy of the resource
allocations in the cluster, which we call cell state. Each scheduler is
given a private, local, frequently-updated copy of cell state that it
uses for making scheduling decisions."

:class:`CellState` is the master copy; :meth:`CellState.snapshot`
produces the private copy (a :class:`CellSnapshot`). Per-machine
sequence numbers support the coarse-grained conflict detection variant
of section 5.2 ("a simple sequence number in the machine's state
object") and are bumped on every state change.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.analysis import sanitizer as _san
from repro.cluster import Cell
from repro.core.capacity_index import CapacityIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle (transaction -> cellstate)
    from repro.core.transaction import Claim

#: Tolerance for floating-point resource accounting. A machine is
#: considered able to hold a task if the request exceeds the free amount
#: by no more than this.
EPSILON = 1e-9

#: How many mutations the master's dirty-machine changelog remembers.
#: A snapshot that fell further behind than this resyncs with a full
#: copy instead of a delta (see :meth:`CellSnapshot.resync`).
DEFAULT_CHANGELOG_CAPACITY = 4096

#: Transactions smaller than this apply claims through the scalar
#: :meth:`CellState.claim` loop inside :meth:`CellState.claim_batch`:
#: below it, array setup costs more than it saves.
MIN_BATCH_CLAIMS = 8


class OvercommitError(RuntimeError):
    """Raised when an operation would over-commit a machine.

    Commits never raise this (conflicting claims are *rejected*, not
    applied); it guards direct mutation paths against bugs.
    """


class CellSnapshot:
    """A scheduler's private, local copy of cell state.

    Cheap to take (three array copies) and read-only from the master's
    point of view: schedulers may freely mutate their snapshot while
    planning (placement subtracts planned claims so one job's tasks
    stack correctly), and the master copy is only changed by
    :func:`repro.core.transaction.commit`.

    A snapshot remembers the master ``version`` it was taken at, which
    lets :meth:`resync` refresh it *incrementally*: instead of re-copying
    all three per-machine arrays, only the machines the master touched
    since (plus any the holder dirtied locally, see
    :meth:`note_local_write`) are re-copied. This is the hot-path
    optimisation for the Omega retry loop — the paper's
    "frequently-updated copy" (§3.4) no longer costs O(machines) per
    transaction.
    """

    __slots__ = (
        "free_cpu",
        "free_mem",
        "seq",
        "time",
        "version",
        "_local_dirty",
        "_index",
    )

    def __init__(
        self,
        free_cpu: np.ndarray,
        free_mem: np.ndarray,
        seq: np.ndarray,
        time: float,
        version: int = 0,
    ) -> None:
        self.free_cpu = free_cpu
        self.free_mem = free_mem
        self.seq = seq
        self.time = time
        #: Master :attr:`CellState.version` this snapshot reflects.
        self.version = version
        self._local_dirty: set[int] = set()
        self._index: CapacityIndex | None = None

    @property
    def num_machines(self) -> int:
        return self.free_cpu.shape[0]

    def capacity_index(self) -> CapacityIndex:
        """The snapshot's free-capacity bucket index, built lazily on
        first use and maintained incrementally by :meth:`resync` /
        :meth:`note_local_write` afterwards (see
        :mod:`repro.core.capacity_index`)."""
        if self._index is None:
            self._index = CapacityIndex(self.free_cpu, self.free_mem)
        return self._index

    def note_local_write(self, machine: int) -> None:
        """Record that the holder mutated ``machine`` in this snapshot.

        Planning scratch-writes (e.g. hot-machine masking) are invisible
        to the master's changelog; registering them here makes
        :meth:`resync` restore those machines from the master copy even
        when the master itself did not touch them. Call *after* the
        mutation: the capacity index re-buckets the machine from the
        arrays' current values.
        """
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_snapshot_mutation(self)
        machine = int(machine)
        self._local_dirty.add(machine)
        if self._index is not None:
            self._index.update_one(
                machine, float(self.free_cpu[machine]) + float(self.free_mem[machine])
            )

    def resync(self, state: "CellState", time: float | None = None) -> "CellSnapshot":
        """Refresh this snapshot to the master's current state, in place.

        Applies only the machines recorded in the master's changelog
        since this snapshot's :attr:`version` (plus locally-dirtied
        ones); falls back to a full three-array copy when the bounded
        changelog no longer covers the gap. Either way the result is
        element-wise identical to a fresh :meth:`CellState.snapshot`
        (property-tested in ``tests/core/test_resync.py``).
        """
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_snapshot_mutation(self)
        behind = state.version - self.version
        if behind < 0:
            raise ValueError(
                f"snapshot version {self.version} is ahead of master "
                f"version {state.version}; resync against the state the "
                "snapshot was taken from"
            )
        if time is not None:
            self.time = time
        log = state._changelog
        if behind > len(log) or behind >= state.num_machines:
            self._full_sync(state)
        elif behind or self._local_dirty:
            # The last ``behind`` changelog entries, iterated from the
            # back so this is O(behind), not O(changelog capacity).
            # Duplicate indices are harmless — every write copies the
            # master's value for that machine — so no dedup/sort pass.
            index = np.fromiter(
                islice(reversed(log), behind), dtype=np.intp, count=behind
            )
            if self._local_dirty:
                index = np.concatenate(
                    [index, np.fromiter(sorted(self._local_dirty), dtype=np.intp)]
                )
            if index.size * 4 >= state.num_machines:
                self._full_sync(state)
            else:
                self.free_cpu[index] = state.free_cpu[index]
                self.free_mem[index] = state.free_mem[index]
                self.seq[index] = state.seq[index]
                if self._index is not None:
                    self._index.update_many(
                        index, self.free_cpu[index] + self.free_mem[index]
                    )
        self._local_dirty.clear()
        self.version = state.version
        return self

    def _full_sync(self, state: "CellState") -> None:
        np.copyto(self.free_cpu, state.free_cpu)
        np.copyto(self.free_mem, state.free_mem)
        np.copyto(self.seq, state.seq)
        # Cheaper to rebuild lazily than to diff every machine.
        self._index = None


class CellState:
    """The shared master copy of per-machine free resources.

    Invariants (property-tested in ``tests/core/test_cellstate.py``):

    * ``0 <= free <= capacity`` in both dimensions on every machine,
    * used totals equal capacity minus free,
    * sequence numbers never decrease.
    """

    def __init__(
        self, cell: Cell, changelog_capacity: int = DEFAULT_CHANGELOG_CAPACITY
    ) -> None:
        if changelog_capacity < 0:
            raise ValueError(
                f"changelog_capacity must be >= 0, got {changelog_capacity}"
            )
        self.cell = cell
        self.free_cpu = cell.cpu_capacity.copy()
        self.free_mem = cell.mem_capacity.copy()
        self.seq = np.zeros(len(cell), dtype=np.int64)
        self._used_cpu = 0.0
        self._used_mem = 0.0
        #: Global mutation counter: bumped once per claim/release. The
        #: changelog holds the machine index of each of the last
        #: ``changelog_capacity`` mutations, in version order, so a
        #: snapshot at version ``v`` can delta-sync iff
        #: ``version - v <= len(changelog)``.
        self.version = 0
        self._changelog: deque[int] = deque(maxlen=changelog_capacity)
        self._index: CapacityIndex | None = None

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return len(self.cell)

    @property
    def used_cpu(self) -> float:
        return self._used_cpu

    @property
    def used_mem(self) -> float:
        return self._used_mem

    @property
    def cpu_utilization(self) -> float:
        return self._used_cpu / self.cell.total_cpu

    @property
    def mem_utilization(self) -> float:
        return self._used_mem / self.cell.total_mem

    @property
    def idle_cpu(self) -> float:
        return self.cell.total_cpu - self._used_cpu

    @property
    def idle_mem(self) -> float:
        return self.cell.total_mem - self._used_mem

    def snapshot(self, time: float = 0.0) -> CellSnapshot:
        """Take a private copy of the current state (sync point of an
        Omega transaction)."""
        return CellSnapshot(
            self.free_cpu.copy(),
            self.free_mem.copy(),
            self.seq.copy(),
            time,
            version=self.version,
        )

    def capacity_index(self) -> CapacityIndex:
        """The master's free-capacity bucket index, built lazily on
        first use and then kept in sync by every claim/release (see
        :mod:`repro.core.capacity_index`). Until someone asks for it,
        mutations pay nothing."""
        if self._index is None:
            self._index = CapacityIndex(self.free_cpu, self.free_mem)
        return self._index

    def fits(self, machine: int, cpu: float, mem: float, count: int = 1) -> bool:
        """Whether ``count`` tasks of the given size fit on ``machine`` now."""
        return (
            self.free_cpu[machine] + EPSILON >= cpu * count
            and self.free_mem[machine] + EPSILON >= mem * count
        )

    # ------------------------------------------------------------------
    # Mutations (used by transaction commit and task completion)
    # ------------------------------------------------------------------
    def claim(self, machine: int, cpu: float, mem: float, count: int = 1) -> None:
        """Allocate ``count`` tasks' resources on ``machine``.

        Raises :class:`OvercommitError` if they do not fit — commit
        logic must check first; this is the last-line safety net that
        keeps the master copy consistent ("all must agree on ... a
        common notion of whether a machine is full").
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        total_cpu = cpu * count
        total_mem = mem * count
        if (
            self.free_cpu[machine] + EPSILON < total_cpu
            or self.free_mem[machine] + EPSILON < total_mem
        ):
            raise OvercommitError(
                f"claim of {count} x ({cpu} cpu, {mem} mem) does not fit on "
                f"machine {machine} (free: {self.free_cpu[machine]} cpu, "
                f"{self.free_mem[machine]} mem)"
            )
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_master_write(self, "claim", machine, cpu, mem, count)
        self.free_cpu[machine] -= total_cpu
        self.free_mem[machine] -= total_mem
        # Clamp float dust so "exactly full" machines read as full, not
        # as negative free capacity.
        if self.free_cpu[machine] < 0.0:
            self.free_cpu[machine] = 0.0
        if self.free_mem[machine] < 0.0:
            self.free_mem[machine] = 0.0
        self._used_cpu += total_cpu
        self._used_mem += total_mem
        self.seq[machine] += 1
        self._touch(machine)

    def release(self, machine: int, cpu: float, mem: float, count: int = 1) -> None:
        """Return ``count`` tasks' resources on ``machine`` (task end or
        preemption)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        total_cpu = cpu * count
        total_mem = mem * count
        new_free_cpu = self.free_cpu[machine] + total_cpu
        new_free_mem = self.free_mem[machine] + total_mem
        if (
            new_free_cpu > self.cell.cpu_capacity[machine] + EPSILON
            or new_free_mem > self.cell.mem_capacity[machine] + EPSILON
        ):
            raise OvercommitError(
                f"release of {count} x ({cpu} cpu, {mem} mem) on machine "
                f"{machine} exceeds its capacity"
            )
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_master_write(self, "release", machine, cpu, mem, count)
        # Subtract only the delta actually applied to the free arrays:
        # when the clamp below trims float dust off ``new_free_*``, the
        # used totals must shrink by the trimmed amount too, or they
        # drift away from ``capacity - free.sum()``.
        old_free_cpu = float(self.free_cpu[machine])
        old_free_mem = float(self.free_mem[machine])
        self.free_cpu[machine] = min(new_free_cpu, self.cell.cpu_capacity[machine])
        self.free_mem[machine] = min(new_free_mem, self.cell.mem_capacity[machine])
        self._used_cpu -= float(self.free_cpu[machine]) - old_free_cpu
        self._used_mem -= float(self.free_mem[machine]) - old_free_mem
        if self._used_cpu < 0.0:
            self._used_cpu = 0.0
        if self._used_mem < 0.0:
            self._used_mem = 0.0
        self.seq[machine] += 1
        self._touch(machine)

    def claim_batch(
        self,
        claims: "Sequence[Claim]",
        _arrays: tuple | None = None,
    ) -> None:
        """Allocate every claim's resources in one vectorized pass.

        Byte-identical to calling :meth:`claim` for each claim in order
        (property-tested in ``tests/core/test_kernel_equivalence.py``):
        the same EPSILON fit checks, clamping, sequential used-total
        accumulation, per-claim sanitizer hooks, sequence bumps, and
        changelog entries — just applied through array scatter updates.
        Falls back to the scalar loop for small transactions, duplicate
        machines (where scatter updates would lose writes), or any
        claim that does not fit (so partial application before an
        :class:`OvercommitError` matches the scalar walk exactly).

        ``_arrays`` is an internal fast path for ``commit``: a
        ``(machines, counts, total_cpu, total_mem)`` tuple already
        derived from ``claims``, so validation can skip rebuilding the
        arrays from the claim objects.
        """
        num_claims = len(claims)
        if num_claims == 0:
            return
        if _arrays is not None:
            machines, counts, total_cpu, total_mem = _arrays
        else:
            machines = np.array(
                [claim.machine for claim in claims], dtype=np.intp
            )
        if num_claims < MIN_BATCH_CLAIMS or len(set(machines.tolist())) != num_claims:
            for claim in claims:
                self.claim(claim.machine, claim.cpu, claim.mem, claim.count)
            return
        if _arrays is None:
            counts = np.array([claim.count for claim in claims], dtype=np.int64)
            total_cpu = (
                np.array([claim.cpu for claim in claims], dtype=float) * counts
            )
            total_mem = (
                np.array([claim.mem for claim in claims], dtype=float) * counts
            )
        have_cpu = self.free_cpu[machines]
        have_mem = self.free_mem[machines]
        if (
            (counts < 1).any()
            or (have_cpu + EPSILON < total_cpu).any()
            or (have_mem + EPSILON < total_mem).any()
        ):
            # Replicate the scalar walk: apply claims up to the first
            # offender, then raise its ValueError/OvercommitError.
            for claim in claims:
                self.claim(claim.machine, claim.cpu, claim.mem, claim.count)
            return
        if _san.ACTIVE is not None:
            # Hooks fire before any mutation; with unique machines the
            # shadow replay sees exactly what an interleaved
            # hook-then-mutate sequence would.
            for claim in claims:
                _san.ACTIVE.on_master_write(
                    self, "claim", claim.machine, claim.cpu, claim.mem, claim.count
                )
        new_free_cpu = have_cpu - total_cpu
        new_free_mem = have_mem - total_mem
        # Same dust clamp as claim(): only strictly-negative values are
        # rewritten, so an exact 0.0 keeps its bit pattern.
        new_free_cpu[new_free_cpu < 0.0] = 0.0
        new_free_mem[new_free_mem < 0.0] = 0.0
        self.free_cpu[machines] = new_free_cpu
        self.free_mem[machines] = new_free_mem
        # Sequential accumulation, not np.sum: pairwise summation would
        # produce a (tiny but gate-visible) different float than the
        # scalar loop's one-at-a-time adds.
        for value in total_cpu.tolist():
            self._used_cpu += value
        for value in total_mem.tolist():
            self._used_mem += value
        self.seq[machines] += 1
        self.version += num_claims
        self._changelog.extend(machines.tolist())
        if self._index is not None:
            # The scatter above made new_free_* the live values.
            self._index.update_many(machines, new_free_cpu + new_free_mem)

    def _touch(self, machine: int) -> None:
        """Record one mutation of ``machine`` in the bounded changelog."""
        self.version += 1
        self._changelog.append(int(machine))
        if self._index is not None:
            self._index.update_one(
                machine, float(self.free_cpu[machine]) + float(self.free_mem[machine])
            )
