"""Precedence-based preemption over shared cell state.

Paper section 3.4: an Omega scheduler "has complete freedom to lay
claim to any available cluster resources provided it has the
appropriate permissions and priority — even ones that another scheduler
has already acquired", and Table 1 lists Omega's cluster-wide policy
model as "free-for-all, priority preemption". The schedulers only have
to agree on the common *precedence* scale.

The paper's high-fidelity simulator disabled preemption ("we found that
they make little difference to the results, but significantly slow down
the simulations"); this module implements it as the documented
extension, with an ablation benchmark
(``benchmarks/bench_ablation_preemption.py``) quantifying exactly that
trade-off on our workloads.

Mechanics:

* every running allocation is registered in an :class:`AllocationLedger`
  keyed by machine, carrying its precedence and an owner callback;
* a preempting commit may count lower-precedence allocations on a
  machine as reclaimable; victims are evicted lowest-precedence-first,
  their resources released, their task-end events cancelled, and their
  owner notified so the preempted tasks can be rescheduled.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis import sanitizer as _san
from repro.core.cellstate import EPSILON, CellState
from repro.core.transaction import Claim
from repro.sim import Event, Simulator

_record_ids = itertools.count(1)

#: Called when an allocation is (partially) evicted: (record, count).
VictimCallback = Callable[["AllocationRecord", int], None]


@dataclass
class AllocationRecord:
    """One registered running allocation (count identical tasks)."""

    machine: int
    cpu: float
    mem: float
    count: int
    precedence: int
    on_preempt: VictimCallback | None = None
    end_event: Event | None = None
    #: Name of the scheduler that owns this allocation (used by the
    #: post-facto policy monitor, :mod:`repro.core.limits`).
    owner: str | None = None
    record_id: int = field(default_factory=lambda: next(_record_ids))

    @property
    def total_cpu(self) -> float:
        return self.cpu * self.count

    @property
    def total_mem(self) -> float:
        return self.mem * self.count


class AllocationLedger:
    """Per-machine registry of running allocations.

    The ledger is advisory bookkeeping layered over
    :class:`~repro.core.cellstate.CellState`: resource arithmetic still
    flows through ``claim``/``release``, so all cell-state invariants
    hold; the ledger adds the who-owns-what view preemption needs.
    """

    def __init__(self, state: CellState, sim: Simulator) -> None:
        self.state = state
        self.sim = sim
        self._by_machine: dict[int, dict[int, AllocationRecord]] = {}
        self.preempted_tasks = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        claim: Claim,
        precedence: int,
        duration: float,
        on_preempt: VictimCallback | None = None,
        already_claimed: bool = False,
        owner: str | None = None,
    ) -> AllocationRecord:
        """Claim resources for ``claim`` and register the allocation.

        Schedules the normal end-of-task release ``duration`` seconds
        from now; eviction cancels it. Pass ``already_claimed=True``
        when the resources were claimed by an optimistic commit and the
        ledger should only take over lifetime bookkeeping.
        """
        if not already_claimed:
            with _san.master_scope("ledger-register"):
                self.state.claim(claim.machine, claim.cpu, claim.mem, claim.count)
        record = AllocationRecord(
            machine=claim.machine,
            cpu=claim.cpu,
            mem=claim.mem,
            count=claim.count,
            precedence=precedence,
            on_preempt=on_preempt,
            owner=owner,
        )
        record.end_event = self.sim.after(duration, self._finish, record)
        self._by_machine.setdefault(claim.machine, {})[record.record_id] = record
        return record

    def _finish(self, record: AllocationRecord) -> None:
        """Normal task completion."""
        machine_records = self._by_machine.get(record.machine, {})
        if record.record_id not in machine_records:  # pragma: no cover - guard
            return
        del machine_records[record.record_id]
        with _san.master_scope("task-end"):
            self.state.release(record.machine, record.cpu, record.mem, record.count)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records_on(self, machine: int) -> list[AllocationRecord]:
        return list(self._by_machine.get(machine, {}).values())

    def usage_by_owner(self) -> dict[str, tuple[float, float]]:
        """Aggregate (cpu, mem) currently held per owning scheduler.

        Unowned allocations (e.g. the initial standing population) are
        grouped under ``"<unowned>"``.
        """
        usage: dict[str, list[float]] = {}
        # Iterate machines and records in a pinned order so float
        # accumulation is reproducible (omega-lint DET003).
        for machine in sorted(self._by_machine):
            for record in sorted(
                self._by_machine[machine].values(), key=lambda r: r.record_id
            ):
                key = record.owner or "<unowned>"
                totals = usage.setdefault(key, [0.0, 0.0])
                totals[0] += record.total_cpu
                totals[1] += record.total_mem
        return {owner: (cpu, mem) for owner, (cpu, mem) in sorted(usage.items())}

    def preemptible(self, machine: int, below_precedence: int) -> tuple[float, float]:
        """(cpu, mem) reclaimable on ``machine`` from allocations whose
        precedence is strictly below ``below_precedence``."""
        cpu = 0.0
        mem = 0.0
        for record in sorted(
            self._by_machine.get(machine, {}).values(), key=lambda r: r.record_id
        ):
            if record.precedence < below_precedence:
                cpu += record.total_cpu
                mem += record.total_mem
        return cpu, mem

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict(
        self,
        machine: int,
        need_cpu: float,
        need_mem: float,
        below_precedence: int,
    ) -> int:
        """Free at least (need_cpu, need_mem) on ``machine`` by evicting
        lowest-precedence victims first. Returns evicted task count.

        Eviction is per-task: a partially-evicted allocation keeps its
        surviving tasks running.
        """
        if need_cpu <= EPSILON and need_mem <= EPSILON:
            return 0
        victims = sorted(
            (
                record
                for record in self._by_machine.get(machine, {}).values()
                if record.precedence < below_precedence
            ),
            key=lambda record: (record.precedence, -record.record_id),
        )
        evicted = 0
        freed_cpu = 0.0
        freed_mem = 0.0
        for record in victims:
            if freed_cpu + EPSILON >= need_cpu and freed_mem + EPSILON >= need_mem:
                break
            take = 0
            while take < record.count and (
                freed_cpu < need_cpu - EPSILON or freed_mem < need_mem - EPSILON
            ):
                take += 1
                freed_cpu += record.cpu
                freed_mem += record.mem
            if take == 0:
                continue
            self._evict_tasks(record, take)
            evicted += take
        return evicted

    def evict_machine(self, machine: int) -> int:
        """Evict *every* allocation on ``machine`` regardless of
        precedence (machine failure semantics). Returns evicted tasks."""
        evicted = 0
        for record in sorted(
            self._by_machine.get(machine, {}).values(), key=lambda r: r.record_id
        ):
            evicted += record.count
            self._evict_tasks(record, record.count)
        return evicted

    def _evict_tasks(self, record: AllocationRecord, count: int) -> None:
        machine_records = self._by_machine[record.machine]
        with _san.master_scope("preemption-evict"):
            self.state.release(record.machine, record.cpu, record.mem, count)
        self.preempted_tasks += count
        if count >= record.count:
            del machine_records[record.record_id]
            if record.end_event is not None:
                self.sim.cancel(record.end_event)
        else:
            record.count -= count
        if record.on_preempt is not None:
            record.on_preempt(record, count)


def _claim_headroom(
    state: CellState, ledger: AllocationLedger, claim: Claim, precedence: int
) -> int:
    """How many of the claim's tasks fit into free + preemptible space."""
    free_cpu = state.free_cpu[claim.machine]
    free_mem = state.free_mem[claim.machine]
    reclaimable_cpu, reclaimable_mem = ledger.preemptible(claim.machine, precedence)
    per_task = claim.count
    if claim.cpu > 0:
        per_task = min(
            per_task, int((free_cpu + reclaimable_cpu + EPSILON) // claim.cpu)
        )
    if claim.mem > 0:
        per_task = min(
            per_task, int((free_mem + reclaimable_mem + EPSILON) // claim.mem)
        )
    return per_task


def commit_with_preemption(
    state: CellState,
    ledger: AllocationLedger,
    claims: list[Claim] | tuple[Claim, ...],
    precedence: int,
    all_or_nothing: bool = False,
) -> tuple[list[Claim], list[Claim], int]:
    """Commit ``claims`` at ``precedence``, evicting lower-precedence
    allocations where free resources alone do not suffice.

    Returns ``(accepted, rejected, preempted_task_count)``. A claim is
    rejected (a conflict) only if even free + preemptible resources
    cannot hold it; partial acceptance splits at task granularity like
    incremental commits. Accepted claims are applied to the master cell
    state (like :func:`repro.core.transaction.commit`); the caller then
    registers them in the ledger with ``already_claimed=True``.

    ``all_or_nothing=True`` implements the paper's gang-scheduled
    preemption: either every claim lands (evicting victims as needed) or
    the whole transaction is rejected with *no* evictions — "a
    gang-scheduled job can preempt lower-priority tasks once sufficient
    resources are available and its transaction commits, and allow other
    schedulers' jobs to use the resources in the meantime" (no
    hoarding).
    """
    if all_or_nothing:
        # Validate everything against free + preemptible space before
        # touching anything: a failed gang transaction must not evict.
        for claim in claims:
            if _claim_headroom(state, ledger, claim, precedence) < claim.count:
                return [], list(claims), 0

    accepted: list[Claim] = []
    rejected: list[Claim] = []
    preempted = 0
    for claim in claims:
        free_cpu = state.free_cpu[claim.machine]
        free_mem = state.free_mem[claim.machine]
        per_task = _claim_headroom(state, ledger, claim, precedence)
        if per_task <= 0:
            rejected.append(claim)
            continue
        ok = min(claim.count, per_task)
        need_cpu = max(0.0, claim.cpu * ok - free_cpu)
        need_mem = max(0.0, claim.mem * ok - free_mem)
        preempted += ledger.evict(claim.machine, need_cpu, need_mem, precedence)
        take = claim if ok == claim.count else Claim(claim.machine, claim.cpu, claim.mem, ok)
        with _san.master_scope("preemption-commit"):
            state.claim(take.machine, take.cpu, take.mem, take.count)
        accepted.append(take)
        if ok < claim.count:
            rejected.append(
                Claim(claim.machine, claim.cpu, claim.mem, claim.count - ok)
            )
    return accepted, rejected, preempted
