"""An Omega scheduler that uses its precedence to preempt.

Paper section 3.4: a scheduler "has complete freedom to lay claim to
any available cluster resources ... even ones that another scheduler
has already acquired", and "a gang-scheduled job can preempt
lower-priority tasks once sufficient resources are available".

The :class:`PreemptingOmegaScheduler` plans placements over free *plus
reclaimable* (lower-precedence) resources, then commits with eviction.
All other behaviour — decision-time model, serial queue, retries,
metrics — is inherited from :class:`~repro.core.scheduler.OmegaScheduler`,
which is the point: preemption is just one more policy a specialized
scheduler can implement over shared state.
"""

from __future__ import annotations

import numpy as np

from repro.core.cellstate import CellState
from repro.core.placement import randomized_first_fit
from repro.core.preemption import AllocationLedger, commit_with_preemption
from repro.core.scheduler import OmegaScheduler
from repro.core.transaction import CommitMode, ConflictMode
from repro.faults.retry import RetryPolicy
from repro.obs import recorder as _obs
from repro.metrics import MetricsCollector
from repro.schedulers.base import DecisionTimeModel
from repro.sim import Simulator
from repro.workload.job import Job, JobType


class PreemptingOmegaScheduler(OmegaScheduler):
    """Omega scheduler that may evict lower-precedence tasks."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        metrics: MetricsCollector,
        state: CellState,
        rng: np.random.Generator,
        decision_times: dict[JobType, DecisionTimeModel] | DecisionTimeModel,
        ledger: AllocationLedger,
        commit_mode: CommitMode = CommitMode.INCREMENTAL,
        attempt_limit: int = 1000,
        retry_conflicts_at_front: bool = True,
        retry_policy: "RetryPolicy | None" = None,
    ) -> None:
        super().__init__(
            name,
            sim,
            metrics,
            state,
            rng,
            decision_times,
            conflict_mode=ConflictMode.FINE,
            commit_mode=commit_mode,
            attempt_limit=attempt_limit,
            retry_conflicts_at_front=retry_conflicts_at_front,
            ledger=ledger,
            retry_policy=retry_policy,
        )

    def _plan_view(self, job: Job) -> tuple[np.ndarray, np.ndarray]:
        """Snapshot free resources plus what this job could reclaim."""
        assert self._snapshot is not None
        plan_cpu = self._snapshot.free_cpu.copy()
        plan_mem = self._snapshot.free_mem.copy()
        for machine, records in sorted(self.ledger._by_machine.items()):
            for record in sorted(records.values(), key=lambda r: r.record_id):
                if record.precedence < job.precedence:
                    plan_cpu[machine] += record.total_cpu
                    plan_mem[machine] += record.total_mem
        return plan_cpu, plan_mem

    def attempt(self, job: Job) -> None:
        snapshot = self._snapshot
        if snapshot is None:  # pragma: no cover - loop always snapshots first
            raise RuntimeError("attempt() without begin_attempt()")
        plan_cpu, plan_mem = self._plan_view(job)
        self._snapshot = None
        claims = randomized_first_fit(
            plan_cpu,
            plan_mem,
            job.cpu_per_task,
            job.mem_per_task,
            job.unplaced_tasks,
            self._rng,
        )
        rec = _obs.RECORDER
        gang = self.commit_mode is CommitMode.ALL_OR_NOTHING
        if gang and sum(claim.count for claim in claims) < job.unplaced_tasks:
            # Gang scheduling: the plan must cover every task; no
            # hoarding while waiting ("allow other schedulers' jobs to
            # use the resources in the meantime").
            if rec.enabled:
                rec.event("txn.skipped", reason="gang_insufficient_plan")
            self._resolve_attempt(job, had_conflict=False)
            return
        if not claims:
            if rec.enabled:
                rec.event("txn.skipped", reason="no_placement")
            self._resolve_attempt(job, had_conflict=False)
            return
        if rec.enabled:
            rec.event(
                "txn.validate",
                claims=len(claims),
                tasks=sum(claim.count for claim in claims),
                preempting=True,
                commit_mode=self.commit_mode.value,
            )
        accepted, rejected, preempted = commit_with_preemption(
            self.state, self.ledger, claims, job.precedence, all_or_nothing=gang
        )
        conflicted = bool(rejected)
        if rec.enabled:
            for claim in rejected:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count,
                    cause="capacity",
                )
            rec.event(
                "txn.commit",
                accepted=sum(claim.count for claim in accepted),
                rejected=sum(claim.count for claim in rejected),
                conflicted=conflicted,
                preempted_tasks=preempted,
            )
        self.metrics.record_commit(self.name, conflicted, self.sim.now)
        if preempted:
            self.metrics.record_preemption_caused(self.name, preempted)
        job.unplaced_tasks -= sum(claim.count for claim in accepted)
        self._start_tasks(self.state, job, accepted)
        self._resolve_attempt(job, had_conflict=conflicted)
