"""Placement strategies for the lightweight simulator.

The paper's lightweight simulator uses **randomized first fit**
(Table 2). Tasks of a job are identical (see :mod:`repro.workload.job`),
so placement walks candidate machines in some order and packs as many
tasks as fit onto each — which is exactly first fit for identical items.

Two additional orders are provided for the placement-strategy ablation
(`benchmarks/bench_ablation_placement.py`): **best fit** (fullest
feasible machines first — what the production-algorithm stand-in in
:mod:`repro.hifi.placement` does) and **worst fit** (emptiest first).
The order matters for *interference*: deterministic best-fit makes
concurrent schedulers pick the same machines, which is one of the two
reasons the paper's high-fidelity simulator sees more conflicts than
the lightweight one.

Kernel layout (the paper-scale rewrite, ROADMAP item 1):

* :func:`randomized_first_fit` samples machine draws in blocks of
  :data:`SAMPLE_BLOCK` instead of materialising and shuffling the full
  candidate set — O(tasks placed) in the common case — and falls back
  to an exact full-candidate shuffle when sampling stalls, so the
  result is always work-conserving like the original kernel.
* :func:`_pack` is a cumulative-capacity formulation: per-machine task
  limits from ``floor_divide``, ``cumsum``, and ``searchsorted`` for
  the machine where the job's demand is exhausted.
* :func:`best_fit`/:func:`worst_fit` accept a
  :class:`~repro.core.capacity_index.CapacityIndex` and scan its
  buckets instead of sorting all candidates per call.

Each vectorized kernel has a retained scalar reference
(:func:`_pack_reference`, :func:`randomized_first_fit_reference`,
:func:`_ordered_fit_reference`) used by the differential property tests
in ``tests/core/test_kernel_equivalence.py``; the kernels must match
them claim-for-claim, including every EPSILON comparison and RNG draw.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.capacity_index import CapacityIndex, bucket_of
from repro.core.cellstate import EPSILON
from repro.core.transaction import Claim

#: Machine draws per sampling round of :func:`randomized_first_fit`.
SAMPLE_BLOCK = 64

#: Sampling rounds before :func:`randomized_first_fit` gives up on
#: drawing and switches to the exact full-candidate fallback. Bounds
#: the worst case (nearly-saturated cells) at a few hundred draws.
MAX_SAMPLE_BLOCKS = 3


def randomized_first_fit(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
) -> list[Claim]:
    """Plan placements for ``num_tasks`` identical tasks.

    Reads (does not mutate) the free arrays — typically a scheduler's
    private snapshot. Returns at most one :class:`Claim` per machine;
    the total claimed count is ``<= num_tasks`` (fewer when the view has
    insufficient room, in which case the scheduler retries the job
    later, per the paper's incremental-placement policy).

    Machines are drawn uniformly at random in blocks of
    :data:`SAMPLE_BLOCK` (repeats are skipped), which touches only
    O(tasks placed) machines on a mostly-free cell instead of shuffling
    all ``n`` candidates. If a whole block makes no progress, or
    :data:`MAX_SAMPLE_BLOCKS` blocks still leave tasks unplaced, the
    exact fallback shuffles the not-yet-examined candidates and packs
    them — so the kernel remains work-conserving: it places fewer than
    ``num_tasks`` only when the view truly lacks room.
    """
    _validate(cpu, mem, num_tasks)
    num_machines = free_cpu.shape[0]
    claims: list[Claim] = []
    remaining = num_tasks
    examined: set[int] = set()
    # ``item()`` returns python floats, so the per-draw work below runs
    # on unboxed doubles (same IEEE-754 results as the array ufuncs,
    # several times faster at this size).
    cpu_at = free_cpu.item
    mem_at = free_mem.item
    for _ in range(MAX_SAMPLE_BLOCKS):
        draws = (rng.random(SAMPLE_BLOCK) * num_machines).astype(np.int64)
        progressed = False
        for machine in draws.tolist():
            if machine in examined:
                continue
            examined.add(machine)
            have_cpu = cpu_at(machine) + EPSILON
            have_mem = mem_at(machine) + EPSILON
            if have_cpu < cpu or have_mem < mem:
                continue
            count = remaining
            if cpu > 0:
                count = min(count, int(have_cpu // cpu))
            if mem > 0:
                count = min(count, int(have_mem // mem))
            claims.append(Claim(machine, cpu, mem, count))
            remaining -= count
            progressed = True
            if remaining == 0:
                return claims
        if not progressed:
            break
    # Exact fallback: every feasible machine not yet examined, in a
    # uniformly random order. Machines already claimed from are full
    # w.r.t. per-task limits (otherwise remaining would be 0), so
    # excluding ``examined`` loses nothing.
    mask = (free_cpu + EPSILON >= cpu) & (free_mem + EPSILON >= mem)
    if examined:
        mask[sorted(examined)] = False
    candidates = np.flatnonzero(mask)
    if candidates.size:
        rng.shuffle(candidates)
        claims.extend(_pack(candidates, free_cpu, free_mem, cpu, mem, remaining))
    return claims


def randomized_first_fit_reference(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
) -> list[Claim]:
    """Retained scalar reference for :func:`randomized_first_fit`.

    Independent re-implementation with the identical RNG draw schedule
    and EPSILON arithmetic, but packing via the scalar
    :func:`_pack_reference` walk. The differential property tests assert
    the vectorized kernel matches this claim-for-claim.
    """
    _validate(cpu, mem, num_tasks)
    num_machines = free_cpu.shape[0]
    claims: list[Claim] = []
    remaining = num_tasks
    examined: set[int] = set()
    for _ in range(MAX_SAMPLE_BLOCKS):
        draws = (rng.random(SAMPLE_BLOCK) * num_machines).astype(np.int64)
        progressed = False
        for machine in draws.tolist():
            if machine in examined:
                continue
            examined.add(machine)
            have_cpu = free_cpu.item(machine) + EPSILON
            have_mem = free_mem.item(machine) + EPSILON
            if have_cpu < cpu or have_mem < mem:
                continue
            count = remaining
            if cpu > 0:
                count = min(count, int(have_cpu // cpu))
            if mem > 0:
                count = min(count, int(have_mem // mem))
            claims.append(Claim(machine=machine, cpu=cpu, mem=mem, count=count))
            remaining -= count
            progressed = True
            if remaining == 0:
                return claims
        if not progressed:
            break
    mask = (free_cpu + EPSILON >= cpu) & (free_mem + EPSILON >= mem)
    if examined:
        mask[sorted(examined)] = False
    candidates = np.flatnonzero(mask)
    if candidates.size:
        rng.shuffle(candidates)
        claims.extend(
            _pack_reference(candidates, free_cpu, free_mem, cpu, mem, remaining)
        )
    return claims


def _validate(cpu: float, mem: float, num_tasks: int) -> None:
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    if cpu < 0 or mem < 0:
        raise ValueError(
            f"task resource requests must be non-negative, got "
            f"cpu={cpu}, mem={mem}"
        )
    if cpu <= 0 and mem <= 0:
        raise ValueError("tasks must request some resource")


def _pack(
    candidates: np.ndarray,
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
) -> list[Claim]:
    """Pack tasks onto candidates in order (cumulative-capacity kernel).

    Vectorized equivalent of the first-fit walk in
    :func:`_pack_reference`: per-machine task limits via
    ``floor_divide``, then ``cumsum`` + ``searchsorted`` find the
    machine on which the job's demand runs out.
    """
    if candidates.size == 0 or num_tasks <= 0:
        return []
    limits = np.full(candidates.shape, float(num_tasks))
    if cpu > 0:
        np.minimum(
            limits, np.floor_divide(free_cpu[candidates] + EPSILON, cpu), out=limits
        )
    if mem > 0:
        np.minimum(
            limits, np.floor_divide(free_mem[candidates] + EPSILON, mem), out=limits
        )
    counts = limits.astype(np.int64)
    positive = counts > 0
    if not positive.all():
        candidates = candidates[positive]
        counts = counts[positive]
        if counts.size == 0:
            return []
    cumulative = np.cumsum(counts)
    cut = int(np.searchsorted(cumulative, num_tasks, side="left"))
    if cut < counts.size:
        candidates = candidates[: cut + 1]
        counts = counts[: cut + 1].copy()
        counts[cut] = num_tasks - (int(cumulative[cut - 1]) if cut else 0)
    return [
        Claim(machine=machine, cpu=cpu, mem=mem, count=count)
        for machine, count in zip(candidates.tolist(), counts.tolist())
    ]


def _pack_reference(
    candidates: np.ndarray,
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
) -> list[Claim]:
    """Retained scalar reference for :func:`_pack`: walk candidates in
    order, packing as many tasks as fit on each."""
    claims: list[Claim] = []
    remaining = num_tasks
    for machine in candidates:
        per_machine = remaining
        if cpu > 0:
            per_machine = min(per_machine, int((free_cpu[machine] + EPSILON) // cpu))
        if mem > 0:
            per_machine = min(per_machine, int((free_mem[machine] + EPSILON) // mem))
        if per_machine <= 0:
            continue
        claims.append(
            Claim(machine=int(machine), cpu=cpu, mem=mem, count=per_machine)
        )
        remaining -= per_machine
        if remaining == 0:
            break
    return claims


def _ordered_fit(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
    descending_free: bool,
    index: CapacityIndex | None = None,
) -> list[Claim]:
    """First fit over candidates ordered by free capacity.

    ``descending_free=False`` is best fit (fullest machines first),
    ``True`` is worst fit (emptiest first). Candidates with equal free
    capacity are visited in machine-id order, so the result is a pure
    function of the free arrays. ``rng`` is unused but kept so all
    placement strategies share one signature.

    With a :class:`~repro.core.capacity_index.CapacityIndex`, the scan
    walks capacity buckets in order and sorts only the buckets it
    touches — sublinear per placement on large cells. Both paths visit
    machines in the identical global ``(free capacity, machine id)``
    order (see the index's determinism contract).
    """
    del rng  # deterministic tie-break: (free capacity, machine id)
    _validate(cpu, mem, num_tasks)
    if index is None:
        candidates = np.flatnonzero(
            (free_cpu + EPSILON >= cpu) & (free_mem + EPSILON >= mem)
        )
        if candidates.size == 0:
            return []
        keys = free_cpu[candidates] + free_mem[candidates]
        order = np.lexsort((candidates, -keys if descending_free else keys))
        return _pack(candidates[order], free_cpu, free_mem, cpu, mem, num_tasks)
    # A machine needs free_cpu >= cpu - EPSILON and free_mem >= mem -
    # EPSILON, so its capacity key is at least cpu + mem - 2*EPSILON;
    # buckets entirely below that can never hold a feasible machine.
    start_bucket = bucket_of(max(cpu + mem - 2.0 * EPSILON, 0.0))
    claims: list[Claim] = []
    remaining = num_tasks
    for members in index.scan(ascending=not descending_free, start_bucket=start_bucket):
        feasible = members[
            (free_cpu[members] + EPSILON >= cpu)
            & (free_mem[members] + EPSILON >= mem)
        ]
        if feasible.size == 0:
            continue
        keys = free_cpu[feasible] + free_mem[feasible]
        order = np.lexsort((feasible, -keys if descending_free else keys))
        packed = _pack(feasible[order], free_cpu, free_mem, cpu, mem, remaining)
        claims.extend(packed)
        remaining -= sum(claim.count for claim in packed)
        if remaining == 0:
            break
    return claims


def _ordered_fit_reference(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
    descending_free: bool,
) -> list[Claim]:
    """Retained scalar reference for :func:`_ordered_fit`: full sort of
    all candidates, scalar pack."""
    del rng
    _validate(cpu, mem, num_tasks)
    candidates = np.flatnonzero(
        (free_cpu + EPSILON >= cpu) & (free_mem + EPSILON >= mem)
    )
    if candidates.size == 0:
        return []
    keys = free_cpu[candidates] + free_mem[candidates]
    order = np.lexsort((candidates, -keys if descending_free else keys))
    return _pack_reference(candidates[order], free_cpu, free_mem, cpu, mem, num_tasks)


def best_fit(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
    index: CapacityIndex | None = None,
) -> list[Claim]:
    """Pack the fullest feasible machines first (tight packing;
    concurrent schedulers collide often)."""
    return _ordered_fit(free_cpu, free_mem, cpu, mem, num_tasks, rng, False, index)


def worst_fit(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
    index: CapacityIndex | None = None,
) -> list[Claim]:
    """Fill the emptiest machines first (load spreading; concurrent
    schedulers naturally steer apart)."""
    return _ordered_fit(free_cpu, free_mem, cpu, mem, num_tasks, rng, True, index)


def steered_placement(
    placement: Callable,
    snapshot,
    job,
    rng: np.random.Generator,
    hot: tuple[int, ...] | list[int],
) -> tuple[list[Claim], int]:
    """Run ``placement`` steered away from predicted-hot machines.

    The contention-avoidance kernel for
    :class:`~repro.faults.predictor.ConflictPredictor`: the hot
    machines' free resources are masked to zero in the snapshot (the
    attempt's scratch space, same trick as the cooldown-based
    hot-machine masking), the scheduler's regular placement kernel runs
    over everything else, and then the mask is undone. Steering is
    therefore a pure *reordering* of the candidate set: if the cold
    machines cannot hold the whole job, the remainder is packed onto
    the hot machines themselves — **coldest predicted-hot first** (the
    reverse of ``hot``'s hottest-first order) — via the same vectorized
    :func:`_pack` kernel the first-fit fallback uses. Feasibility is
    never sacrificed: the steered plan places exactly as many tasks as
    the unsteered plan would have (property-tested in
    ``tests/core/test_steering.py``).

    Returns ``(claims, fallback_tasks)`` where ``fallback_tasks`` is
    how many tasks the work-conserving fallback had to put on hot
    machines anyway.

    Composes with every registered strategy: the mask goes through
    :meth:`~repro.core.cellstate.CellSnapshot.note_local_write`, so the
    capacity index used by the ordered-fit kernels re-buckets the
    masked machines on the way in and back out, and the next resync
    restores them from the master copy.
    """
    free_cpu = snapshot.free_cpu
    free_mem = snapshot.free_mem
    saved = [
        (int(machine), float(free_cpu[machine]), float(free_mem[machine]))
        for machine in hot
    ]
    for machine, _, _ in saved:
        free_cpu[machine] = 0.0
        free_mem[machine] = 0.0
        snapshot.note_local_write(machine)
    try:
        claims = placement(snapshot, job, rng)
    finally:
        for machine, had_cpu, had_mem in saved:
            free_cpu[machine] = had_cpu
            free_mem[machine] = had_mem
            snapshot.note_local_write(machine)
    remaining = job.unplaced_tasks - sum(claim.count for claim in claims)
    fallback_tasks = 0
    if remaining > 0 and saved:
        candidates = np.array(
            [machine for machine, _, _ in reversed(saved)], dtype=np.intp
        )
        packed = _pack(
            candidates,
            free_cpu,
            free_mem,
            job.cpu_per_task,
            job.mem_per_task,
            remaining,
        )
        if packed:
            fallback_tasks = sum(claim.count for claim in packed)
            claims = list(claims) + packed
    return claims, fallback_tasks


#: Strategy registry for the lightweight simulator and its ablations.
PLACEMENT_STRATEGIES: dict[str, Callable] = {
    "random-first-fit": randomized_first_fit,
    "best-fit": best_fit,
    "worst-fit": worst_fit,
}

#: Strategies that accept (and profit from) a snapshot's capacity index.
_INDEXED_STRATEGIES = frozenset({"best-fit", "worst-fit"})


def placement_fn(strategy: str):
    """A :data:`repro.core.scheduler.PlacementFn` for a named strategy."""
    try:
        fit = PLACEMENT_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown placement strategy {strategy!r}; "
            f"choose from {sorted(PLACEMENT_STRATEGIES)}"
        ) from None
    indexed = strategy in _INDEXED_STRATEGIES

    def placement(snapshot, job, rng):
        kwargs = {"index": snapshot.capacity_index()} if indexed else {}
        return fit(
            snapshot.free_cpu,
            snapshot.free_mem,
            job.cpu_per_task,
            job.mem_per_task,
            job.unplaced_tasks,
            rng,
            **kwargs,
        )

    return placement
