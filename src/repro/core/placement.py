"""Placement strategies for the lightweight simulator.

The paper's lightweight simulator uses **randomized first fit**
(Table 2). Tasks of a job are identical (see :mod:`repro.workload.job`),
so placement walks candidate machines in some order and packs as many
tasks as fit onto each — which is exactly first fit for identical items.

Two additional orders are provided for the placement-strategy ablation
(`benchmarks/bench_ablation_placement.py`): **best fit** (fullest
feasible machines first — what the production-algorithm stand-in in
:mod:`repro.hifi.placement` does) and **worst fit** (emptiest first).
The order matters for *interference*: deterministic best-fit makes
concurrent schedulers pick the same machines, which is one of the two
reasons the paper's high-fidelity simulator sees more conflicts than
the lightweight one.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.cellstate import EPSILON
from repro.core.transaction import Claim


def randomized_first_fit(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
) -> list[Claim]:
    """Plan placements for ``num_tasks`` identical tasks.

    Reads (does not mutate) the free arrays — typically a scheduler's
    private snapshot. Returns at most one :class:`Claim` per machine;
    the total claimed count is ``<= num_tasks`` (fewer when the view has
    insufficient room, in which case the scheduler retries the job
    later, per the paper's incremental-placement policy).
    """
    _validate(cpu, mem, num_tasks)
    candidates = np.flatnonzero(
        (free_cpu + EPSILON >= cpu) & (free_mem + EPSILON >= mem)
    )
    if candidates.size == 0:
        return []
    rng.shuffle(candidates)
    return _pack(candidates, free_cpu, free_mem, cpu, mem, num_tasks)


def _validate(cpu: float, mem: float, num_tasks: int) -> None:
    if num_tasks < 1:
        raise ValueError(f"num_tasks must be >= 1, got {num_tasks}")
    if cpu <= 0 and mem <= 0:
        raise ValueError("tasks must request some resource")


def _pack(
    candidates: np.ndarray,
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
) -> list[Claim]:
    """Walk candidates in order, packing as many tasks as fit on each."""
    claims: list[Claim] = []
    remaining = num_tasks
    for machine in candidates:
        per_machine = remaining
        if cpu > 0:
            per_machine = min(per_machine, int((free_cpu[machine] + EPSILON) // cpu))
        if mem > 0:
            per_machine = min(per_machine, int((free_mem[machine] + EPSILON) // mem))
        if per_machine <= 0:
            continue
        claims.append(
            Claim(machine=int(machine), cpu=cpu, mem=mem, count=per_machine)
        )
        remaining -= per_machine
        if remaining == 0:
            break
    return claims

def _ordered_fit(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
    descending_free: bool,
) -> list[Claim]:
    """First fit over candidates sorted by free capacity.

    ``descending_free=False`` is best fit (fullest machines first),
    ``True`` is worst fit (emptiest first). A small random jitter breaks
    ties so repeated identical calls do not always produce one ordering.
    """
    _validate(cpu, mem, num_tasks)
    candidates = np.flatnonzero(
        (free_cpu + EPSILON >= cpu) & (free_mem + EPSILON >= mem)
    )
    if candidates.size == 0:
        return []
    keys = free_cpu[candidates] + free_mem[candidates]
    keys = keys + rng.uniform(0.0, 1e-9, size=keys.shape)
    order = np.argsort(-keys if descending_free else keys, kind="stable")
    return _pack(candidates[order], free_cpu, free_mem, cpu, mem, num_tasks)


def best_fit(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
) -> list[Claim]:
    """Pack the fullest feasible machines first (tight packing;
    concurrent schedulers collide often)."""
    return _ordered_fit(free_cpu, free_mem, cpu, mem, num_tasks, rng, False)


def worst_fit(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    cpu: float,
    mem: float,
    num_tasks: int,
    rng: np.random.Generator,
) -> list[Claim]:
    """Fill the emptiest machines first (load spreading; concurrent
    schedulers naturally steer apart)."""
    return _ordered_fit(free_cpu, free_mem, cpu, mem, num_tasks, rng, True)


#: Strategy registry for the lightweight simulator and its ablations.
PLACEMENT_STRATEGIES: dict[str, Callable] = {
    "random-first-fit": randomized_first_fit,
    "best-fit": best_fit,
    "worst-fit": worst_fit,
}


def placement_fn(strategy: str):
    """A :data:`repro.core.scheduler.PlacementFn` for a named strategy."""
    try:
        fit = PLACEMENT_STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown placement strategy {strategy!r}; "
            f"choose from {sorted(PLACEMENT_STRATEGIES)}"
        ) from None

    def placement(snapshot, job, rng):
        return fit(
            snapshot.free_cpu,
            snapshot.free_mem,
            job.cpu_per_task,
            job.mem_per_task,
            job.unplaced_tasks,
            rng,
        )

    return placement
