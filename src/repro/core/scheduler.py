"""The Omega shared-state scheduler (paper section 3.4).

Each scheduler runs the loop:

1. **sync** — take a private snapshot of the shared cell state when it
   starts looking at a job;
2. **think** — spend the modeled decision time
   (``t_job + t_task x tasks``) planning placements on the snapshot
   with randomized first fit;
3. **commit** — attempt an atomic, optimistically-concurrent commit of
   the planned claims against the live cell state;
4. **resync/retry** — on conflict, immediately retry the job (with a
   fresh snapshot); on insufficient capacity, requeue it behind other
   work.

Schedulers never lock anything and never wait for each other: "Omega
schedulers operate completely in parallel and do not have to wait for
jobs in other schedulers, and there is no inter-scheduler head of line
blocking."
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis import sanitizer as _san
from repro.core.cellstate import CellSnapshot, CellState
from repro.core.placement import randomized_first_fit, steered_placement
from repro.core.transaction import Claim, CommitMode, ConflictMode, commit
from repro.faults.predictor import ConflictPredictor
from repro.faults.retry import RetryPolicy
from repro.metrics import MetricsCollector
from repro.obs import recorder as _obs
from repro.schedulers.base import DecisionTimeModel, QueueScheduler
from repro.sim import Simulator
from repro.workload.job import Job, JobType

#: Signature of a pluggable placement planner: (snapshot, job, rng) -> claims.
#: The lightweight simulator uses randomized first fit; the high-fidelity
#: simulator plugs in the constraint-aware scoring planner.
PlacementFn = Callable[[CellSnapshot, Job, np.random.Generator], list[Claim]]


def _first_fit_placement(
    snapshot: CellSnapshot, job: Job, rng: np.random.Generator
) -> list[Claim]:
    return randomized_first_fit(
        snapshot.free_cpu,
        snapshot.free_mem,
        job.cpu_per_task,
        job.mem_per_task,
        job.unplaced_tasks,
        rng,
    )


class OmegaScheduler(QueueScheduler):
    """One shared-state scheduler with full visibility of the cell."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        metrics: MetricsCollector,
        state: CellState,
        rng: np.random.Generator,
        decision_times: dict[JobType, DecisionTimeModel] | DecisionTimeModel,
        conflict_mode: ConflictMode = ConflictMode.FINE,
        commit_mode: CommitMode = CommitMode.INCREMENTAL,
        placement: PlacementFn = _first_fit_placement,
        attempt_limit: int = 1000,
        retry_conflicts_at_front: bool = True,
        ledger: "AllocationLedger | None" = None,
        conflict_avoidance_cooldown: float = 0.0,
        retry_policy: "RetryPolicy | None" = None,
        predictor: "ConflictPredictor | None" = None,
    ) -> None:
        super().__init__(
            name,
            sim,
            metrics,
            attempt_limit,
            retry_conflicts_at_front=retry_conflicts_at_front,
            retry_policy=retry_policy,
        )
        self.state = state
        #: Optional allocation ledger. When set, this scheduler's
        #: running tasks are registered (and therefore visible to — and
        #: preemptible by — higher-precedence schedulers), and evicted
        #: tasks automatically re-enter this scheduler's queue.
        self.ledger = ledger
        self._rng = rng
        if isinstance(decision_times, DecisionTimeModel):
            decision_times = {job_type: decision_times for job_type in JobType}
        missing = [t for t in JobType if t not in decision_times]
        if missing:
            raise ValueError(f"decision_times missing job types: {missing}")
        self._decision_times = dict(decision_times)
        self.conflict_mode = conflict_mode
        self.commit_mode = commit_mode
        self._placement = placement
        self._snapshot: CellSnapshot | None = None
        #: Hot-machine avoidance (the paper's section 8 future-work
        #: direction: "techniques from the database community ... to
        #: reduce the likelihood and effects of interference"). Like
        #: hot-key backoff in OCC stores, machines whose claims recently
        #: conflicted are skipped for ``conflict_avoidance_cooldown``
        #: seconds, steering contending schedulers apart. 0 disables it.
        if conflict_avoidance_cooldown < 0:
            raise ValueError(
                f"cooldown must be >= 0, got {conflict_avoidance_cooldown}"
            )
        self.conflict_avoidance_cooldown = conflict_avoidance_cooldown
        self._hot_machines: dict[int, float] = {}
        #: Predictive conflict avoidance (see
        #: :mod:`repro.faults.predictor`). When set, commit conflicts
        #: feed the predictor's contention model, placement steers away
        #: from its predicted-hot machines, and a ``predictive`` retry
        #: policy sharing this instance escalates on its probability
        #: estimate. None (the default) leaves every code path —
        #: placement, commit, trace — byte-identical to a build without
        #: the predictor.
        self.predictor = predictor
        #: Persistent private view of cell state, reused across attempts
        #: via incremental :meth:`~repro.core.cellstate.CellSnapshot.resync`
        #: instead of a fresh full copy per transaction.
        self._view: CellSnapshot | None = None

    # ------------------------------------------------------------------
    def decision_time(self, job: Job) -> float:
        return self._decision_times[job.job_type].duration(job.unplaced_tasks)

    def begin_attempt(self, job: Job) -> None:
        """Sync: refresh the private copy of cell state.

        The first sync takes a full snapshot; every later one — the
        retry loop's "resyncs its local copy ... and tries again" —
        applies only the machines touched since (see
        :meth:`repro.core.cellstate.CellSnapshot.resync`).
        """
        if self._view is None:
            self._view = self.state.snapshot(self.sim.now)
        else:
            self._view.resync(self.state, self.sim.now)
        self._snapshot = self._view
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_sync(self.name, self._view, self.state)
        rec = _obs.RECORDER
        if rec.enabled:
            # "The time from state synchronization to the commit attempt
            # is a transaction" — this marks its start.
            rec.event(
                "txn.begin",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts + 1,
                unplaced=job.unplaced_tasks,
            )

    def _mask_hot_machines(self, snapshot: CellSnapshot) -> None:
        """Blank out recently-conflicted machines in the private copy.

        The snapshot is this attempt's scratch space, so zeroing the
        hot machines' free resources simply removes them from the
        placement candidate set; expired entries are dropped.
        """
        if not self._hot_machines:
            return
        now = self.sim.now
        expired = [m for m, expiry in sorted(self._hot_machines.items()) if expiry <= now]
        for machine in expired:
            del self._hot_machines[machine]
        for machine in sorted(self._hot_machines):
            snapshot.free_cpu[machine] = 0.0
            snapshot.free_mem[machine] = 0.0
            # The view is reused across attempts; the next resync must
            # restore these machines from the master copy.
            snapshot.note_local_write(machine)

    def _note_conflicts(self, rejected) -> None:
        if self.conflict_avoidance_cooldown <= 0:
            return
        expiry = self.sim.now + self.conflict_avoidance_cooldown
        for claim in rejected:
            self._hot_machines[claim.machine] = expiry

    def attempt(self, job: Job) -> None:
        snapshot = self._snapshot
        self._snapshot = None
        if snapshot is None:  # pragma: no cover - loop always snapshots first
            raise RuntimeError("attempt() without begin_attempt()")
        if _san.ACTIVE is not None:
            _san.ACTIVE.on_snapshot_use(self.name, snapshot, self.state)

        if self.conflict_avoidance_cooldown > 0:
            self._mask_hot_machines(snapshot)

        rec = _obs.RECORDER
        hot: tuple[int, ...] = ()
        if self.predictor is not None:
            hot = self.predictor.hot_machines(self.sim.now)
        if hot:
            claims, fallback = steered_placement(
                self._placement, snapshot, job, self._rng, hot
            )
            self.metrics.record_steered(self.name, fallback)
            if rec.enabled:
                rec.event(
                    "predict.steer",
                    t=self.sim.now,
                    sched=self.name,
                    job=job.job_id,
                    hot=len(hot),
                    fallback=fallback,
                )
        else:
            claims = self._placement(snapshot, job, self._rng)

        # A starvation-escalated job (section 3.6) commits incrementally
        # from here on, so its non-conflicting tasks land even though
        # the scheduler's configured mode is gang/all-or-nothing.
        commit_mode = self.commit_mode
        if job.escalated and commit_mode is CommitMode.ALL_OR_NOTHING:
            commit_mode = CommitMode.INCREMENTAL

        if commit_mode is CommitMode.ALL_OR_NOTHING:
            planned = sum(claim.count for claim in claims)
            if planned < job.unplaced_tasks:
                # Gang scheduling needs room for every task; the private
                # copy showed too little, so no transaction is issued.
                # No hoarding: the resources stay usable by others.
                if rec.enabled:
                    rec.event("txn.skipped", reason="gang_insufficient_plan")
                self._resolve_attempt(job, had_conflict=False)
                return

        if not claims:
            # "Assuming at least one task got scheduled, a transaction
            # ... is issued" — nothing could be planned, so no commit.
            if rec.enabled:
                rec.event("txn.skipped", reason="no_placement")
            self._resolve_attempt(job, had_conflict=False)
            return

        result = commit(
            self.state,
            claims,
            snapshot,
            conflict_mode=self.conflict_mode,
            commit_mode=commit_mode,
            on_conflict=(
                self._observe_conflict if self.predictor is not None else None
            ),
        )
        self.metrics.record_commit(self.name, result.conflicted, self.sim.now)
        if self.predictor is not None:
            self.predictor.observe_commit(result.conflicted, self.sim.now)
            self.metrics.record_predictor_commit(
                self.name, steered=bool(hot), conflicted=result.conflicted
            )
        if result.conflicted:
            self._note_conflicts(result.rejected)
        job.unplaced_tasks -= result.accepted_tasks
        self._start_tasks(self.state, job, result.accepted)
        self._resolve_attempt(job, had_conflict=result.conflicted)

    def _observe_conflict(self, machine: int, tasks: int, cause: str) -> None:
        """Commit's ``on_conflict`` hook: feed the contention model.

        Called machine-by-machine from the batched ``_batch_validate``
        masks at exactly the points the ``txn.conflict`` trace events
        fire, on the simulated clock."""
        self.predictor.observe_conflict(machine, tasks, cause, self.sim.now)

    def _abort_attempt(self, job: Job) -> None:
        """Crash/commit-drop cleanup: discard the private snapshot (the
        in-flight transaction). The persistent view resyncs next time."""
        self._snapshot = None

    def crash(self, requeue: bool = True) -> Job | None:
        """Crash semantics for the predictor: the contention model is
        in-memory scheduler state, so it dies with the process — the
        restarted scheduler re-learns from post-restart conflicts (see
        :meth:`repro.faults.predictor.ConflictPredictor.reset`)."""
        was_down = self.is_down
        lost = super().crash(requeue=requeue)
        if not was_down and self.predictor is not None:
            self.predictor.reset()
            rec = _obs.RECORDER
            if rec.enabled:
                rec.event("predict.reset", t=self.sim.now, sched=self.name)
        return lost

    # ------------------------------------------------------------------
    # Ledger integration (registration + preemption victims)
    # ------------------------------------------------------------------
    def _start_tasks(self, state: CellState, job: Job, claims) -> None:
        if self.ledger is None:
            super()._start_tasks(state, job, claims)
            return
        # Commit already claimed the resources; the ledger only takes
        # over lifetime bookkeeping (end events, preemption victims).
        for claim in claims:
            self.ledger.register(
                claim,
                precedence=job.precedence,
                duration=job.duration,
                on_preempt=lambda record, count, job=job: self._on_preempted(
                    job, count
                ),
                already_claimed=True,
                owner=self.name,
            )

    def _on_preempted(self, job: Job, count: int) -> None:
        """A higher-precedence scheduler evicted ``count`` of our tasks."""
        self.metrics.record_preemption_victim(self.name, count)
        was_complete = job.is_fully_scheduled
        job.unplaced_tasks += count
        if was_complete and not job.abandoned:
            # The job was done scheduling; put it back in our queue so
            # the evicted tasks get re-placed.
            self._requeue(job, at_front=False)
