"""Load-balancing one workload across multiple Omega schedulers.

Paper sections 4.3 and 5.1: "the batch scheduling work is load-balanced
across the schedulers using a simple hashing function". This is the
mechanism behind Figure 9 (1-32 lightweight batch schedulers) and
Figure 13 (three high-fidelity batch schedulers).
"""

from __future__ import annotations

from typing import Sequence

from repro.workload.job import Job


class SchedulerPool:
    """Routes jobs across a pool of schedulers by hashing the job id.

    Any object with a ``submit(job)`` method can be a pool member, so
    pools compose with :class:`repro.core.scheduler.OmegaScheduler` and
    with the high-fidelity variant alike.
    """

    def __init__(self, schedulers: Sequence) -> None:
        if not schedulers:
            raise ValueError("a scheduler pool needs at least one scheduler")
        self.schedulers = list(schedulers)

    def __len__(self) -> int:
        return len(self.schedulers)

    def route(self, job: Job) -> int:
        """The pool index responsible for ``job`` (stable across calls)."""
        return job.job_id % len(self.schedulers)

    def submit(self, job: Job) -> None:
        self.schedulers[self.route(job)].submit(job)

    @property
    def names(self) -> list[str]:
        return [scheduler.name for scheduler in self.schedulers]
