"""Per-scheduler limits, admission control, and post-facto auditing.

Paper section 3.4: "individual schedulers have configuration settings
to limit the total amount of resources they may claim, and to limit the
number of jobs they admit", and "we also rely on post-facto
enforcement, since we are monitoring the system's behavior anyway".

Two pieces:

* :class:`LimitedOmegaScheduler` — an Omega scheduler with a resource
  quota (claims are trimmed at its limit; jobs beyond the admission
  limit are rejected at submit time);
* :class:`PolicyMonitor` — periodic, *after-the-fact* auditing of
  per-scheduler usage against configured limits, "to eliminate the need
  for checks in a scheduler's critical code path". The monitor watches
  the shared allocation ledger and records violations; it never blocks
  anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cellstate import CellState
from repro.core.preemption import AllocationLedger
from repro.core.scheduler import OmegaScheduler, PlacementFn, _first_fit_placement
from repro.core.transaction import Claim, CommitMode, ConflictMode
from repro.metrics import MetricsCollector
from repro.schedulers.base import DecisionTimeModel
from repro.sim import Simulator
from repro.workload.job import Job, JobType


@dataclass(frozen=True)
class SchedulerLimits:
    """Configured ceilings for one scheduler; ``None`` means unlimited."""

    max_cpu: float | None = None
    max_mem: float | None = None
    max_admitted_jobs: int | None = None

    def __post_init__(self) -> None:
        if self.max_cpu is not None and self.max_cpu < 0:
            raise ValueError(f"max_cpu must be >= 0, got {self.max_cpu}")
        if self.max_mem is not None and self.max_mem < 0:
            raise ValueError(f"max_mem must be >= 0, got {self.max_mem}")
        if self.max_admitted_jobs is not None and self.max_admitted_jobs < 0:
            raise ValueError(
                f"max_admitted_jobs must be >= 0, got {self.max_admitted_jobs}"
            )


class LimitedOmegaScheduler(OmegaScheduler):
    """An Omega scheduler that respects its configured quota.

    Tracks its own outstanding usage (claims minus completed tasks) and
    trims placement plans so a commit never takes it over its resource
    limits; jobs arriving past the admission limit are rejected and
    counted in :attr:`jobs_rejected`.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        metrics: MetricsCollector,
        state: CellState,
        rng: np.random.Generator,
        decision_times: dict[JobType, DecisionTimeModel] | DecisionTimeModel,
        limits: SchedulerLimits,
        conflict_mode: ConflictMode = ConflictMode.FINE,
        commit_mode: CommitMode = CommitMode.INCREMENTAL,
        placement: PlacementFn = _first_fit_placement,
        attempt_limit: int = 1000,
        ledger: AllocationLedger | None = None,
    ) -> None:
        super().__init__(
            name,
            sim,
            metrics,
            state,
            rng,
            decision_times,
            conflict_mode=conflict_mode,
            commit_mode=commit_mode,
            placement=self._limited_placement(placement),
            attempt_limit=attempt_limit,
            ledger=ledger,
        )
        self.limits = limits
        self.used_cpu = 0.0
        self.used_mem = 0.0
        self.jobs_admitted = 0
        self.jobs_rejected = 0

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        limit = self.limits.max_admitted_jobs
        if limit is not None and self.jobs_admitted >= limit:
            self.jobs_rejected += 1
            return
        self.jobs_admitted += 1
        super().submit(job)

    # ------------------------------------------------------------------
    # Quota-aware placement
    # ------------------------------------------------------------------
    def current_usage(self) -> tuple[float, float]:
        """This scheduler's outstanding (cpu, mem) usage.

        With a shared allocation ledger the usage comes from the ledger
        (so evictions free quota immediately); otherwise from the local
        counters maintained by :meth:`_start_tasks`.
        """
        if self.ledger is not None:
            return self.ledger.usage_by_owner().get(self.name, (0.0, 0.0))
        return (self.used_cpu, self.used_mem)

    def _headroom_tasks(self, job: Job) -> int:
        """How many more of this job's tasks fit under the quota."""
        used_cpu, used_mem = self.current_usage()
        remaining = job.unplaced_tasks
        if self.limits.max_cpu is not None and job.cpu_per_task > 0:
            budget = self.limits.max_cpu - used_cpu
            remaining = min(remaining, max(0, int(budget / job.cpu_per_task + 1e-9)))
        if self.limits.max_mem is not None and job.mem_per_task > 0:
            budget = self.limits.max_mem - used_mem
            remaining = min(remaining, max(0, int(budget / job.mem_per_task + 1e-9)))
        return remaining

    def _limited_placement(self, inner: PlacementFn) -> PlacementFn:
        def placement(snapshot, job, rng) -> list[Claim]:
            allowed = self._headroom_tasks(job)
            if allowed <= 0:
                return []
            claims = inner(snapshot, job, rng)
            trimmed: list[Claim] = []
            remaining = allowed
            for claim in claims:
                if remaining <= 0:
                    break
                count = min(claim.count, remaining)
                trimmed.append(
                    claim
                    if count == claim.count
                    else Claim(claim.machine, claim.cpu, claim.mem, count)
                )
                remaining -= count
            return trimmed

        return placement

    # ------------------------------------------------------------------
    # Own-usage accounting (ledger-less path; with a ledger the usage
    # is read from it, see current_usage())
    # ------------------------------------------------------------------
    def _start_tasks(self, state: CellState, job: Job, claims) -> None:
        if self.ledger is None:
            for claim in claims:
                self.used_cpu += claim.cpu * claim.count
                self.used_mem += claim.mem * claim.count
                self.sim.after(job.duration, self._own_usage_released, claim)
        super()._start_tasks(state, job, claims)

    def _own_usage_released(self, claim: Claim) -> None:
        self.used_cpu -= claim.cpu * claim.count
        self.used_mem -= claim.mem * claim.count


@dataclass(frozen=True)
class Violation:
    """One audited quota violation."""

    time: float
    scheduler: str
    used_cpu: float
    used_mem: float
    limit_cpu: float | None
    limit_mem: float | None


@dataclass
class PolicyMonitor:
    """Post-facto policy auditor over the shared allocation ledger.

    Samples per-owner usage every ``interval`` seconds and records a
    :class:`Violation` whenever a scheduler exceeds its configured
    limits. Enforcement is *not* automatic — the paper relies on
    "compliance to cluster-wide policies ... audited post facto" rather
    than checks on the scheduling fast path.
    """

    sim: Simulator
    ledger: AllocationLedger
    limits: dict[str, SchedulerLimits]
    interval: float = 300.0
    violations: list[Violation] = field(default_factory=list)
    samples: int = 0

    def start(self, until: float | None = None) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        self.sim.every(self.interval, self._audit, until=until)

    def _audit(self) -> None:
        self.samples += 1
        usage = self.ledger.usage_by_owner()
        for scheduler, limits in sorted(self.limits.items()):
            cpu, mem = usage.get(scheduler, (0.0, 0.0))
            over_cpu = limits.max_cpu is not None and cpu > limits.max_cpu + 1e-9
            over_mem = limits.max_mem is not None and mem > limits.max_mem + 1e-9
            if over_cpu or over_mem:
                self.violations.append(
                    Violation(
                        time=self.sim.now,
                        scheduler=scheduler,
                        used_cpu=cpu,
                        used_mem=mem,
                        limit_cpu=limits.max_cpu,
                        limit_mem=limits.max_mem,
                    )
                )
