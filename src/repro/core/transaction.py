"""Optimistic-concurrency transactions against shared cell state.

Paper section 3.4: "Once a scheduler makes a placement decision, it
updates the shared copy of cell state in an atomic commit. ... the time
from state synchronization to the commit attempt is a transaction."

Two orthogonal choices are modeled, matching section 5.2:

* **Conflict detection** (:class:`ConflictMode`):
  ``FINE`` rejects a claim only if applying it would over-commit the
  machine *now*; ``COARSE`` rejects it if *anything* changed on the
  machine since the snapshot (sequence-number comparison), even changes
  that left enough room — the paper's "spurious conflicts".
* **Commit granularity** (:class:`CommitMode`):
  ``INCREMENTAL`` accepts all but the conflicting claims (atomicity but
  not independence); ``ALL_OR_NOTHING`` implements gang scheduling —
  one conflicting claim rejects the whole transaction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.analysis import sanitizer as _san
from repro.core.cellstate import EPSILON, CellSnapshot, CellState
from repro.obs import recorder as _obs


class ConflictMode(enum.Enum):
    """How commit decides that a claim conflicts (paper section 5.2)."""

    FINE = "fine"
    COARSE = "coarse"


class CommitMode(enum.Enum):
    """Transaction granularity (paper sections 3.4 and 5.2)."""

    INCREMENTAL = "incremental"
    ALL_OR_NOTHING = "all_or_nothing"


@dataclass(frozen=True)
class Claim:
    """A planned allocation: ``count`` identical tasks on one machine."""

    machine: int
    cpu: float
    mem: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"claim count must be >= 1, got {self.count}")
        if self.cpu < 0 or self.mem < 0:
            raise ValueError("claim resources must be non-negative")


@dataclass(frozen=True)
class CommitResult:
    """Outcome of one commit attempt."""

    accepted: tuple[Claim, ...]
    rejected: tuple[Claim, ...]

    @property
    def accepted_tasks(self) -> int:
        return sum(claim.count for claim in self.accepted)

    @property
    def rejected_tasks(self) -> int:
        return sum(claim.count for claim in self.rejected)

    @property
    def conflicted(self) -> bool:
        """Whether this attempt experienced at least one conflict.

        The paper's *conflict fraction* counts, per job, how many commit
        attempts conflicted; a value of 3 means four attempts.
        """
        return bool(self.rejected)

    @property
    def fully_accepted(self) -> bool:
        return not self.rejected


def _acceptable_count(state: CellState, claim: Claim) -> int:
    """How many of the claim's tasks still fit on the live machine."""
    per_task_limits = []
    if claim.cpu > 0:
        per_task_limits.append(int((state.free_cpu[claim.machine] + EPSILON) // claim.cpu))
    if claim.mem > 0:
        per_task_limits.append(int((state.free_mem[claim.machine] + EPSILON) // claim.mem))
    if not per_task_limits:
        return claim.count
    return min(claim.count, *per_task_limits)


def commit(
    state: CellState,
    claims: list[Claim] | tuple[Claim, ...],
    snapshot: CellSnapshot,
    conflict_mode: ConflictMode = ConflictMode.FINE,
    commit_mode: CommitMode = CommitMode.INCREMENTAL,
) -> CommitResult:
    """Attempt to commit a transaction's claims to the master cell state.

    The claims were planned against ``snapshot``; the master copy may
    have moved on since. Returns which claims (or parts of claims —
    incremental commits split partially-fitting claims at task
    granularity, "only those changes that do not result in an
    overcommitted machine are accepted") were applied and which were
    rejected. Accepted claims are applied atomically: an all-or-nothing
    transaction that fails leaves the master copy untouched.
    """
    if not claims:
        return CommitResult(accepted=(), rejected=())

    san = _san.ACTIVE
    if san is not None:
        san.begin_commit(state, snapshot, claims)

    rec = _obs.RECORDER
    tracing = rec.enabled
    if tracing:
        rec.event(
            "txn.validate",
            claims=len(claims),
            tasks=sum(claim.count for claim in claims),
            conflict_mode=conflict_mode.value,
            commit_mode=commit_mode.value,
        )

    accepted: list[Claim] = []
    rejected: list[Claim] = []

    for claim in claims:
        if conflict_mode is ConflictMode.COARSE and (
            state.seq[claim.machine] != snapshot.seq[claim.machine]
        ):
            # Coarse-grained: any change to the machine since sync is a
            # conflict, even if the claim would still fit.
            rejected.append(claim)
            if tracing:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count,
                    cause="stale_sequence",
                )
            continue
        ok = _acceptable_count(state, claim)
        if ok >= claim.count:
            accepted.append(claim)
        elif ok > 0 and commit_mode is CommitMode.INCREMENTAL:
            accepted.append(replace(claim, count=ok))
            rejected.append(replace(claim, count=claim.count - ok))
            if tracing:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count - ok,
                    cause="partial_capacity",
                )
        else:
            rejected.append(claim)
            if tracing:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count,
                    cause="capacity",
                )

    if commit_mode is CommitMode.ALL_OR_NOTHING and rejected:
        # Gang scheduling: one conflict rejects the entire transaction.
        if tracing:
            rec.event(
                "txn.commit",
                accepted=0,
                rejected=sum(claim.count for claim in claims),
                conflicted=True,
                gang_aborted=True,
            )
        return CommitResult(accepted=(), rejected=tuple(claims))

    if san is None:
        for claim in accepted:
            state.claim(claim.machine, claim.cpu, claim.mem, claim.count)
    else:
        with san.scope("commit"):
            for claim in accepted:
                state.claim(claim.machine, claim.cpu, claim.mem, claim.count)
        san.end_commit(state, snapshot, accepted)
    result = CommitResult(accepted=tuple(accepted), rejected=tuple(rejected))
    if tracing:
        rec.event(
            "txn.commit",
            accepted=result.accepted_tasks,
            rejected=result.rejected_tasks,
            conflicted=result.conflicted,
        )
    return result
