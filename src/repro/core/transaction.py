"""Optimistic-concurrency transactions against shared cell state.

Paper section 3.4: "Once a scheduler makes a placement decision, it
updates the shared copy of cell state in an atomic commit. ... the time
from state synchronization to the commit attempt is a transaction."

Two orthogonal choices are modeled, matching section 5.2:

* **Conflict detection** (:class:`ConflictMode`):
  ``FINE`` rejects a claim only if applying it would over-commit the
  machine *now*; ``COARSE`` rejects it if *anything* changed on the
  machine since the snapshot (sequence-number comparison), even changes
  that left enough room — the paper's "spurious conflicts".
* **Commit granularity** (:class:`CommitMode`):
  ``INCREMENTAL`` accepts all but the conflicting claims (atomicity but
  not independence); ``ALL_OR_NOTHING`` implements gang scheduling —
  one conflicting claim rejects the whole transaction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.analysis import sanitizer as _san
from repro.core.cellstate import EPSILON, MIN_BATCH_CLAIMS, CellSnapshot, CellState
from repro.obs import recorder as _obs


class ConflictMode(enum.Enum):
    """How commit decides that a claim conflicts (paper section 5.2)."""

    FINE = "fine"
    COARSE = "coarse"


class CommitMode(enum.Enum):
    """Transaction granularity (paper sections 3.4 and 5.2)."""

    INCREMENTAL = "incremental"
    ALL_OR_NOTHING = "all_or_nothing"


@dataclass(frozen=True)
class Claim:
    """A planned allocation: ``count`` identical tasks on one machine."""

    machine: int
    cpu: float
    mem: float
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"claim count must be >= 1, got {self.count}")
        if self.cpu < 0 or self.mem < 0:
            raise ValueError("claim resources must be non-negative")


@dataclass(frozen=True)
class CommitResult:
    """Outcome of one commit attempt."""

    accepted: tuple[Claim, ...]
    rejected: tuple[Claim, ...]

    @property
    def accepted_tasks(self) -> int:
        return sum(claim.count for claim in self.accepted)

    @property
    def rejected_tasks(self) -> int:
        return sum(claim.count for claim in self.rejected)

    @property
    def conflicted(self) -> bool:
        """Whether this attempt experienced at least one conflict.

        The paper's *conflict fraction* counts, per job, how many commit
        attempts conflicted; a value of 3 means four attempts.
        """
        return bool(self.rejected)

    @property
    def fully_accepted(self) -> bool:
        return not self.rejected


def _acceptable_count(state: CellState, claim: Claim) -> int:
    """How many of the claim's tasks still fit on the live machine."""
    per_task_limits = []
    if claim.cpu > 0:
        per_task_limits.append(int((state.free_cpu[claim.machine] + EPSILON) // claim.cpu))
    if claim.mem > 0:
        per_task_limits.append(int((state.free_mem[claim.machine] + EPSILON) // claim.mem))
    if not per_task_limits:
        return claim.count
    return min(claim.count, *per_task_limits)


def _batch_validate(
    state: CellState,
    claims: list[Claim] | tuple[Claim, ...],
    snapshot: CellSnapshot,
    coarse: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray | None, np.ndarray]:
    """Claim arrays, stale-sequence flags and acceptable counts at once.

    Array formulation of the per-claim ``seq`` comparison and
    :func:`_acceptable_count`: ``np.floor_divide`` is the same ufunc the
    scalar ``//`` dispatches to on a ``np.float64``, so each element is
    bit-identical to the scalar walk. Zero-resource dimensions
    contribute an infinite limit, mirroring the scalar skip. The
    machines/counts/demand arrays are returned too so the all-accept
    fast path can hand them straight to ``claim_batch`` without
    rebuilding them from the claim objects.
    """
    num_claims = len(claims)
    machines = np.array([claim.machine for claim in claims], dtype=np.intp)
    counts = np.array([claim.count for claim in claims], dtype=np.int64)
    cpus = np.array([claim.cpu for claim in claims], dtype=float)
    mems = np.array([claim.mem for claim in claims], dtype=float)
    stale = (state.seq[machines] != snapshot.seq[machines]) if coarse else None
    limits = counts.astype(np.float64)
    for demand, free in ((cpus, state.free_cpu), (mems, state.free_mem)):
        requested = demand > 0.0
        if requested.all():
            np.minimum(
                limits, np.floor_divide(free[machines] + EPSILON, demand), out=limits
            )
        elif requested.any():
            quotient = np.full(num_claims, np.inf)
            quotient[requested] = np.floor_divide(
                free[machines[requested]] + EPSILON, demand[requested]
            )
            np.minimum(limits, quotient, out=limits)
    return machines, counts, cpus, mems, stale, limits.astype(np.int64)


def commit(
    state: CellState,
    claims: list[Claim] | tuple[Claim, ...],
    snapshot: CellSnapshot,
    conflict_mode: ConflictMode = ConflictMode.FINE,
    commit_mode: CommitMode = CommitMode.INCREMENTAL,
    on_conflict: Callable[[int, int, str], None] | None = None,
) -> CommitResult:
    """Attempt to commit a transaction's claims to the master cell state.

    The claims were planned against ``snapshot``; the master copy may
    have moved on since. Returns which claims (or parts of claims —
    incremental commits split partially-fitting claims at task
    granularity, "only those changes that do not result in an
    overcommitted machine are accepted") were applied and which were
    rejected. Accepted claims are applied atomically: an all-or-nothing
    transaction that fails leaves the master copy untouched.

    ``on_conflict`` is the conflict-predictor feed (see
    :mod:`repro.faults.predictor`): called as ``(machine, tasks,
    cause)`` for every fine-grained rejection, at exactly the points the
    ``txn.conflict`` trace events fire — machine-by-machine from the
    batched ``_batch_validate`` masks on the array path, and from the
    scalar checks below the batch threshold — but independent of
    whether tracing is enabled. ``None`` (the default) leaves the
    commit path byte-identical to the hook-free kernel.
    """
    if not claims:
        return CommitResult(accepted=(), rejected=())

    san = _san.ACTIVE
    if san is not None:
        san.begin_commit(state, snapshot, claims)

    rec = _obs.RECORDER
    tracing = rec.enabled
    if tracing:
        rec.event(
            "txn.validate",
            claims=len(claims),
            tasks=sum(claim.count for claim in claims),
            conflict_mode=conflict_mode.value,
            commit_mode=commit_mode.value,
        )

    accepted: list[Claim] = []
    rejected: list[Claim] = []

    # Validation reads only pre-commit state (the apply pass below is
    # fully separate), so for large transactions the stale-sequence
    # flags and acceptable counts can be computed for every claim in
    # one array pass; the decision loop itself stays scalar to keep the
    # accept/reject order and trace events identical to the per-claim
    # walk. Small transactions skip the array setup entirely.
    coarse = conflict_mode is ConflictMode.COARSE
    stale_flags = ok_counts = apply_arrays = None
    if len(claims) >= MIN_BATCH_CLAIMS:
        machines, counts, cpus, mems, stale, oks = _batch_validate(
            state, claims, snapshot, coarse
        )
        if (stale is None or not stale.any()) and bool(np.all(oks >= counts)):
            # Every claim accepted in full: the decision loop would do
            # nothing but append (and emit no per-claim trace events),
            # so skip it and reuse the validated arrays for the apply.
            accepted = list(claims)
            apply_arrays = (machines, counts, cpus * counts, mems * counts)
        else:
            stale_flags = stale.tolist() if coarse else None
            ok_counts = oks.tolist()

    # In batch mode the decision loop also records (position, granted)
    # pairs so the apply arrays can be sliced from the validated arrays
    # instead of rebuilt from the accepted claim objects.
    granted: list[tuple[int, int]] | None = (
        [] if ok_counts is not None else None
    )
    for position, claim in enumerate(() if apply_arrays is not None else claims):
        if coarse and (
            stale_flags[position]
            if stale_flags is not None
            else state.seq[claim.machine] != snapshot.seq[claim.machine]
        ):
            # Coarse-grained: any change to the machine since sync is a
            # conflict, even if the claim would still fit.
            rejected.append(claim)
            if on_conflict is not None:
                on_conflict(claim.machine, claim.count, "stale_sequence")
            if tracing:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count,
                    cause="stale_sequence",
                )
            continue
        ok = (
            ok_counts[position]
            if ok_counts is not None
            else _acceptable_count(state, claim)
        )
        if ok >= claim.count:
            accepted.append(claim)
            if granted is not None:
                granted.append((position, claim.count))
        elif ok > 0 and commit_mode is CommitMode.INCREMENTAL:
            accepted.append(replace(claim, count=ok))
            rejected.append(replace(claim, count=claim.count - ok))
            if granted is not None:
                granted.append((position, ok))
            if on_conflict is not None:
                on_conflict(claim.machine, claim.count - ok, "partial_capacity")
            if tracing:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count - ok,
                    cause="partial_capacity",
                )
        else:
            rejected.append(claim)
            if on_conflict is not None:
                on_conflict(claim.machine, claim.count, "capacity")
            if tracing:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count,
                    cause="capacity",
                )

    if commit_mode is CommitMode.ALL_OR_NOTHING and rejected:
        # Gang scheduling: one conflict rejects the entire transaction.
        if tracing:
            rec.event(
                "txn.commit",
                accepted=0,
                rejected=sum(claim.count for claim in claims),
                conflicted=True,
                gang_aborted=True,
            )
        return CommitResult(accepted=(), rejected=tuple(claims))

    if granted is not None and len(accepted) >= MIN_BATCH_CLAIMS:
        positions = np.array([g[0] for g in granted], dtype=np.intp)
        grants = np.array([g[1] for g in granted], dtype=np.int64)
        apply_arrays = (
            machines[positions],
            grants,
            cpus[positions] * grants,
            mems[positions] * grants,
        )

    if san is None:
        state.claim_batch(accepted, _arrays=apply_arrays)
    else:
        with san.scope("commit"):
            state.claim_batch(accepted, _arrays=apply_arrays)
        san.end_commit(state, snapshot, accepted)
    result = CommitResult(accepted=tuple(accepted), rejected=tuple(rejected))
    if tracing:
        rec.event(
            "txn.commit",
            accepted=result.accepted_tasks,
            rejected=result.rejected_tasks,
            conflicted=result.conflicted,
        )
    return result


def commit_reference(
    state: CellState,
    claims: list[Claim] | tuple[Claim, ...],
    snapshot: CellSnapshot,
    conflict_mode: ConflictMode = ConflictMode.FINE,
    commit_mode: CommitMode = CommitMode.INCREMENTAL,
) -> CommitResult:
    """Retained scalar reference for :func:`commit`.

    The pre-vectorization per-claim walk, kept verbatim (same sanitizer
    hooks and trace events) so the differential property tests in
    ``tests/core/test_kernel_equivalence.py`` and the ``commit_batch``
    benchmark can compare the batched path against it on identical
    states.
    """
    if not claims:
        return CommitResult(accepted=(), rejected=())

    san = _san.ACTIVE
    if san is not None:
        san.begin_commit(state, snapshot, claims)

    rec = _obs.RECORDER
    tracing = rec.enabled
    if tracing:
        rec.event(
            "txn.validate",
            claims=len(claims),
            tasks=sum(claim.count for claim in claims),
            conflict_mode=conflict_mode.value,
            commit_mode=commit_mode.value,
        )

    accepted: list[Claim] = []
    rejected: list[Claim] = []

    for claim in claims:
        if conflict_mode is ConflictMode.COARSE and (
            state.seq[claim.machine] != snapshot.seq[claim.machine]
        ):
            rejected.append(claim)
            if tracing:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count,
                    cause="stale_sequence",
                )
            continue
        ok = _acceptable_count(state, claim)
        if ok >= claim.count:
            accepted.append(claim)
        elif ok > 0 and commit_mode is CommitMode.INCREMENTAL:
            accepted.append(replace(claim, count=ok))
            rejected.append(replace(claim, count=claim.count - ok))
            if tracing:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count - ok,
                    cause="partial_capacity",
                )
        else:
            rejected.append(claim)
            if tracing:
                rec.event(
                    "txn.conflict",
                    machine=claim.machine,
                    tasks=claim.count,
                    cause="capacity",
                )

    if commit_mode is CommitMode.ALL_OR_NOTHING and rejected:
        if tracing:
            rec.event(
                "txn.commit",
                accepted=0,
                rejected=sum(claim.count for claim in claims),
                conflicted=True,
                gang_aborted=True,
            )
        return CommitResult(accepted=(), rejected=tuple(claims))

    if san is None:
        for claim in accepted:
            state.claim(claim.machine, claim.cpu, claim.mem, claim.count)
    else:
        with san.scope("commit"):
            for claim in accepted:
                state.claim(claim.machine, claim.cpu, claim.mem, claim.count)
        san.end_commit(state, snapshot, accepted)
    result = CommitResult(accepted=tuple(accepted), rejected=tuple(rejected))
    if tracing:
        rec.event(
            "txn.commit",
            accepted=result.accepted_tasks,
            rejected=result.rejected_tasks,
            conflicted=result.conflicted,
        )
    return result
