"""The paper's primary contribution: shared-state scheduling with
lock-free optimistic concurrency control (paper section 3.4).

* :mod:`repro.core.cellstate` — the resilient master copy of resource
  allocations ("cell state") plus the cheap private snapshots schedulers
  work against.
* :mod:`repro.core.transaction` — optimistic commit: fine- vs
  coarse-grained conflict detection, incremental vs all-or-nothing
  (gang) transactions (paper section 5.2).
* :mod:`repro.core.placement` — the lightweight simulator's randomized
  first-fit placement (Table 2).
* :mod:`repro.core.scheduler` — the Omega scheduler service loop:
  sync -> think -> commit -> resync/retry.
* :mod:`repro.core.multi` — hash-partitioned scheduler pools
  (Figures 9 and 13).
"""

from repro.core.capacity_index import CapacityIndex
from repro.core.cellstate import CellSnapshot, CellState, OvercommitError
from repro.core.placement import randomized_first_fit
from repro.core.preemption import (
    AllocationLedger,
    AllocationRecord,
    commit_with_preemption,
)
from repro.core.scheduler import OmegaScheduler
from repro.core.scheduler_preempting import PreemptingOmegaScheduler
from repro.core.multi import SchedulerPool
from repro.core.transaction import (
    Claim,
    CommitMode,
    CommitResult,
    ConflictMode,
    commit,
)

__all__ = [
    "CapacityIndex",
    "CellState",
    "CellSnapshot",
    "OvercommitError",
    "Claim",
    "CommitMode",
    "ConflictMode",
    "CommitResult",
    "commit",
    "randomized_first_fit",
    "OmegaScheduler",
    "PreemptingOmegaScheduler",
    "AllocationLedger",
    "AllocationRecord",
    "commit_with_preemption",
    "SchedulerPool",
]
