"""repro — a from-scratch reproduction of
"Omega: flexible, scalable schedulers for large compute clusters"
(Schwarzkopf, Konwinski, Abd-El-Malek, Wilkes; EuroSys 2013).

The package implements the paper's shared-state, optimistically-
concurrent scheduler architecture plus everything it is evaluated
against and on:

* :mod:`repro.core` — cell state, optimistic transactions, Omega
  schedulers, multi-scheduler pools (the paper's contribution);
* :mod:`repro.sim` — the discrete-event engine both simulators run on;
* :mod:`repro.cluster`, :mod:`repro.workload` — cells, machines, jobs,
  and the cluster A/B/C/D workload presets;
* :mod:`repro.schedulers` — monolithic, statically-partitioned and
  Mesos-style two-level baselines;
* :mod:`repro.hifi` — the trace-driven high-fidelity simulator with
  placement constraints and scoring placement;
* :mod:`repro.mapreduce` — the specialized MapReduce scheduler case
  study;
* :mod:`repro.experiments` — one driver per paper table/figure, plus
  the ``omega-sim`` CLI.

Quickstart::

    from repro import LightweightConfig, run_lightweight, CLUSTER_B

    result = run_lightweight(
        LightweightConfig(preset=CLUSTER_B, architecture="omega", horizon=3600.0)
    )
    print(result.busyness("batch"), result.conflict_fraction("batch"))
"""

from repro.cluster import Cell, Machine
from repro.core import (
    CellSnapshot,
    CellState,
    Claim,
    CommitMode,
    CommitResult,
    ConflictMode,
    OmegaScheduler,
    SchedulerPool,
    commit,
    randomized_first_fit,
)
from repro.experiments import (
    LightweightConfig,
    LightweightResult,
    LightweightSimulation,
    run_lightweight,
)
from repro import obs
from repro.hifi import HighFidelityConfig, run_hifi, synthesize_trace
from repro.metrics import MetricsCollector
from repro.schedulers import DecisionTimeModel
from repro.sim import RandomStreams, Simulator
from repro.workload import (
    CLUSTER_A,
    CLUSTER_B,
    CLUSTER_C,
    CLUSTER_D,
    ClusterPreset,
    Job,
    JobType,
    preset_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # cluster + workload
    "Cell",
    "Machine",
    "Job",
    "JobType",
    "ClusterPreset",
    "CLUSTER_A",
    "CLUSTER_B",
    "CLUSTER_C",
    "CLUSTER_D",
    "preset_by_name",
    # core
    "CellState",
    "CellSnapshot",
    "Claim",
    "CommitMode",
    "ConflictMode",
    "CommitResult",
    "commit",
    "randomized_first_fit",
    "OmegaScheduler",
    "SchedulerPool",
    # simulation
    "Simulator",
    "RandomStreams",
    "MetricsCollector",
    "DecisionTimeModel",
    # harnesses
    "LightweightConfig",
    "LightweightResult",
    "LightweightSimulation",
    "run_lightweight",
    "HighFidelityConfig",
    "run_hifi",
    "synthesize_trace",
]
