"""Discrete-event simulation substrate.

Both of the paper's simulators (the lightweight synthetic-workload one of
section 4 and the high-fidelity trace replayer of section 5) run on this
engine: a single-threaded, deterministic discrete-event loop.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.random import RandomStreams, derive_seed

__all__ = ["Simulator", "Event", "EventQueue", "RandomStreams", "derive_seed"]
