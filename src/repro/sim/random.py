"""Seeded, named random-number streams.

Each simulated component (workload generator, each scheduler's placement
algorithm, the trace synthesizer, ...) draws from its own independent
stream derived from a single master seed. This keeps experiments
reproducible and — importantly for A/B comparisons like Figure 14's
conflict-detection modes — makes the workload identical across runs that
only change scheduler configuration.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 63-bit child seed from a master seed and a name.

    Uses SHA-256 so that the mapping is stable across Python processes
    and versions (unlike ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RandomStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the same generator
        object, so a component's draws form one continuous stream.
        """
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RandomStreams":
        """Return a new :class:`RandomStreams` keyed under a sub-namespace."""
        return RandomStreams(derive_seed(self.master_seed, f"fork:{name}"))
