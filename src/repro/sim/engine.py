"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock and the event queue. All
schedulers, workload generators and metric samplers in this repository
are driven by callbacks scheduled here; nothing advances time except the
event loop, so runs are reproducible and independent of wall-clock speed
(which is what lets a "24h" experiment finish in minutes, per Table 2 of
the paper).
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable

from repro.sim.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling into the past)."""


class Simulator:
    """Single-threaded deterministic discrete-event simulator."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self.events_processed = 0
        #: Optional profiler with a ``record(fn, seconds)`` method (see
        #: :class:`repro.obs.profile.CallbackProfiler`). When None —
        #: the default — dispatch pays only this None check.
        self.profiler: Any | None = None
        self.peak_queue_depth = 0
        #: Wall-clock seconds spent inside :meth:`run` so far.
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------
    def at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        event = self._queue.push(time, fn, *args)
        depth = len(self._queue)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        return event

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        event = self._queue.push(self.now + delay, fn, *args)
        depth = len(self._queue)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        until: float | None = None,
    ) -> None:
        """Schedule ``fn(*args)`` every ``interval`` seconds, starting one
        interval from now, optionally stopping at ``until``."""
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval}")

        def tick() -> None:
            fn(*args)
            next_time = self.now + interval
            if until is None or next_time <= until:
                self.at(next_time, tick)

        first = self.now + interval
        if until is None or first <= until:
            self.at(first, tick)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue)

    def step(self) -> bool:
        """Run the next event. Returns False if the queue was empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self.now = event.time
        self.events_processed += 1
        profiler = self.profiler
        if profiler is None:
            event.fn(*event.args)
        else:
            start = _time.perf_counter()
            try:
                event.fn(*event.args)
            finally:
                profiler.record(event.fn, _time.perf_counter() - start)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order until the queue empties, the clock passes
        ``until``, or ``max_events`` events have been processed.

        Events scheduled exactly at ``until`` still run; the clock never
        advances past ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        wall_start = _time.perf_counter()
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self.now = until
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
            self.wall_seconds += _time.perf_counter() - wall_start

    def stats(self) -> dict[str, float | int]:
        """Snapshot of the engine's own runtime statistics."""
        return {
            "events_processed": self.events_processed,
            "pending_events": self.pending(),
            "peak_queue_depth": self.peak_queue_depth,
            "wall_seconds": self.wall_seconds,
            "sim_now": self.now,
        }
