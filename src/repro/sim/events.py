"""Event and event-queue primitives for the discrete-event engine.

Events are ordered by ``(time, sequence)``: two events scheduled for the
same instant fire in the order they were scheduled, which makes simulation
runs fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class Event:
    """A scheduled callback.

    Instances are handles: they are returned by :meth:`EventQueue.push`
    and can be passed to :meth:`EventQueue.cancel`. A cancelled event is
    skipped when its time comes (lazy deletion keeps the heap cheap).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} seq={self.seq} fn={name}{state}>"


class EventQueue:
    """A priority queue of :class:`Event` objects with stable ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at ``time`` and return a cancellable handle."""
        if time != time:  # NaN guard: NaN times would corrupt heap ordering
            raise ValueError("event time must not be NaN")
        event = Event(time, next(self._counter), fn, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event. Cancelling twice is a no-op."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def peek_time(self) -> float | None:
        """Return the time of the next live event, or None if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event | None:
        """Remove and return the next live event, or None if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
