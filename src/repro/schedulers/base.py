"""Shared machinery for simulated schedulers.

Every architecture in the paper models a scheduler as a *serial server*:
"Our schedulers process one request at a time, so a busy scheduler will
cause enqueued jobs to be delayed" (section 4). :class:`QueueScheduler`
implements that serial service loop — dequeue a job, mark its first
attempt (that instant defines the job's wait time), stay busy for the
modeled decision time, then run the architecture-specific placement
attempt — plus the retry/abandon bookkeeping shared by all
architectures (the 1,000-attempt abandonment limit of section 4).
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.analysis import sanitizer as _san
from repro.core.cellstate import CellState
from repro.core.transaction import Claim
from repro.faults.retry import RetryAction, RetryPolicy
from repro.metrics import MetricsCollector
from repro.obs import recorder as _obs
from repro.sim import Event, Simulator
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.chaos import ChaosEngine

#: The paper's measured per-job decision overhead (section 4: "t_job = 0.1 s").
DEFAULT_T_JOB = 0.1
#: The paper's measured per-task decision cost ("t_task = 5 ms").
DEFAULT_T_TASK = 0.005
#: "we limit any single job to 1,000 scheduling attempts" (section 4).
DEFAULT_ATTEMPT_LIMIT = 1000


@dataclass(frozen=True)
class DecisionTimeModel:
    """The paper's linear decision-time model:
    ``t_decision = t_job + t_task * tasks_per_job``."""

    t_job: float = DEFAULT_T_JOB
    t_task: float = DEFAULT_T_TASK

    def __post_init__(self) -> None:
        if self.t_job < 0 or self.t_task < 0:
            raise ValueError("decision time components must be non-negative")

    def duration(self, num_tasks: int) -> float:
        return self.t_job + self.t_task * num_tasks


class QueueScheduler(abc.ABC):
    """A serial scheduling server with a FIFO queue.

    Subclasses implement :meth:`decision_time` (how long thinking about
    a job takes) and :meth:`attempt` (what happens when thinking
    finishes: place, commit, then call :meth:`_resolve_attempt`).
    :meth:`begin_attempt` runs when thinking *starts* — Omega schedulers
    take their cell-state snapshot there, because the paper's schedulers
    "refresh their local copy of cell state ... when they start looking
    at a job".
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        metrics: MetricsCollector,
        attempt_limit: int = DEFAULT_ATTEMPT_LIMIT,
        retry_conflicts_at_front: bool = True,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if attempt_limit < 1:
            raise ValueError(f"attempt_limit must be >= 1, got {attempt_limit}")
        self.name = name
        self.sim = sim
        self.metrics = metrics
        self.attempt_limit = attempt_limit
        self.retry_conflicts_at_front = retry_conflicts_at_front
        #: Conflict-retry policy (see :mod:`repro.faults.retry`). None
        #: keeps the paper's behaviour: retry immediately at the front,
        #: bounded only by ``attempt_limit``.
        self.retry_policy = retry_policy
        #: Chaos engine hook; set by
        #: :meth:`repro.faults.chaos.ChaosEngine.install` when commit
        #: faults are configured, None otherwise.
        self.chaos: "ChaosEngine | None" = None
        self._queue: deque[Job] = deque()
        self._busy = False
        #: Crash state: a down scheduler serves nothing until restart().
        self._down = False
        #: The pending end-of-think event and its (job, busy_start,
        #: conflict_retry) context — the scheduler's in-flight
        #: transaction, lost if it crashes mid-think.
        self._inflight: Event | None = None
        self._inflight_info: tuple[Job, float, bool] | None = None

    # ------------------------------------------------------------------
    # Submission and the serial service loop
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def is_busy(self) -> bool:
        return self._busy

    @property
    def is_down(self) -> bool:
        """Whether the scheduler is crashed and awaiting restart."""
        return self._down

    @property
    def busy_since(self) -> float | None:
        """Start time of the in-flight think, or None when idle.

        Lets samplers credit the partially-elapsed busy interval that
        :meth:`MetricsCollector.record_busy` only sees at think-complete.
        """
        info = self._inflight_info
        return info[1] if info is not None else None

    def submit(self, job: Job) -> None:
        """Enqueue a newly arrived job."""
        self.metrics.record_submission(job)
        self._queue.append(job)
        self._maybe_start()

    def _requeue(self, job: Job, at_front: bool) -> None:
        if at_front:
            self._queue.appendleft(job)
        else:
            self._queue.append(job)
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._busy or self._down or not self._queue:
            return
        job = self._queue.popleft()
        if job.first_attempt_time is None:
            job.mark_first_attempt(self.sim.now)
            self.metrics.record_first_attempt(self.name, job)
        conflict_retry = job.requeued_for_conflict
        job.requeued_for_conflict = False
        self._busy = True
        think_time = self.decision_time(job)
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "sched.think_start",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts + 1,
                queue_depth=len(self._queue),
                conflict_retry=conflict_retry,
            )
        with _san.acting_scope(self.name):
            self.begin_attempt(job)
        drop = False
        if self.chaos is not None:
            # A commit latency spike keeps the scheduler busy past its
            # decision time, widening the window for conflicts; a drop
            # loses the attempt's work in flight (see _think_complete).
            delay, drop = self.chaos.commit_fault(self, job)
            think_time += delay
        self._inflight_info = (job, self.sim.now, conflict_retry)
        self._inflight = self.sim.after(
            think_time, self._think_complete, job, self.sim.now, conflict_retry, drop
        )

    def _think_complete(
        self, job: Job, busy_start: float, conflict_retry: bool, drop: bool = False
    ) -> None:
        self._inflight = None
        self._inflight_info = None
        self.metrics.record_busy(
            self.name, busy_start, self.sim.now, conflict_retry=conflict_retry
        )
        self._busy = False
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "sched.busy",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts + 1,
                t0=busy_start,
                conflict_retry=conflict_retry,
            )
        if drop:
            self._commit_dropped(job)
        elif rec.enabled:
            with rec.span(
                "sched.attempt",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts + 1,
            ):
                with _san.acting_scope(self.name):
                    self.attempt(job)
        else:
            with _san.acting_scope(self.name):
                self.attempt(job)
        self._maybe_start()

    def _commit_dropped(self, job: Job) -> None:
        """Chaos dropped this attempt's commit in flight.

        The thinking happened but its outcome never reached the cell
        state, so the work is accounted as a conflicted transaction and
        the job goes back through the conflict-retry path.
        """
        self.metrics.record_commit(self.name, conflicted=True, time=self.sim.now)
        self.metrics.record_commit_dropped(self.name)
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "fault.commit_drop",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts + 1,
            )
        self._abort_attempt(job)
        self._resolve_attempt(job, had_conflict=True)

    # ------------------------------------------------------------------
    # Crash/restart (driven by the chaos engine)
    # ------------------------------------------------------------------
    def crash(self, requeue: bool = True) -> Job | None:
        """Crash now: the in-flight transaction is lost and the
        scheduler serves nothing until :meth:`restart`.

        The job being thought about (if any) is returned. With
        ``requeue`` (the default, a transient scheduler crash) it goes
        back to the front of the queue — its attempt never completed,
        so no attempt is counted, but the planning work (busy time) is
        already spent. With ``requeue=False`` (a whole-cell blackout)
        the in-flight job is *not* requeued: the caller owns its fate,
        e.g. the federation front door counting it as lost to the
        blackout.
        """
        if self._down:
            return None
        self._down = True
        lost: Job | None = None
        if self._inflight is not None:
            self.sim.cancel(self._inflight)
            self._inflight = None
            job, busy_start, conflict_retry = self._inflight_info
            self._inflight_info = None
            lost = job
            # The wasted planning work still counts as busyness.
            self.metrics.record_busy(
                self.name, busy_start, self.sim.now, conflict_retry=conflict_retry
            )
            self._busy = False
            self._abort_attempt(job)
            if requeue:
                self._requeue(job, at_front=True)
        return lost

    def drain_pending(self) -> list[Job]:
        """Remove and return every queued (not yet in-flight) job.

        Used by the federation front door to migrate a dead cell's
        backlog to surviving cells. Order is preserved (front first).
        """
        drained = list(self._queue)
        self._queue.clear()
        return drained

    def restart(self) -> None:
        """Recover from a crash and resume serving the queue."""
        if not self._down:
            return
        self._down = False
        self._maybe_start()

    def _abort_attempt(self, job: Job) -> None:
        """Discard attempt-scoped state after a crash or commit drop.

        Subclasses clean up what an interrupted attempt left behind
        (Omega drops its private snapshot; a Mesos framework returns
        its held offer)."""

    # ------------------------------------------------------------------
    # Architecture hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def decision_time(self, job: Job) -> float:
        """How long this scheduler thinks about ``job`` (seconds)."""

    def begin_attempt(self, job: Job) -> None:
        """Hook at the start of thinking (Omega snapshots here)."""

    @abc.abstractmethod
    def attempt(self, job: Job) -> None:
        """Placement attempt at the end of thinking. Implementations
        place/commit, then call :meth:`_resolve_attempt` exactly once."""

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def _resolve_attempt(self, job: Job, had_conflict: bool) -> None:
        """Advance the job's lifecycle after one attempt.

        Default retry behaviour (no :attr:`retry_policy`): a
        *conflicted* job retries immediately at the head of the queue
        ("the scheduler resyncs its local copy of cell state ... and
        tries again"); a job that simply found no room goes to the back
        so other jobs are not blocked behind it. With a policy set, the
        conflicted path is whatever the policy decides — delayed,
        back-of-queue, escalated to incremental commits, or abandoned.
        """
        job.attempts += 1
        if had_conflict:
            job.conflicts += 1
        rec = _obs.RECORDER
        if job.is_fully_scheduled:
            if job.fully_scheduled_time is None:
                # Count each job once, even if preemption later sends it
                # back through scheduling.
                self.metrics.record_scheduled(self.name, job, self.sim.now)
                if rec.enabled:
                    rec.event(
                        "job.scheduled",
                        t=self.sim.now,
                        sched=self.name,
                        job=job.job_id,
                        attempt=job.attempts,
                        tasks=job.num_tasks,
                        conflicts=job.conflicts,
                    )
            job.fully_scheduled_time = self.sim.now
        elif job.attempts >= self.attempt_limit:
            self._abandon(job, reason="attempt-limit")
        else:
            at_front = had_conflict and self.retry_conflicts_at_front
            delay = 0.0
            if had_conflict and self.retry_policy is not None:
                decision = self.retry_policy.decide(job)
                if decision.action is RetryAction.ABANDON:
                    self._abandon(job, reason="conflict-cap")
                    return
                if decision.escalate:
                    self._escalate(job)
                at_front = decision.at_front and self.retry_conflicts_at_front
                delay = decision.delay
            job.requeued_for_conflict = had_conflict
            if rec.enabled:
                fields = dict(
                    t=self.sim.now,
                    sched=self.name,
                    job=job.job_id,
                    attempt=job.attempts,
                    conflict=had_conflict,
                    at_front=at_front,
                )
                if delay > 0:
                    fields["delay"] = delay
                rec.event("job.requeued", **fields)
            if delay > 0:
                self.sim.after(delay, self._requeue, job, at_front)
            else:
                self._requeue(job, at_front=at_front)

    def _abandon(self, job: Job, reason: str) -> None:
        """Terminal failure: the job stops being retried, explicitly."""
        job.abandoned = True
        self.metrics.record_abandoned(self.name, job, reason=reason)
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "job.abandoned",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts,
                unplaced=job.unplaced_tasks,
                reason=reason,
            )

    def _escalate(self, job: Job) -> None:
        """Switch ``job`` to incremental commit mode (paper section 3.6:
        repeatedly-conflicting jobs stop gang scheduling so partial
        progress lands). Schedulers honour the flag in attempt()."""
        job.escalated = True
        policy = self.retry_policy.name if self.retry_policy is not None else None
        self.metrics.record_escalated(
            self.name, attempts=job.attempts, policy=policy
        )
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "job.escalated",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts,
                conflicts=job.conflicts,
                policy=policy,
            )

    def _start_tasks(self, state: CellState, job: Job, claims: tuple[Claim, ...] | list[Claim]) -> None:
        """Schedule the resource release for tasks that just started."""
        end_time = self.sim.now + job.duration
        san = _san.ACTIVE
        release = (
            state.release if san is None else san.scoped(state.release, "task-end")
        )
        for claim in claims:
            self.sim.at(end_time, release, claim.machine, claim.cpu, claim.mem, claim.count)
