"""Comparison scheduler architectures from the paper's taxonomy
(section 3, Table 1):

* monolithic single-path and multi-path (:mod:`repro.schedulers.monolithic`),
* statically partitioned (:mod:`repro.schedulers.partitioned`),
* two-level offer-based, modeled on Mesos (:mod:`repro.schedulers.mesos`).

The shared-state (Omega) architecture lives in :mod:`repro.core`.
"""

from repro.schedulers.base import (
    DEFAULT_ATTEMPT_LIMIT,
    DEFAULT_T_JOB,
    DEFAULT_T_TASK,
    DecisionTimeModel,
    QueueScheduler,
)
from repro.schedulers.monolithic import MonolithicScheduler
from repro.schedulers.partitioned import StaticPartition

__all__ = [
    "DecisionTimeModel",
    "QueueScheduler",
    "MonolithicScheduler",
    "StaticPartition",
    "DEFAULT_T_JOB",
    "DEFAULT_T_TASK",
    "DEFAULT_ATTEMPT_LIMIT",
]
