"""Statically partitioned scheduling (paper section 3.2, Table 1 row 2).

The cell is split into fixed sub-cells, one per workload type, each with
its own independent monolithic scheduler: "complete control over a set
of resources ... typically deployed onto dedicated, statically-
partitioned clusters of machines". There is no interference by
construction; the cost is fragmentation — a full batch partition cannot
borrow the service partition's idle machines.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import Cell
from repro.core.cellstate import CellState
from repro.metrics import MetricsCollector
from repro.obs import recorder as _obs
from repro.schedulers.base import DecisionTimeModel
from repro.schedulers.monolithic import MonolithicScheduler
from repro.sim import Simulator
from repro.workload.job import Job, JobType


class StaticPartition:
    """Two monolithic schedulers over disjoint fixed partitions.

    ``batch_share`` is the fraction of machines dedicated to the batch
    partition; the rest serve the service workload.
    """

    def __init__(
        self,
        sim: Simulator,
        metrics: MetricsCollector,
        cell: Cell,
        rng_batch: np.random.Generator,
        rng_service: np.random.Generator,
        batch_model: DecisionTimeModel,
        service_model: DecisionTimeModel,
        batch_share: float = 0.5,
        attempt_limit: int = 1000,
    ) -> None:
        if not 0.0 < batch_share < 1.0:
            raise ValueError(f"batch_share must be in (0, 1), got {batch_share}")
        split = max(1, min(len(cell) - 1, round(len(cell) * batch_share)))
        self.batch_cell = cell.subcell(range(split), name=f"{cell.name}/batch")
        self.service_cell = cell.subcell(
            range(split, len(cell)), name=f"{cell.name}/service"
        )
        self.batch_state = CellState(self.batch_cell)
        self.service_state = CellState(self.service_cell)
        self.batch_scheduler = MonolithicScheduler.single_path(
            sim,
            metrics,
            self.batch_state,
            rng_batch,
            batch_model,
            name="partition-batch",
            attempt_limit=attempt_limit,
        )
        self.service_scheduler = MonolithicScheduler.single_path(
            sim,
            metrics,
            self.service_state,
            rng_service,
            service_model,
            name="partition-service",
            attempt_limit=attempt_limit,
        )

    def submit(self, job: Job) -> None:
        """Route a job to its type's dedicated partition."""
        target = (
            self.batch_scheduler
            if job.job_type is JobType.BATCH
            else self.service_scheduler
        )
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "partition.route",
                t=target.sim.now,
                sched=target.name,
                job=job.job_id,
                job_type=job.job_type.value,
            )
        target.submit(job)

    @property
    def states(self) -> tuple[CellState, CellState]:
        return (self.batch_state, self.service_state)
