"""Dominant Resource Fairness (Ghodsi et al., NSDI 2011).

Mesos's central allocator "attempts to achieve dominant resource
fairness (DRF) by choosing the order and the sizes of its offers"
(paper section 3.3). With the simple allocator modeled here, only the
*order* is DRF-driven: the next offer goes to the framework furthest
below its dominant share.
"""

from __future__ import annotations

from typing import Mapping, Sequence, TypeVar

FrameworkT = TypeVar("FrameworkT")


def dominant_share(
    allocated_cpu: float,
    allocated_mem: float,
    total_cpu: float,
    total_mem: float,
) -> float:
    """A framework's dominant share: its largest per-resource fraction."""
    if total_cpu <= 0 or total_mem <= 0:
        raise ValueError("cluster totals must be positive")
    return max(allocated_cpu / total_cpu, allocated_mem / total_mem)


def pick_next_framework(
    candidates: Sequence[FrameworkT],
    shares: Mapping[FrameworkT, float],
) -> FrameworkT:
    """The candidate with the smallest dominant share (ties: first listed).

    "they may be re-offered again if the framework is the one furthest
    below its fair share" (paper section 4.2).
    """
    if not candidates:
        raise ValueError("no candidate frameworks")
    best = candidates[0]
    best_share = shares.get(best, 0.0)
    for framework in candidates[1:]:
        share = shares.get(framework, 0.0)
        if share < best_share:
            best = framework
            best_share = share
    return best
