"""Two-level, offer-based scheduling modeled on Mesos (paper sections
3.3 and 4.2).

A central :class:`allocator <repro.schedulers.mesos.allocator.MesosAllocator>`
owns the cell and hands out *offers* of currently-available resources to
:class:`framework <repro.schedulers.mesos.framework.MesosFramework>`
schedulers, one at a time, ordered by Dominant Resource Fairness. While
a framework holds an offer, those resources are effectively locked —
the pessimistic concurrency whose interaction with long service
decision times produces the pathology of Figure 7.
"""

from repro.schedulers.mesos.allocator import MesosAllocator, Offer, reset_offer_ids
from repro.schedulers.mesos.drf import dominant_share, pick_next_framework
from repro.schedulers.mesos.framework import MesosFramework

__all__ = [
    "MesosAllocator",
    "MesosFramework",
    "Offer",
    "dominant_share",
    "pick_next_framework",
    "reset_offer_ids",
]
