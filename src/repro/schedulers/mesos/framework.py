"""A Mesos framework scheduler (one per workload type in section 4.2).

The framework only sees the resources it has been offered — "it does not
have access to a view of the overall cluster state — just the resources
it has been offered" — and holds the offer for its whole decision time.
Placement within the offer is incremental; tasks that do not fit retry
on a later offer, and a job is abandoned after 1,000 attempts.
"""

from __future__ import annotations

import numpy as np

from repro.core.placement import randomized_first_fit
from repro.metrics import MetricsCollector
from repro.obs import recorder as _obs
from repro.schedulers.base import DecisionTimeModel, QueueScheduler
from repro.schedulers.mesos.allocator import MesosAllocator, Offer
from repro.sim import Simulator
from repro.workload.job import Job


class MesosFramework(QueueScheduler):
    """An offer-driven scheduler framework."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        metrics: MetricsCollector,
        allocator: MesosAllocator,
        rng: np.random.Generator,
        model: DecisionTimeModel,
        attempt_limit: int = 1000,
    ) -> None:
        super().__init__(name, sim, metrics, attempt_limit)
        self.allocator = allocator
        self._rng = rng
        self._model = model
        #: The offer held by the in-flight attempt (returned to the
        #: allocator if the framework crashes mid-think).
        self._inflight_offer: Offer | None = None
        allocator.register(self)

    # ------------------------------------------------------------------
    # Offer-driven service loop (replaces the queue-driven one)
    # ------------------------------------------------------------------
    def wants_offers(self) -> bool:
        """Whether the allocator should send this framework an offer."""
        return bool(self._queue) and not self._busy and not self._down

    def _maybe_start(self) -> None:
        # Frameworks cannot start thinking on their own: they wait for
        # an offer. Signal the allocator instead.
        if self.wants_offers():
            self.allocator.request_offers(self)

    def receive_offer(self, offer: Offer) -> None:
        """Hold the offer for one job's full decision time, then place."""
        if self._busy:  # pragma: no cover - allocator checks wants_offers()
            raise RuntimeError(f"framework {self.name} offered while busy")
        if not self._queue or self._down:
            rec = _obs.RECORDER
            if rec.enabled:
                rec.event(
                    "mesos.offer_declined",
                    t=self.sim.now,
                    sched=self.name,
                    offer=offer.offer_id,
                    reason="crashed" if self._down else "no_pending_work",
                )
            self.allocator.return_offer(offer)
            return
        job = self._queue.popleft()
        if job.first_attempt_time is None:
            job.mark_first_attempt(self.sim.now)
            self.metrics.record_first_attempt(self.name, job)
        self._busy = True
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "sched.think_start",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts + 1,
                queue_depth=len(self._queue),
                offer=offer.offer_id,
            )
        think_time = self.decision_time(job)
        drop = False
        if self.chaos is not None:
            delay, drop = self.chaos.commit_fault(self, job)
            think_time += delay
        self._inflight_offer = offer
        self._inflight_info = (job, self.sim.now, False)
        self._inflight = self.sim.after(
            think_time, self._offer_complete, job, offer, self.sim.now, drop
        )

    def _offer_complete(
        self, job: Job, offer: Offer, busy_start: float, drop: bool = False
    ) -> None:
        self._inflight = None
        self._inflight_info = None
        self._inflight_offer = None
        self.metrics.record_busy(self.name, busy_start, self.sim.now)
        self._busy = False
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "sched.busy",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts + 1,
                t0=busy_start,
                conflict_retry=False,
            )
        if drop:
            # The launch message was lost in flight: nothing was placed,
            # the offer goes back, and the job waits for a later offer.
            # Pessimistic concurrency means there is no conflict retry.
            self.metrics.record_commit_dropped(self.name)
            if rec.enabled:
                rec.event(
                    "fault.commit_drop",
                    t=self.sim.now,
                    sched=self.name,
                    job=job.job_id,
                    attempt=job.attempts + 1,
                )
            self.allocator.return_offer(offer)
            self._resolve_attempt(job, had_conflict=False)
            return
        claims = randomized_first_fit(
            offer.free_cpu,
            offer.free_mem,
            job.cpu_per_task,
            job.mem_per_task,
            job.unplaced_tasks,
            self._rng,
        )
        if rec.enabled:
            placed = sum(claim.count for claim in claims)
            rec.event(
                "mesos.offer_accepted" if claims else "mesos.offer_declined",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts + 1,
                offer=offer.offer_id,
                placed=placed,
            )
        if claims:
            self.allocator.launch(self, claims, job.duration)
            job.unplaced_tasks -= sum(claim.count for claim in claims)
        # "Resources not used at the end of scheduling a job are
        # returned to the allocator."
        self.allocator.return_offer(offer)
        # Jobs whose remaining tasks found no room wait for a future
        # offer at the back of the queue; pessimistic concurrency means
        # there are never conflicts to retry at the front.
        self._resolve_attempt(job, had_conflict=False)

    # ------------------------------------------------------------------
    # QueueScheduler hooks
    # ------------------------------------------------------------------
    def _abort_attempt(self, job: Job) -> None:
        """Crash cleanup: the held offer goes back to the allocator so
        its resources are not stranded while the framework is down."""
        offer = self._inflight_offer
        self._inflight_offer = None
        if offer is not None:
            self.allocator.return_offer(offer)

    def decision_time(self, job: Job) -> float:
        return self._model.duration(job.unplaced_tasks)

    def attempt(self, job: Job) -> None:  # pragma: no cover - offer-driven
        raise RuntimeError("MesosFramework schedules via offers, not attempt()")
