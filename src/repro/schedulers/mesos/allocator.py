"""The Mesos-style central resource allocator.

Models the "simple allocator" of Mesos 0.9 as described in paper
sections 3.3 and 4.2:

* resources are distributed as *offers* containing only currently
  available (unused, unoffered) resources;
* a given resource is only offered to one framework at a time —
  pessimistic concurrency: the framework "effectively holds a lock on
  that resource for the duration of a scheduling decision";
* by default the allocator "offers all available resources to a
  framework every time it makes an offer" (footnote 3);
* making an offer takes 1 ms ("The DRF algorithm used by Mesos's
  centralized resource allocator is quite fast, so we assume it takes
  1 ms to make a resource offer");
* the next offer goes to the framework furthest below its DRF dominant
  share.

The ``fair_share`` offer policy implements the extension discussed at
the end of section 4.2 ("Mesos could be extended to make only
fair-share offers") as an ablation.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis import sanitizer as _san
from repro.core.cellstate import CellState
from repro.core.transaction import Claim
from repro.obs import recorder as _obs
from repro.schedulers.mesos.drf import dominant_share, pick_next_framework
from repro.sim import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.schedulers.mesos.framework import MesosFramework

#: Time to construct and send one resource offer (paper section 4.2).
OFFER_TIME = 0.001

_offer_ids = itertools.count(1)


def reset_offer_ids() -> None:
    """Reset the global offer-id counter (run isolation helper).

    Offer ids are trace-visible, so back-to-back runs in one process
    (the determinism gate's double-run mode) must each start from 1 —
    the same discipline as :func:`repro.workload.job.reset_job_ids`.
    """
    global _offer_ids
    _offer_ids = itertools.count(1)


class Offer:
    """A pessimistically-locked bundle of per-machine resources."""

    __slots__ = ("offer_id", "free_cpu", "free_mem", "returned")

    def __init__(self, free_cpu: np.ndarray, free_mem: np.ndarray) -> None:
        self.offer_id = next(_offer_ids)
        self.free_cpu = free_cpu
        self.free_mem = free_mem
        self.returned = False

    @property
    def total_cpu(self) -> float:
        return float(self.free_cpu.sum())

    @property
    def total_mem(self) -> float:
        return float(self.free_mem.sum())


class MesosAllocator:
    """Central two-level resource manager (one per cell)."""

    def __init__(
        self,
        sim: Simulator,
        state: CellState,
        offer_time: float = OFFER_TIME,
        offer_policy: str = "all",
    ) -> None:
        if offer_policy not in ("all", "fair_share"):
            raise ValueError(f"unknown offer policy: {offer_policy!r}")
        self.sim = sim
        self.state = state
        self.offer_time = offer_time
        self.offer_policy = offer_policy
        self.frameworks: list["MesosFramework"] = []
        self._allocated: dict["MesosFramework", list[float]] = {}
        # Resources currently promised inside outstanding offers.
        self._offered_cpu = np.zeros(state.num_machines)
        self._offered_mem = np.zeros(state.num_machines)
        self._cycle_scheduled = False
        self.offers_made = 0

    # ------------------------------------------------------------------
    # Registration and accounting
    # ------------------------------------------------------------------
    def register(self, framework: "MesosFramework") -> None:
        if framework in self._allocated:
            raise ValueError(f"framework {framework.name} already registered")
        self.frameworks.append(framework)
        self._allocated[framework] = [0.0, 0.0]

    def allocated(self, framework: "MesosFramework") -> tuple[float, float]:
        cpu, mem = self._allocated[framework]
        return cpu, mem

    def _dominant_shares(self) -> dict["MesosFramework", float]:
        cell = self.state.cell
        return {
            framework: dominant_share(cpu, mem, cell.total_cpu, cell.total_mem)
            for framework, (cpu, mem) in sorted(
                self._allocated.items(), key=lambda entry: entry[0].name
            )
        }

    # ------------------------------------------------------------------
    # Offer cycle
    # ------------------------------------------------------------------
    def request_offers(self, framework: "MesosFramework") -> None:
        """A framework signals that it has pending work."""
        self._kick()

    def _kick(self) -> None:
        if self._cycle_scheduled:
            return
        if not any(f.wants_offers() for f in self.frameworks):
            return
        self._cycle_scheduled = True
        self.sim.after(self.offer_time, self._make_offer)

    def _available(self) -> tuple[np.ndarray, np.ndarray]:
        available_cpu = np.maximum(self.state.free_cpu - self._offered_cpu, 0.0)
        available_mem = np.maximum(self.state.free_mem - self._offered_mem, 0.0)
        return available_cpu, available_mem

    def _fair_share_scale(
        self, framework: "MesosFramework", available_cpu: np.ndarray, available_mem: np.ndarray
    ) -> float:
        """Shrink factor so the offer tops the framework up to 1/n share."""
        cell = self.state.cell
        n = len(self.frameworks)
        cpu_alloc, mem_alloc = self._allocated[framework]
        headroom_cpu = max(cell.total_cpu / n - cpu_alloc, 0.0)
        headroom_mem = max(cell.total_mem / n - mem_alloc, 0.0)
        total_cpu = float(available_cpu.sum())
        total_mem = float(available_mem.sum())
        scale = 1.0
        if total_cpu > 0:
            scale = min(scale, headroom_cpu / total_cpu)
        if total_mem > 0:
            scale = min(scale, headroom_mem / total_mem)
        return scale

    def _make_offer(self) -> None:
        self._cycle_scheduled = False
        candidates = [f for f in self.frameworks if f.wants_offers()]
        if not candidates:
            return
        available_cpu, available_mem = self._available()
        if available_cpu.sum() <= 0.0 and available_mem.sum() <= 0.0:
            # Nothing to offer; a task completion will kick us again.
            return
        framework = pick_next_framework(candidates, self._dominant_shares())
        if self.offer_policy == "fair_share":
            scale = self._fair_share_scale(framework, available_cpu, available_mem)
            if scale <= 0.0:
                # This framework is at fair share; try the others next kick.
                others = [f for f in candidates if f is not framework]
                if others:
                    framework = pick_next_framework(others, self._dominant_shares())
                    scale = self._fair_share_scale(
                        framework, available_cpu, available_mem
                    )
                if scale <= 0.0:
                    return
            available_cpu = available_cpu * scale
            available_mem = available_mem * scale
        offer = Offer(available_cpu.copy(), available_mem.copy())
        self._offered_cpu += offer.free_cpu
        self._offered_mem += offer.free_mem
        self.offers_made += 1
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "mesos.offer_issued",
                t=self.sim.now,
                framework=framework.name,
                offer=offer.offer_id,
                cpu=offer.total_cpu,
                mem=offer.total_mem,
            )
        framework.receive_offer(offer)
        # More resources may remain (fair-share policy) or other
        # frameworks may be waiting; keep the cycle going.
        self._kick()

    def return_offer(self, offer: Offer) -> None:
        """A framework is done with an offer (used or not)."""
        if offer.returned:
            raise ValueError(f"offer {offer.offer_id} returned twice")
        offer.returned = True
        self._offered_cpu -= offer.free_cpu
        self._offered_mem -= offer.free_mem
        np.maximum(self._offered_cpu, 0.0, out=self._offered_cpu)
        np.maximum(self._offered_mem, 0.0, out=self._offered_mem)
        self._kick()

    # ------------------------------------------------------------------
    # Launch and completion
    # ------------------------------------------------------------------
    def launch(
        self,
        framework: "MesosFramework",
        claims: list[Claim],
        duration: float,
    ) -> None:
        """Commit a framework's placements and schedule their completion.

        Claims come from within an offer the framework holds, so they
        always fit: pessimistic concurrency means no conflicts by
        construction.
        """
        totals = self._allocated[framework]
        with _san.master_scope("mesos-launch"):
            # One claim per machine within an offer, so the batch apply
            # is order-equivalent to the old claim-by-claim loop.
            self.state.claim_batch(claims)
        for claim in claims:
            totals[0] += claim.cpu * claim.count
            totals[1] += claim.mem * claim.count
            self.sim.after(duration, self._task_end, framework, claim)

    def _task_end(self, framework: "MesosFramework", claim: Claim) -> None:
        with _san.master_scope("task-end"):
            self.state.release(claim.machine, claim.cpu, claim.mem, claim.count)
        totals = self._allocated[framework]
        totals[0] -= claim.cpu * claim.count
        totals[1] -= claim.mem * claim.count
        self._kick()
