"""Monolithic schedulers (paper sections 3.1 and 4.1).

One scheduler instance processes *every* job serially against the
authoritative cell state — there is no concurrency, hence no conflicts,
but a slow decision blocks everything behind it (head-of-line blocking).

* **single-path**: the same decision time for batch and service jobs,
  "to reflect the need to run much of the same code for every job type".
* **multi-path**: a fast code path for batch jobs and a slow one for
  service jobs — "it still schedules only one job at a time".

Both variants are this one class; the difference is whether the per-type
decision-time models are equal.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import sanitizer as _san
from repro.core.cellstate import CellState
from repro.core.placement import randomized_first_fit
from repro.metrics import MetricsCollector
from repro.obs import recorder as _obs
from repro.schedulers.base import DecisionTimeModel, QueueScheduler
from repro.sim import Simulator
from repro.workload.job import Job, JobType


class MonolithicScheduler(QueueScheduler):
    """The paper's baseline: a single serial scheduler over the whole cell."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        metrics: MetricsCollector,
        state: CellState,
        rng: np.random.Generator,
        decision_times: dict[JobType, DecisionTimeModel],
        attempt_limit: int = 1000,
    ) -> None:
        super().__init__(name, sim, metrics, attempt_limit)
        missing = [t for t in JobType if t not in decision_times]
        if missing:
            raise ValueError(f"decision_times missing job types: {missing}")
        self.state = state
        self._rng = rng
        self._decision_times = dict(decision_times)

    @classmethod
    def single_path(
        cls,
        sim: Simulator,
        metrics: MetricsCollector,
        state: CellState,
        rng: np.random.Generator,
        model: DecisionTimeModel,
        name: str = "monolithic",
        attempt_limit: int = 1000,
    ) -> "MonolithicScheduler":
        """One decision-time model for all job types (Figure 5a/6a)."""
        return cls(
            name,
            sim,
            metrics,
            state,
            rng,
            {job_type: model for job_type in JobType},
            attempt_limit=attempt_limit,
        )

    @classmethod
    def multi_path(
        cls,
        sim: Simulator,
        metrics: MetricsCollector,
        state: CellState,
        rng: np.random.Generator,
        batch_model: DecisionTimeModel,
        service_model: DecisionTimeModel,
        name: str = "monolithic-multipath",
        attempt_limit: int = 1000,
    ) -> "MonolithicScheduler":
        """A fast path for batch, a slow path for service (Figure 5b/6b)."""
        return cls(
            name,
            sim,
            metrics,
            state,
            rng,
            {JobType.BATCH: batch_model, JobType.SERVICE: service_model},
            attempt_limit=attempt_limit,
        )

    # ------------------------------------------------------------------
    def decision_time(self, job: Job) -> float:
        return self._decision_times[job.job_type].duration(job.unplaced_tasks)

    def attempt(self, job: Job) -> None:
        """Place directly against the authoritative state.

        The monolithic scheduler is the only writer, so every planned
        claim fits by construction and there are never conflicts.
        """
        claims = randomized_first_fit(
            self.state.free_cpu,
            self.state.free_mem,
            job.cpu_per_task,
            job.mem_per_task,
            job.unplaced_tasks,
            self._rng,
        )
        with _san.master_scope("monolithic-place"):
            self.state.claim_batch(claims)
        placed = sum(claim.count for claim in claims)
        job.unplaced_tasks -= placed
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "sched.placed",
                t=self.sim.now,
                sched=self.name,
                job=job.job_id,
                attempt=job.attempts + 1,
                placed=placed,
                remaining=job.unplaced_tasks,
            )
        self._start_tasks(self.state, job, claims)
        self._resolve_attempt(job, had_conflict=False)
