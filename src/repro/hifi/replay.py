"""Trace-driven high-fidelity Omega simulation (paper section 5).

Only the Omega shared-state architecture is supported, like the paper's
high-fidelity simulator ("at the price of only supporting the Omega
architecture"). Placement obeys constraints and uses the deterministic
scoring algorithm, and — also like the paper — the finer placement and
fullness behaviour produces noticeably more interference than the
lightweight simulator.

Simplifications carried over from the paper's own simulator: requested
sizes are used instead of actual usage, allocations are fixed at their
initially-requested sizes, and preemption is disabled. Machine failures
— which the paper also skipped — are *optionally* modeled here as an
extension (``machine_mtbf``; see :mod:`repro.hifi.failures`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cellstate import CellState
from repro.core.fill import populate
from repro.core.multi import SchedulerPool
from repro.core.preemption import AllocationLedger
from repro.core.scheduler import OmegaScheduler
from repro.core.transaction import CommitMode, ConflictMode
from repro.hifi.constraints import AttributeIndex
from repro.hifi.failures import MachineFailureInjector
from repro.hifi.placement import ScoringPlacer
from repro.hifi.trace import Trace, TraceJob
from repro.metrics import MetricsCollector
from repro.metrics.results import RunSummary
from repro.obs import recorder as _obs
from repro.obs.registry import publish_sim_stats
from repro.schedulers.base import DecisionTimeModel
from repro.sim import RandomStreams, Simulator
from repro.workload.job import Job, JobType, reset_job_ids

DAY = 86400.0


@dataclass
class HighFidelityConfig:
    """Parameters of one high-fidelity replay."""

    trace: Trace
    seed: int = 0
    batch_model: DecisionTimeModel = field(default_factory=DecisionTimeModel)
    service_model: DecisionTimeModel = field(default_factory=DecisionTimeModel)
    num_batch_schedulers: int = 1
    conflict_mode: ConflictMode = ConflictMode.FINE
    commit_mode: CommitMode = CommitMode.INCREMENTAL
    attempt_limit: int = 1000
    metrics_period: float | None = None
    horizon: float | None = None  # default: the trace's horizon
    #: Mean time between failures per machine (seconds); None disables
    #: failure injection. An extension beyond the paper, which skipped
    #: machine failures; see :mod:`repro.hifi.failures`.
    machine_mtbf: float | None = None
    repair_time: float = 1800.0

    def __post_init__(self) -> None:
        if self.num_batch_schedulers < 1:
            raise ValueError("need at least one batch scheduler")

    @property
    def effective_horizon(self) -> float:
        return self.horizon if self.horizon is not None else self.trace.horizon

    @property
    def period(self) -> float:
        if self.metrics_period is not None:
            return self.metrics_period
        return min(DAY, self.effective_horizon / 4.0)


@dataclass
class HighFidelityResult(RunSummary):
    """Metrics of one high-fidelity replay."""

    config: HighFidelityConfig | None = None


class HighFidelitySimulation:
    """Builds and runs one trace replay."""

    def __init__(self, config: HighFidelityConfig) -> None:
        self.config = config
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.metrics = MetricsCollector(period=config.period)
        self.cell = config.trace.cell()
        self.state = CellState(self.cell)
        self.placer = ScoringPlacer(self.cell, AttributeIndex(self.cell))
        self._built = False

    def build(self) -> "HighFidelitySimulation":
        if self._built:
            raise RuntimeError("simulation already built")
        self._built = True
        reset_job_ids()
        config = self.config
        self.ledger = None
        self.failures = None
        if config.machine_mtbf is not None:
            self.ledger = AllocationLedger(self.state, self.sim)
            self.failures = MachineFailureInjector(
                self.sim,
                self.state,
                self.ledger,
                self.streams.stream("machine-failures"),
                mtbf=config.machine_mtbf,
                repair_time=config.repair_time,
            )
        batch_schedulers = [
            OmegaScheduler(
                f"hifi-batch-{i}" if config.num_batch_schedulers > 1 else "hifi-batch",
                self.sim,
                self.metrics,
                self.state,
                self.streams.stream(f"placement.hifi-batch-{i}"),
                config.batch_model,
                conflict_mode=config.conflict_mode,
                commit_mode=config.commit_mode,
                placement=self.placer,
                attempt_limit=config.attempt_limit,
                ledger=self.ledger,
            )
            for i in range(config.num_batch_schedulers)
        ]
        self.pool = SchedulerPool(batch_schedulers)
        self.service = OmegaScheduler(
            "hifi-service",
            self.sim,
            self.metrics,
            self.state,
            self.streams.stream("placement.hifi-service"),
            config.service_model,
            conflict_mode=config.conflict_mode,
            commit_mode=config.commit_mode,
            placement=self.placer,
            attempt_limit=config.attempt_limit,
            ledger=self.ledger,
        )
        self.batch_scheduler_names = self.pool.names
        self.service_scheduler_names = [self.service.name]

        horizon = config.effective_horizon
        populate(
            self.state,
            config.trace.initial_tasks,
            self.streams.stream("initial-fill"),
            self.sim,
            horizon,
        )
        for trace_job in config.trace.jobs:
            if trace_job.submit_time > horizon:
                break
            self.sim.at(trace_job.submit_time, self._submit_trace_job, trace_job)
        if self.failures is not None:
            self.failures.start(horizon)
        return self

    def _submit_trace_job(self, trace_job: TraceJob) -> None:
        job = Job(
            job_type=trace_job.job_type,
            submit_time=self.sim.now,
            num_tasks=trace_job.num_tasks,
            cpu_per_task=trace_job.cpu_per_task,
            mem_per_task=trace_job.mem_per_task,
            duration=trace_job.duration,
            constraints=trace_job.constraints,
        )
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "hifi.job_submitted",
                t=self.sim.now,
                job=job.job_id,
                job_type=job.job_type.value,
                tasks=job.num_tasks,
                constrained=bool(job.constraints),
            )
        if job.job_type is JobType.BATCH:
            self.pool.submit(job)
        else:
            self.service.submit(job)

    def run(self) -> HighFidelityResult:
        if not self._built:
            self.build()
        horizon = self.config.effective_horizon
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "run.start",
                t=self.sim.now,
                architecture="hifi-omega",
                horizon=horizon,
                seed=self.config.seed,
            )
        self.sim.run(until=horizon)
        stats = self.sim.stats()
        publish_sim_stats(stats)
        return HighFidelityResult(
            metrics=self.metrics,
            horizon=horizon,
            batch_scheduler_names=self.batch_scheduler_names,
            service_scheduler_names=self.service_scheduler_names,
            jobs_submitted=self.metrics.jobs_submitted,
            jobs_scheduled=self.metrics.jobs_scheduled_total,
            jobs_abandoned=self.metrics.jobs_abandoned_total,
            final_cpu_utilization=self.state.cpu_utilization,
            events_processed=self.sim.events_processed,
            sim_stats=stats,
            config=self.config,
        )


def run_hifi(config: HighFidelityConfig) -> HighFidelityResult:
    """Build and run one high-fidelity replay."""
    return HighFidelitySimulation(config).run()
