"""Workload-execution traces: format, IO and a deterministic synthesizer.

The paper's high-fidelity simulator "can be given initial cell
descriptions and detailed workload traces obtained from live production
cells" (section 5). Those traces are proprietary; this module defines
an equivalent trace format (machines + standing tasks + timed job
submissions with constraints), a JSON-lines reader/writer so real
traces could be dropped in, and :func:`synthesize_trace`, which builds
a deterministic synthetic trace from a cluster preset (DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster import Cell, Machine
from repro.hifi.constraints import Constraint, ConstraintOp
from repro.sim import RandomStreams
from repro.workload.clusters import ClusterPreset
from repro.workload.generator import InitialFill, StandingTask
from repro.workload.job import JobType

#: Machine platforms for synthetic cells: (weight, cpu, mem, attributes).
#: Mirrors the mixed machine classes of Google cells described in the
#: public trace analyses the paper cites (Reiss et al.).
DEFAULT_PLATFORMS = (
    (0.60, 4.0, 16.0, {"arch": "x86", "kernel": "3.2", "tier": "standard"}),
    (0.25, 4.0, 32.0, {"arch": "x86", "kernel": "3.8", "tier": "highmem"}),
    (0.10, 8.0, 32.0, {"arch": "x86", "kernel": "3.8", "tier": "standard"}),
    (0.05, 4.0, 16.0, {"arch": "arm", "kernel": "3.8", "tier": "standard"}),
)

#: Fractions of jobs carrying at least one placement constraint; service
#: jobs are pickier (they must land on particular platforms).
BATCH_PICKY_FRACTION = 0.05
SERVICE_PICKY_FRACTION = 0.25


@dataclass(frozen=True)
class TraceMachine:
    """One machine in the trace's cell description."""

    cpu: float
    mem: float
    rack: int
    attributes: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class TraceJob:
    """One job submission in the trace."""

    submit_time: float
    job_type: JobType
    num_tasks: int
    cpu_per_task: float
    mem_per_task: float
    duration: float
    constraints: tuple[Constraint, ...] = ()


@dataclass
class Trace:
    """A complete replayable workload trace."""

    name: str
    horizon: float
    machines: list[TraceMachine]
    initial_tasks: list[StandingTask]
    jobs: list[TraceJob]

    def cell(self) -> Cell:
        built = [
            Machine(
                index=i,
                cpu=m.cpu,
                mem=m.mem,
                rack=m.rack,
                attributes=m.attributes,
            )
            for i, m in enumerate(self.machines)
        ]
        return Cell(built, name=self.name)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)


# ----------------------------------------------------------------------
# Synthesis
# ----------------------------------------------------------------------
def _sample_constraints(
    rng: np.random.Generator, job_type: JobType
) -> tuple[Constraint, ...]:
    picky_fraction = (
        SERVICE_PICKY_FRACTION
        if job_type is JobType.SERVICE
        else BATCH_PICKY_FRACTION
    )
    if rng.random() >= picky_fraction:
        return ()
    choices = [
        Constraint("kernel", ConstraintOp.EQ, "3.8"),
        Constraint("kernel", ConstraintOp.EQ, "3.2"),
        Constraint("tier", ConstraintOp.EQ, "highmem"),
        Constraint("arch", ConstraintOp.EQ, "x86"),
        Constraint("arch", ConstraintOp.NEQ, "arm"),
        Constraint("tier", ConstraintOp.NEQ, "highmem"),
    ]
    count = 1 if rng.random() < 0.8 else 2
    picked = rng.choice(len(choices), size=count, replace=False)
    return tuple(choices[int(i)] for i in picked)


def synthesize_trace(
    preset: ClusterPreset,
    horizon: float,
    seed: int = 0,
    machines_per_rack: int = 40,
    platforms=DEFAULT_PLATFORMS,
) -> Trace:
    """Build a deterministic synthetic trace for a cluster preset.

    The cell is heterogeneous (platform mix above); the job stream uses
    the preset's simulator distributions plus sampled constraints. Mean
    machine size matches the preset's homogeneous machines closely, so
    lightweight and high-fidelity runs of the same preset see comparable
    aggregate capacity.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    streams = RandomStreams(seed).fork(f"trace:{preset.name}")
    machine_rng = streams.stream("machines")
    weights = np.array([p[0] for p in platforms], dtype=np.float64)
    weights = weights / weights.sum()
    platform_choice = machine_rng.choice(
        len(platforms), size=preset.num_machines, p=weights
    )
    machines = [
        TraceMachine(
            cpu=platforms[int(k)][1],
            mem=platforms[int(k)][2],
            rack=i // machines_per_rack,
            attributes=dict(platforms[int(k)][3]),
        )
        for i, k in enumerate(platform_choice)
    ]

    initial_tasks = InitialFill(preset).generate(streams.stream("fill"))

    job_rng = streams.stream("jobs")
    jobs: list[TraceJob] = []
    for job_type, params in (
        (JobType.BATCH, preset.batch),
        (JobType.SERVICE, preset.service),
    ):
        now = 0.0
        while True:
            now += job_rng.exponential(1.0 / params.arrival_rate)
            if now > horizon:
                break
            jobs.append(
                TraceJob(
                    submit_time=now,
                    job_type=job_type,
                    num_tasks=int(params.tasks_per_job.sample(job_rng)),
                    cpu_per_task=params.cpu_per_task.sample(job_rng),
                    mem_per_task=params.mem_per_task.sample(job_rng),
                    duration=params.task_duration.sample(job_rng),
                    constraints=_sample_constraints(job_rng, job_type),
                )
            )
    jobs.sort(key=lambda job: job.submit_time)
    return Trace(
        name=f"trace-{preset.name}",
        horizon=horizon,
        machines=machines,
        initial_tasks=initial_tasks,
        jobs=jobs,
    )


# ----------------------------------------------------------------------
# JSON-lines IO
# ----------------------------------------------------------------------
def write_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace as JSON lines (header, machines, tasks, jobs)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "kind": "header",
            "name": trace.name,
            "horizon": trace.horizon,
        }
        handle.write(json.dumps(header) + "\n")
        for machine in trace.machines:
            record = {
                "kind": "machine",
                "cpu": machine.cpu,
                "mem": machine.mem,
                "rack": machine.rack,
                "attributes": dict(machine.attributes),
            }
            handle.write(json.dumps(record) + "\n")
        for task in trace.initial_tasks:
            record = {
                "kind": "initial_task",
                "cpu": task.cpu,
                "mem": task.mem,
                "duration": task.duration,
                "job_type": task.job_type.value,
            }
            handle.write(json.dumps(record) + "\n")
        for job in trace.jobs:
            record = {
                "kind": "job",
                "submit_time": job.submit_time,
                "job_type": job.job_type.value,
                "num_tasks": job.num_tasks,
                "cpu_per_task": job.cpu_per_task,
                "mem_per_task": job.mem_per_task,
                "duration": job.duration,
                "constraints": [c.to_tuple() for c in job.constraints],
            }
            handle.write(json.dumps(record) + "\n")


def read_trace(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace`."""
    path = Path(path)
    name = path.stem
    horizon = 0.0
    machines: list[TraceMachine] = []
    initial_tasks: list[StandingTask] = []
    jobs: list[TraceJob] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "header":
                name = record["name"]
                horizon = float(record["horizon"])
            elif kind == "machine":
                machines.append(
                    TraceMachine(
                        cpu=record["cpu"],
                        mem=record["mem"],
                        rack=record["rack"],
                        attributes=record.get("attributes", {}),
                    )
                )
            elif kind == "initial_task":
                initial_tasks.append(
                    StandingTask(
                        cpu=record["cpu"],
                        mem=record["mem"],
                        duration=record["duration"],
                        job_type=JobType(record["job_type"]),
                    )
                )
            elif kind == "job":
                jobs.append(
                    TraceJob(
                        submit_time=record["submit_time"],
                        job_type=JobType(record["job_type"]),
                        num_tasks=record["num_tasks"],
                        cpu_per_task=record["cpu_per_task"],
                        mem_per_task=record["mem_per_task"],
                        duration=record["duration"],
                        constraints=tuple(
                            Constraint.from_tuple(c)
                            for c in record.get("constraints", [])
                        ),
                    )
                )
            else:
                raise ValueError(f"{path}:{line_number}: unknown record kind {kind!r}")
    return Trace(
        name=name,
        horizon=horizon,
        machines=machines,
        initial_tasks=initial_tasks,
        jobs=jobs,
    )
