"""Constraint-aware scoring placement — the stand-in for the production
scheduling algorithm ("Sched. algorithm: Google algorithm", Table 2).

The real algorithm is proprietary; this one preserves the properties
the section 5 experiments exercise (DESIGN.md, "Substitutions"):

* **constraints are obeyed** — infeasible machines are filtered out, so
  picky jobs contend for small candidate sets;
* **placement is deterministic scoring, not randomized** — feasible
  machines are ranked by a best-fit score, so two schedulers thinking
  concurrently tend to pick the *same* machines. Together with
  constraints this is why the high-fidelity simulator experiences more
  interference than the lightweight one, exactly as the paper observes;
* **service tasks spread across failure domains** — a per-rack cap
  models the production scheduler's failure-tolerant placement
  (section 2.1's chance-constrained placement problem, simplified).
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster import Cell
from repro.core.cellstate import EPSILON, CellSnapshot
from repro.core.transaction import Claim
from repro.hifi.constraints import AttributeIndex
from repro.workload.job import Job, JobType

#: Service jobs spread across at least this many racks when possible.
MIN_SERVICE_RACKS = 3


class ScoringPlacer:
    """Best-fit scoring placement with failure-domain spreading.

    Instances are bound to a cell (for capacities, racks and the
    attribute index) and are callable with the
    :data:`repro.core.scheduler.PlacementFn` signature, so they plug
    directly into :class:`repro.core.scheduler.OmegaScheduler`.
    """

    def __init__(
        self,
        cell: Cell,
        attribute_index: AttributeIndex | None = None,
        headroom: float = 0.10,
    ) -> None:
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        self.cell = cell
        self.index = attribute_index or AttributeIndex(cell)
        self.headroom = headroom
        self._racks = cell.racks
        self._num_racks = int(cell.racks.max()) + 1 if len(cell) else 0
        self._headroom_cpu = cell.cpu_capacity * headroom
        self._headroom_mem = cell.mem_capacity * headroom

    # ------------------------------------------------------------------
    def __call__(
        self, snapshot: CellSnapshot, job: Job, rng: np.random.Generator
    ) -> list[Claim]:
        return self.place(snapshot, job, rng)

    def place(
        self, snapshot: CellSnapshot, job: Job, rng: np.random.Generator
    ) -> list[Claim]:
        """Plan claims for the job's unplaced tasks on the snapshot."""
        cpu = job.cpu_per_task
        mem = job.mem_per_task
        feasible = self.index.feasible_mask(job.constraints)
        fits = (
            feasible
            & (snapshot.free_cpu + EPSILON >= cpu)
            & (snapshot.free_mem + EPSILON >= mem)
        )
        candidates = np.flatnonzero(fits)
        if candidates.size == 0:
            return []

        # Best-fit score: prefer machines whose remaining free capacity
        # after one task is smallest (normalized by machine capacity),
        # i.e. pack tight, keep big machines open for big tasks. A small
        # per-scheduler jitter reorders near-equal machines: without it,
        # concurrent schedulers would pick byte-identical machine lists
        # and conflict on nearly every overlapping decision, which the
        # production algorithm's diversity (many score terms, per-job
        # state) avoids. The jitter scale (2.5 % of the normalized
        # score range) is small enough to preserve best-fit behaviour.
        leftover_cpu = (snapshot.free_cpu[candidates] - cpu) / self.cell.cpu_capacity[
            candidates
        ]
        leftover_mem = (snapshot.free_mem[candidates] - mem) / self.cell.mem_capacity[
            candidates
        ]
        scores = leftover_cpu + leftover_mem
        scores = scores + rng.uniform(0.0, 0.05, size=scores.shape)
        order = candidates[np.argsort(scores, kind="stable")]

        per_machine_cap, per_rack_cap = self._spreading_caps(job, order.size)
        rack_counts: dict[int, int] = {}
        claims: list[Claim] = []
        remaining = job.unplaced_tasks
        for machine in order:
            rack = int(self._racks[machine])
            rack_room = per_rack_cap - rack_counts.get(rack, 0)
            if rack_room <= 0:
                continue
            count = min(remaining, rack_room, per_machine_cap)
            # Leave per-machine headroom: the production scheduler does
            # not pack machines to the brim (system overhead, usage
            # variation), and the headroom absorbs small concurrent
            # claims so fine-grained commits forgive most overlaps.
            usable_cpu = snapshot.free_cpu[machine] - self._headroom_cpu[machine]
            usable_mem = snapshot.free_mem[machine] - self._headroom_mem[machine]
            if cpu > 0:
                count = min(count, int((usable_cpu + EPSILON) // cpu))
            if mem > 0:
                count = min(count, int((usable_mem + EPSILON) // mem))
            if count <= 0:
                continue
            claims.append(Claim(machine=int(machine), cpu=cpu, mem=mem, count=count))
            rack_counts[rack] = rack_counts.get(rack, 0) + count
            remaining -= count
            if remaining == 0:
                break
        return claims

    # ------------------------------------------------------------------
    def _spreading_caps(self, job: Job, num_candidates: int) -> tuple[int, int]:
        """Per-machine and per-rack task caps.

        Service jobs must survive correlated failures, so their tasks
        are spread over at least :data:`MIN_SERVICE_RACKS` racks and no
        machine concentration; batch jobs just pack.
        """
        if job.job_type is not JobType.SERVICE:
            return job.unplaced_tasks, job.unplaced_tasks
        tasks = job.unplaced_tasks
        racks_available = min(self._num_racks, max(1, num_candidates))
        target_racks = min(max(MIN_SERVICE_RACKS, 1), racks_available)
        per_rack = max(1, math.ceil(tasks / target_racks))
        per_machine = max(1, math.ceil(per_rack / 2))
        return per_machine, per_rack
