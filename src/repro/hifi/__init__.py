"""The high-fidelity simulator (paper section 5).

The paper's high-fidelity simulator "replays historic workload traces
from Google production clusters, and reuses much of the Google
production scheduler's code"; it "respects task placement constraints
[and] uses the same algorithms as the production version", supports
only the Omega architecture, and runs much slower than the lightweight
simulator (Table 2).

This package is the reproduction's analog:

* :mod:`repro.hifi.constraints` — machine attributes and placement
  constraints (obeyed here, ignored in the lightweight simulator);
* :mod:`repro.hifi.placement` — a deterministic, constraint-aware
  scoring placement algorithm standing in for the proprietary
  production algorithm (DESIGN.md, "Substitutions");
* :mod:`repro.hifi.trace` — a trace format with reader/writer and a
  deterministic synthesizer standing in for the production traces;
* :mod:`repro.hifi.replay` — trace-driven Omega simulation.
"""

from repro.hifi.constraints import AttributeIndex, Constraint, ConstraintOp
from repro.hifi.failures import MachineFailureInjector
from repro.hifi.placement import ScoringPlacer
from repro.hifi.replay import HighFidelityConfig, HighFidelityResult, run_hifi
from repro.hifi.trace import Trace, TraceJob, TraceMachine, read_trace, synthesize_trace, write_trace

__all__ = [
    "Constraint",
    "ConstraintOp",
    "AttributeIndex",
    "ScoringPlacer",
    "MachineFailureInjector",
    "Trace",
    "TraceJob",
    "TraceMachine",
    "synthesize_trace",
    "read_trace",
    "write_trace",
    "HighFidelityConfig",
    "HighFidelityResult",
    "run_hifi",
]
