"""Placement constraints over machine attributes.

Real Google workloads attach constraints to jobs ("respecting ...
per-job constraints", paper section 3.1, citing Sharma et al.'s
constraint characterization). The lightweight simulator ignores them;
the high-fidelity simulator obeys them (Table 2), and the paper notes
that constraints make "picky" jobs contend for few machines — one of
the two reasons the high-fidelity simulator sees more interference
(section 5, "the main difference").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.cluster import Cell


class ConstraintOp(enum.Enum):
    """Constraint operators (equality forms cover the common cases in
    the published constraint taxonomy)."""

    EQ = "=="
    NEQ = "!="


@dataclass(frozen=True)
class Constraint:
    """``attribute <op> value`` over machine attributes."""

    attribute: str
    op: ConstraintOp
    value: str

    def satisfied_by(self, attributes) -> bool:
        """Whether a machine attribute mapping satisfies this constraint."""
        matches = attributes.get(self.attribute) == self.value
        return matches if self.op is ConstraintOp.EQ else not matches

    def to_tuple(self) -> tuple[str, str, str]:
        return (self.attribute, self.op.value, self.value)

    @classmethod
    def from_tuple(cls, data: tuple[str, str, str] | list) -> "Constraint":
        attribute, op, value = data
        return cls(attribute=attribute, op=ConstraintOp(op), value=value)


class AttributeIndex:
    """Per-cell precomputed boolean masks for fast feasibility checks.

    ``feasible_mask(constraints)`` is a vector over machines; placement
    intersects it with the resource-fit mask. Masks for each
    ``(attribute, value)`` pair are built once per cell, so evaluating a
    job's constraints is a few vectorized ANDs.
    """

    def __init__(self, cell: Cell) -> None:
        self.cell = cell
        self._masks: dict[tuple[str, str], np.ndarray] = {}
        values_seen: dict[str, set[str]] = {}
        for machine in cell:
            for attribute, value in sorted(machine.attributes.items()):
                values_seen.setdefault(attribute, set()).add(value)
        # Sort the (attribute, value) space so mask construction order —
        # and with it any downstream dict order — is hash-independent.
        for attribute, values in sorted(values_seen.items()):
            for value in sorted(values):
                mask = np.fromiter(
                    (m.attributes.get(attribute) == value for m in cell),
                    dtype=bool,
                    count=len(cell),
                )
                mask.setflags(write=False)
                self._masks[(attribute, value)] = mask
        self._all_true = np.ones(len(cell), dtype=bool)
        self._all_true.setflags(write=False)

    def mask(self, attribute: str, value: str) -> np.ndarray:
        """Machines where ``attribute == value`` (all-False if unknown)."""
        known = self._masks.get((attribute, value))
        if known is not None:
            return known
        return np.zeros(len(self.cell), dtype=bool)

    def feasible_mask(self, constraints) -> np.ndarray:
        """Machines satisfying every constraint."""
        result = self._all_true
        for constraint in constraints:
            mask = self.mask(constraint.attribute, constraint.value)
            if constraint.op is ConstraintOp.NEQ:
                mask = ~mask
            result = result & mask
        return result
