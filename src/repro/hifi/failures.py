"""Machine-failure injection.

The paper's high-fidelity simulator "does not model machine failures
(as these only generate a small load on the scheduler)" — but failures
are why the workloads look the way they do: service jobs spread across
failure domains (section 2.1), and gang scheduling "is only rarely used
due to the expectation of machine failures, which disrupt jobs anyway"
(section 6 footnote).

This module implements what the paper skipped, as an extension: a
Poisson failure process over machines. A failing machine's tasks are
evicted through the shared allocation ledger (their owners reschedule
them, exactly like preemption victims) and its capacity is withheld
until a repair completes. The
``tests/hifi/test_failures.py::TestPaperClaim`` test verifies the
paper's justification — failures at realistic MTBFs add only a small
scheduler load.
"""

from __future__ import annotations

import numpy as np

from repro.core.cellstate import CellState
from repro.core.preemption import AllocationLedger
from repro.sim import Simulator


class MachineFailureInjector:
    """Poisson machine failures with repairs over shared cell state."""

    def __init__(
        self,
        sim: Simulator,
        state: CellState,
        ledger: AllocationLedger,
        rng: np.random.Generator,
        mtbf: float,
        repair_time: float = 1800.0,
    ) -> None:
        """``mtbf`` is the mean time between failures *per machine*
        (seconds); the cell-wide failure rate is ``machines / mtbf``.
        ``repair_time`` is how long a failed machine stays down.
        """
        if mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {mtbf}")
        if repair_time <= 0:
            raise ValueError(f"repair_time must be positive, got {repair_time}")
        self.sim = sim
        self.state = state
        self.ledger = ledger
        self.rng = rng
        self.mtbf = mtbf
        self.repair_time = repair_time
        self._down: dict[int, tuple[float, float]] = {}  # machine -> withheld cpu/mem
        self.failures = 0
        self.tasks_killed = 0
        self._horizon: float | None = None

    # ------------------------------------------------------------------
    @property
    def machines_down(self) -> int:
        return len(self._down)

    def is_down(self, machine: int) -> bool:
        return machine in self._down

    def start(self, horizon: float | None = None) -> None:
        """Begin injecting failures (first gap drawn immediately)."""
        self._horizon = horizon
        self._schedule_next()

    def _cell_rate(self) -> float:
        up_machines = self.state.num_machines - len(self._down)
        return max(up_machines, 1) / self.mtbf

    def _schedule_next(self) -> None:
        gap = self.rng.exponential(1.0 / self._cell_rate())
        when = self.sim.now + gap
        if self._horizon is None or when <= self._horizon:
            self.sim.at(when, self._fail_random_machine)

    # ------------------------------------------------------------------
    def _fail_random_machine(self) -> None:
        up = [m for m in range(self.state.num_machines) if m not in self._down]
        if up:
            self.fail(int(self.rng.choice(up)))
        self._schedule_next()

    def fail(self, machine: int) -> int:
        """Fail ``machine`` now: kill its tasks, withhold its capacity.

        Returns the number of tasks killed. Failing a machine that is
        already down is a no-op.
        """
        if machine in self._down:
            return 0
        self.failures += 1
        killed = self.ledger.evict_machine(machine)
        self.tasks_killed += killed
        # Withhold whatever is free now (everything, after the eviction,
        # except resources of unledgered allocations, which ride out the
        # failure as a modeling simplification).
        withheld_cpu = float(self.state.free_cpu[machine])
        withheld_mem = float(self.state.free_mem[machine])
        if withheld_cpu > 0 or withheld_mem > 0:
            self.state.claim(machine, withheld_cpu, withheld_mem, 1)
        self._down[machine] = (withheld_cpu, withheld_mem)
        self.sim.after(self.repair_time, self.repair, machine)
        return killed

    def repair(self, machine: int) -> None:
        """Bring a failed machine back (idempotent)."""
        withheld = self._down.pop(machine, None)
        if withheld is None:
            return
        withheld_cpu, withheld_mem = withheld
        if withheld_cpu > 0 or withheld_mem > 0:
            self.state.release(machine, withheld_cpu, withheld_mem, 1)
