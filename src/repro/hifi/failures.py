"""Machine-failure injection.

The paper's high-fidelity simulator "does not model machine failures
(as these only generate a small load on the scheduler)" — but failures
are why the workloads look the way they do: service jobs spread across
failure domains (section 2.1), and gang scheduling "is only rarely used
due to the expectation of machine failures, which disrupt jobs anyway"
(section 6 footnote).

This module implements what the paper skipped, as an extension. The
failure/repair mechanics live in the shared
:class:`repro.faults.processes.FailureRepairProcess` (one Poisson
implementation for both simulators); this injector binds it to the
high-fidelity stack's allocation ledger, so a failing machine's tasks
are evicted through the ledger (their owners reschedule them, exactly
like preemption victims) and its capacity is withheld until a repair
completes. The ``tests/hifi/test_failures.py::TestPaperClaim`` test
verifies the paper's justification — failures at realistic MTBFs add
only a small scheduler load.
"""

from __future__ import annotations

import numpy as np

from repro.core.cellstate import CellState
from repro.core.preemption import AllocationLedger
from repro.faults.processes import FailureRepairProcess
from repro.sim import Simulator


class MachineFailureInjector(FailureRepairProcess):
    """Poisson machine failures with repairs over shared cell state,
    evicting victims through the allocation ledger."""

    def __init__(
        self,
        sim: Simulator,
        state: CellState,
        ledger: AllocationLedger,
        rng: np.random.Generator,
        mtbf: float,
        repair_time: float = 1800.0,
    ) -> None:
        """``mtbf`` is the mean time between failures *per machine*
        (seconds); the cell-wide failure rate is ``machines / mtbf``.
        ``repair_time`` is how long a failed machine stays down.
        """
        super().__init__(
            sim,
            state,
            rng,
            mtbf=mtbf,
            repair_time=repair_time,
            evict=ledger.evict_machine,
        )
        self.ledger = ledger
