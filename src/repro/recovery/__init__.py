"""Durable, crash-safe experiment execution (``repro.recovery``).

The experiment harness produces every figure and table in this
reproduction, so a harness-level failure mode — a SIGKILL mid-sweep, a
crashed pool worker, a truncated JSON artifact — is as damaging as a
simulator bug. This package makes the harness itself survivable, in
three layers (see ``docs/RECOVERY.md`` for the formats and semantics):

* :mod:`repro.recovery.artifacts` — write-temp-then-rename artifact
  writes with embedded content hashes, and validating loaders that
  fail with one-line, actionable :class:`ArtifactError`\\ s instead of
  stack traces.
* :mod:`repro.recovery.manifest` / :mod:`repro.recovery.checkpoint` —
  run manifests (experiment, parameters, master seed, format/code
  versions) plus an append-then-fsync JSONL checkpoint log with
  per-record checksums. ``omega-sim <sweep> --checkpoint DIR --resume``
  skips already-completed sweep points; because every point is
  self-seeded (:func:`repro.perf.parallel.point_seed` and the per-point
  ``LightweightConfig.seed``), a resumed run's result table and
  stitched trace are identical to an uninterrupted run's.
* :mod:`repro.recovery.supervisor` / :mod:`repro.recovery.runner` — a
  supervised replacement for the bare ``Pool.map`` fan-out: per-point
  wall-clock timeouts, bounded retry with deterministic backoff,
  crashed-worker salvage (the point is requeued, completed results are
  kept), and graceful degradation to serial execution when the pool is
  unhealthy. Incidents surface as ``recovery.*`` trace events and
  metrics counters.

:mod:`repro.recovery.gate` extends the runtime determinism gate with a
kill-and-resume mode (``python -m repro.analysis.determinism
--kill-resume``): it SIGKILLs a checkpointed sweep mid-run, resumes it,
and asserts the final table and trace match an uninterrupted run.
"""

from repro.recovery.artifacts import (
    ArtifactError,
    atomic_write_text,
    content_hash,
    load_json_artifact,
    write_json_artifact,
)
from repro.recovery.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointStore,
    RecoveryError,
)
from repro.recovery.manifest import RunManifest
from repro.recovery.runner import (
    RecoveryContext,
    activate,
    active_context,
    execute_map,
)
from repro.recovery.supervisor import (
    DEFAULT_POLICY,
    PointFailure,
    SupervisorPolicy,
    supervised_map,
)

__all__ = [
    "ArtifactError",
    "RecoveryError",
    "PointFailure",
    "atomic_write_text",
    "content_hash",
    "load_json_artifact",
    "write_json_artifact",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "RunManifest",
    "RecoveryContext",
    "activate",
    "active_context",
    "execute_map",
    "DEFAULT_POLICY",
    "SupervisorPolicy",
    "supervised_map",
]
