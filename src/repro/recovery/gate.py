"""The kill-and-resume determinism gate.

End-to-end enforcement of the checkpoint/resume contract (``python -m
repro.analysis.determinism --kill-resume``): run a sweep three times
through the real ``omega-sim`` CLI —

1. **reference** — uninterrupted, ``--output`` + ``--trace``;
2. **victim** — same run with ``--checkpoint``, SIGKILLed from outside
   once a configurable number of points has hit the checkpoint log
   (the harshest crash: no handlers, no atexit, mid-whatever-it-was-
   doing);
3. **resumed** — ``--checkpoint DIR --resume``, which must skip the
   victim's completed points and finish the rest —

then assert that the resumed run's result table is *byte-identical* to
the reference's, and that its stitched JSONL trace matches record-for-
record once wall-clock fields (``wall_ms``) and ``recovery.*`` incident
records are set aside. Everything the three runs produced is left in
``artifacts_dir`` for post-mortems (CI uploads it on failure).

Subprocesses + wall-clock polling are intentional here: the gate's
entire point is surviving a real SIGKILL, which an in-process harness
cannot fake. ``repro/recovery/*`` is allowlisted for omega-lint DET002.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis.determinism import DeterminismReport, diff_traces
from repro.obs.export import read_jsonl

#: Default number of durably-logged points after which the victim dies.
DEFAULT_KILL_AFTER = 2

#: Wall-seconds to wait for each subprocess / for the kill threshold.
DEFAULT_TIMEOUT = 600.0


def _cli_command(
    experiment: str,
    seed: int,
    scale: float,
    hours: float,
    timeline_interval: float | None = None,
) -> list[str]:
    command = [
        sys.executable,
        "-m",
        "repro.experiments.cli",
        experiment,
        "--scale",
        str(scale),
        "--hours",
        str(hours),
        "--seed",
        str(seed),
    ]
    if timeline_interval is not None:
        command += ["--timeline-interval", str(timeline_interval)]
    return command


def _subprocess_env() -> dict[str, str]:
    """The gate's own import path, propagated to the CLI subprocesses."""
    import repro

    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_dir, env.get("PYTHONPATH")) if part
    )
    return env


def _count_log_records(log_path: Path) -> int:
    """Complete (newline-terminated) records currently in the point log."""
    try:
        return log_path.read_bytes().count(b"\n")
    except OSError:
        return 0


def _strip_recovery(records: list[dict]) -> list[dict]:
    """Drop ``recovery.*`` incident records before trace comparison.

    A healthy resume emits none, but a retried worker crash during the
    gate (e.g. an OOM-killed point that succeeded on attempt two) is a
    recovery *success*, not a determinism failure.
    """
    return [
        record
        for record in records
        if not str(record.get("name", "")).startswith("recovery.")
    ]


def run_kill_resume_gate(
    experiment: str = "fig8",
    seed: int = 0,
    scale: float = 0.05,
    hours: float = 0.3,
    artifacts_dir: str | Path = "kill-resume-artifacts",
    kill_after: int = DEFAULT_KILL_AFTER,
    timeout: float = DEFAULT_TIMEOUT,
    timeline_interval: float | None = None,
) -> DeterminismReport:
    """Run the reference/victim/resumed trio and diff the outcomes."""
    artifacts = Path(artifacts_dir)
    artifacts.mkdir(parents=True, exist_ok=True)
    checkpoint = artifacts / "checkpoint"
    ref_out, ref_trace = artifacts / "ref.json", artifacts / "ref.jsonl"
    vic_out, vic_trace = artifacts / "victim.json", artifacts / "victim.jsonl"
    res_out, res_trace = artifacts / "resumed.json", artifacts / "resumed.jsonl"
    base = _cli_command(experiment, seed, scale, hours, timeline_interval)
    env = _subprocess_env()
    divergences: list[str] = []

    def run(extra: list[str], label: str) -> None:
        result = subprocess.run(
            base + extra,
            env=env,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        (artifacts / f"{label}.log").write_text(result.stdout + result.stderr)
        if result.returncode != 0:
            raise RuntimeError(
                f"{label} run exited {result.returncode}; see "
                f"{artifacts / (label + '.log')}\n{result.stderr.strip()}"
            )

    # 1. The uninterrupted reference.
    run(["--output", str(ref_out), "--trace", str(ref_trace)], "reference")

    # 2. The victim: checkpointed, SIGKILLed once kill_after points are
    #    durably logged.
    victim = subprocess.Popen(
        base
        + [
            "--checkpoint",
            str(checkpoint),
            "--output",
            str(vic_out),
            "--trace",
            str(vic_trace),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    log_path = checkpoint / "points.jsonl"
    deadline = time.monotonic() + timeout
    killed = False
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            break
        if _count_log_records(log_path) >= kill_after:
            victim.send_signal(signal.SIGKILL)
            killed = True
            break
        time.sleep(0.05)
    victim.wait(timeout=timeout)
    if not killed:
        if victim.returncode == 0:
            divergences.append(
                f"victim completed all points before reaching the kill "
                f"threshold ({kill_after}); the gate did not exercise a "
                "mid-run crash — lower --kill-after or enlarge the sweep"
            )
        else:
            divergences.append(
                f"victim exited {victim.returncode} before the kill "
                "threshold was reached"
            )
    completed_at_kill = _count_log_records(log_path)

    # 3. Resume from the victim's checkpoint.
    if killed:
        run(
            [
                "--checkpoint",
                str(checkpoint),
                "--resume",
                "--output",
                str(res_out),
                "--trace",
                str(res_trace),
            ],
            "resumed",
        )

        # The result table must be byte-identical, atomically written,
        # hash and all.
        ref_bytes = ref_out.read_bytes()
        res_bytes = res_out.read_bytes()
        if ref_bytes != res_bytes:
            ref_doc = json.loads(ref_bytes)
            res_doc = json.loads(res_bytes)
            detail = (
                "rows differ"
                if ref_doc.get("rows") != res_doc.get("rows")
                else "envelopes differ"
            )
            divergences.append(
                f"resumed result table is not byte-identical to the "
                f"reference ({detail}): {ref_out} vs {res_out}"
            )
        if vic_out.exists():
            divergences.append(
                f"victim wrote a result table despite being killed "
                f"mid-run ({vic_out}); output writes are supposed to be "
                "atomic-at-the-end"
            )

    trace_ref = _strip_recovery(read_jsonl(str(ref_trace)))
    trace_res = (
        _strip_recovery(read_jsonl(str(res_trace)))
        if killed and res_trace.exists()
        else []
    )
    if killed:
        divergences.extend(diff_traces(trace_ref, trace_res))
    report = DeterminismReport(
        records_a=len(trace_ref),
        records_b=len(trace_res),
        divergences=divergences,
    )
    (artifacts / "report.txt").write_text(
        report.render()
        + f"\npoints durably checkpointed at kill: {completed_at_kill}\n"
    )
    return report
