"""Crash-safe checkpoint store: manifest + append-then-fsync point log.

Layout of a checkpoint directory::

    manifest.json   # RunManifest, atomic write, content-hashed
    points.jsonl    # one completed sweep point per line, append-only

Each log line is ``{"record": {...}, "sha256": "sha256:..."}`` where
the checksum covers the canonical JSON of ``record``. Appends are
flushed and ``fsync``'d before :meth:`CheckpointStore.append` returns,
so a record is either durably complete or (if the process died mid-
write) a recognizably partial *final* line. On resume that partial
tail is salvaged — truncated away with a warning — while a corrupt or
checksum-failing record anywhere *before* the tail is a hard
:class:`RecoveryError`: it means the log was damaged after the fact,
and resuming from it would silently corrupt the result table.

Record schema (written by :func:`repro.recovery.runner.execute_map`)::

    {"sweep": 0, "index": 3, "label": "...", "row": {...},
     "trace": [...] | null}

``sweep`` counts :func:`~repro.recovery.runner.execute_map` calls
within the run (a driver may run several sweeps), ``index`` is the
point's position within that sweep, and ``label`` is a deterministic
description of the point used to refuse resumes whose sweep structure
changed. ``trace`` holds the point's captured trace records when the
run is traced, so a resumed run can re-emit them and produce a
stitched trace identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, TextIO

from repro.recovery.artifacts import (
    ArtifactError,
    canonical_json,
    checksum_line,
    load_json_artifact,
    write_json_artifact,
)
from repro.recovery.manifest import CHECKPOINT_FORMAT_VERSION, RunManifest

__all__ = ["CHECKPOINT_FORMAT_VERSION", "CheckpointStore", "RecoveryError"]

MANIFEST_NAME = "manifest.json"
LOG_NAME = "points.jsonl"


class RecoveryError(ValueError):
    """A checkpoint cannot be created or resumed; one-line, exit 2."""


def _parse_log_line(line: str) -> dict[str, Any]:
    """Parse and checksum-verify one log line; raises ValueError."""
    entry = json.loads(line)
    if not isinstance(entry, dict) or "record" not in entry:
        raise ValueError("not a checkpoint entry object")
    record = entry["record"]
    expected = entry.get("sha256")
    actual = checksum_line(canonical_json(record))
    if expected != actual:
        raise ValueError(f"checksum mismatch (stored {expected}, computed {actual})")
    if not isinstance(record, dict) or "sweep" not in record or "index" not in record:
        raise ValueError("checkpoint record is missing sweep/index")
    return record


class CheckpointStore:
    """Manifest plus completed-point log for one checkpointed run."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.manifest: RunManifest | None = None
        #: (sweep, index) -> stored record for every durable point.
        self.completed: dict[tuple[int, int], dict[str, Any]] = {}
        #: Records appended by this process (new completions).
        self.appended = 0
        #: 1-based line number of a salvaged (truncated) tail, if any.
        self.salvaged_line: int | None = None
        self._handle: TextIO | None = None

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def log_path(self) -> Path:
        return self.directory / LOG_NAME

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def initialize(self, manifest: RunManifest) -> None:
        """Start a fresh checkpoint; refuses to overwrite an existing one."""
        if self.manifest_path.exists() or self.log_path.exists():
            raise RecoveryError(
                f"{self.directory}: already contains a checkpoint; pass "
                "--resume to continue it or point --checkpoint at a fresh "
                "directory"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        write_json_artifact(self.manifest_path, manifest.to_doc())
        self.manifest = manifest
        self._open_log()

    def resume(self, manifest: RunManifest) -> int:
        """Load an existing checkpoint for ``manifest``'s run.

        Returns the number of completed points recovered. Raises
        :class:`RecoveryError` when the manifest is missing/corrupt,
        recorded for a different run, or the log is damaged beyond its
        final (salvageable) line.
        """
        try:
            doc = load_json_artifact(
                self.manifest_path,
                description="checkpoint manifest",
                require=("experiment", "seed", "parameters"),
            )
            recorded = RunManifest.from_doc(doc, path=str(self.manifest_path))
        except ArtifactError as exc:
            raise RecoveryError(str(exc)) from exc
        problems = manifest.mismatches(recorded)
        if problems:
            raise RecoveryError(
                f"{self.directory}: cannot resume: {'; '.join(problems)}"
            )
        self._load_log()
        self.manifest = manifest
        self._open_log()
        return len(self.completed)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # the point log
    # ------------------------------------------------------------------
    def append(self, record: dict[str, Any]) -> None:
        """Durably append one completed point (write + flush + fsync)."""
        if self._handle is None:
            self._open_log()
        entry = {
            "record": record,
            "sha256": checksum_line(canonical_json(record)),
        }
        self._handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.completed[(record["sweep"], record["index"])] = record
        self.appended += 1

    def _open_log(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.log_path, "a", encoding="utf-8")

    def _load_log(self) -> None:
        """Replay the log into :attr:`completed`, salvaging a partial tail."""
        if not self.log_path.exists():
            return  # killed before the first point completed
        # Byte-accurate offsets so tail truncation is exact.
        data = self.log_path.read_bytes()
        lines = data.splitlines(keepends=True)
        offset = 0
        for lineno, raw_bytes in enumerate(lines, start=1):
            raw = raw_bytes.decode("utf-8", errors="replace")
            line = raw.strip()
            if not line:
                offset += len(raw_bytes)
                continue
            try:
                record = _parse_log_line(line)
            except ValueError as exc:
                is_tail = lineno == len(lines)
                if is_tail:
                    # The expected crash signature: the process died
                    # mid-append. Drop the partial record; the point
                    # re-runs deterministically.
                    self._truncate_log(offset)
                    self.salvaged_line = lineno
                    return
                raise RecoveryError(
                    f"{self.log_path}:{lineno}: corrupt checkpoint record "
                    f"before the end of the log ({exc}); the log was "
                    "damaged after it was written — remove the checkpoint "
                    "directory and rerun"
                ) from exc
            self.completed[(record["sweep"], record["index"])] = record
            offset += len(raw_bytes)

    def _truncate_log(self, offset: int) -> None:
        with open(self.log_path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
