"""Supervised process-per-point execution of independent sweep points.

This replaces the bare ``multiprocessing.Pool.map`` fan-out that
``--jobs N`` used to ride on. A ``Pool`` gives no per-task control: one
crashed worker poisons the pool and aborts the whole sweep, and a hung
worker stalls it forever. The supervisor runs each point in its own
short-lived worker process connected by a pipe, and applies policy per
point:

* **per-point timeouts** — a worker that exceeds
  :attr:`SupervisorPolicy.point_timeout` wall-seconds is killed and its
  point retried;
* **bounded retry with deterministic backoff** — crashes and timeouts
  requeue the point up to :attr:`SupervisorPolicy.max_attempts` times,
  sleeping ``backoff_base * 2**(attempt-1)`` (capped) between attempts.
  Because every sweep point is self-seeded, a retried point produces
  exactly the row the original attempt would have;
* **crashed-worker salvage** — a worker that dies (SIGKILL, OOM,
  segfault) loses only its own in-flight point; completed results are
  kept and surviving points keep running;
* **graceful degradation** — after :attr:`SupervisorPolicy.
  degrade_after` incidents the pool is deemed unhealthy (e.g. the
  machine is out of memory for workers): remaining points run serially
  in the supervisor's own process.

A point that *raises* is different from one that crashes: exceptions
are deterministic results of the code under test, so they are shipped
back over the pipe and re-raised in the parent immediately (after
in-flight siblings are cancelled) rather than retried.

Incidents surface as ``recovery.*`` trace events (when tracing is on)
and ``recovery.*`` metrics counters; a healthy run emits none, so
supervised traces stay byte-identical to unsupervised ones.

Wall-clock reads here are intentional (timeouts and backoff are
real-time concepts, not simulated-time ones) and allowlisted for
omega-lint DET002 in ``pyproject.toml``.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Sequence

from repro.obs import recorder as _obs
from repro.obs.registry import get_registry


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs governing supervised execution (see docs/RECOVERY.md)."""

    #: Wall-seconds one attempt of one point may take before it is
    #: killed and retried; ``None`` disables timeouts.
    point_timeout: float | None = None
    #: Total attempts per point for crashes/timeouts before the sweep
    #: fails with :class:`PointFailure`.
    max_attempts: int = 3
    #: Deterministic retry backoff: ``backoff_base * 2**(attempt-1)``
    #: seconds, capped at ``backoff_cap``. Zero disables sleeping.
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: Pool incidents (crashes + timeouts) after which remaining points
    #: run serially in-process instead of in workers.
    degrade_after: int = 4

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError(
                f"point_timeout must be positive, got {self.point_timeout}"
            )
        if self.degrade_after < 1:
            raise ValueError(f"degrade_after must be >= 1, got {self.degrade_after}")

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt + 1``."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))


DEFAULT_POLICY = SupervisorPolicy()


class PointFailure(RuntimeError):
    """A sweep point exhausted its supervised attempts.

    Completed points were already delivered via ``on_result`` (and, when
    checkpointing, durably logged), so rerunning with ``--resume`` only
    repeats the failed point and its unfinished siblings.
    """


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _encode_error(exc: Exception) -> Exception:
    """The exception itself when picklable, else a summary stand-in."""
    try:
        pickle.dumps(exc)
    except Exception:  # omega-lint: disable=RBS001 -- picklability probe; the original failure is preserved in the summary re-raised by the parent
        return RuntimeError(f"{type(exc).__name__}: {exc}")
    return exc


def _capture(fn: Callable[[Any], Any], item: Any) -> tuple[Any, list[dict]]:
    """Run ``fn`` under a private in-memory recorder; return its records."""
    from repro.obs.recorder import TraceRecorder

    previous = _obs.RECORDER
    recorder = TraceRecorder(keep_records=True)
    _obs.set_recorder(recorder)
    try:
        result = fn(item)
    finally:
        _obs.set_recorder(previous if previous is not recorder else None)
        recorder.close()
    return result, recorder.records


def _child_main(fn: Callable[[Any], Any], item: Any, capture: bool, conn) -> None:
    """Worker body: run one point, ship (status, value, records) back."""
    # A forked worker inherits the parent's global recorder; writing
    # through it (worse: through its file descriptor) would corrupt the
    # parent's trace, so always drop to the null recorder first.
    _obs.reset_recorder()
    try:
        if capture:
            result, records = _capture(fn, item)
        else:
            result, records = fn(item), None
        payload = ("ok", result, records)
    except Exception as exc:  # omega-lint: disable=RBS001 -- worker boundary: the failure crosses the pipe and is re-raised by the supervisor in the parent
        payload = ("err", _encode_error(exc), None)
    try:
        conn.send(payload)
    finally:
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class _Running:
    index: int
    attempt: int
    proc: Any
    deadline: float | None


def _run_inline(
    fn: Callable[[Any], Any], item: Any, capture: bool
) -> tuple[Any, list[dict] | None]:
    if capture:
        return _capture(fn, item)
    return fn(item), None


def _note_incident(kind: str, label: str, attempt: int, **fields: Any) -> None:
    get_registry().counter(f"recovery.{kind}").inc()
    rec = _obs.RECORDER
    if rec.enabled:
        rec.event(f"recovery.point.{kind}", label=label, attempt=attempt, **fields)


def supervised_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    policy: SupervisorPolicy = DEFAULT_POLICY,
    capture: bool = False,
    on_result: Callable[[int, Any, list[dict] | None], None] | None = None,
    labels: Sequence[str] | None = None,
) -> list[tuple[Any, list[dict] | None]]:
    """Map ``fn`` over ``items`` under supervision.

    Returns ``(result, captured_trace_records_or_None)`` per item, in
    item order. ``on_result(index, result, records)`` fires as each
    point completes (completion order — used for crash-durable
    checkpoint appends). With ``jobs <= 1`` (or a single item) points
    run inline in this process: exceptions propagate unchanged and
    timeouts cannot be enforced, but trace capture still applies when
    requested.

    ``fn`` must be a module-level (picklable-by-reference) function and
    each item must be picklable, exactly as for ``Pool.map`` before.
    """
    items = list(items)
    n = len(items)
    if labels is None:
        labels = [str(i) for i in range(n)]
    results: list[tuple[Any, list[dict] | None] | None] = [None] * n

    def finish(index: int, result: Any, records: list[dict] | None) -> None:
        results[index] = (result, records)
        if on_result is not None:
            on_result(index, result, records)

    if jobs <= 1 or n <= 1:
        for index, item in enumerate(items):
            result, records = _run_inline(fn, item, capture)
            finish(index, result, records)
        return results  # type: ignore[return-value]

    mp = get_context()
    pending: deque[tuple[int, int]] = deque((i, 1) for i in range(n))
    running: dict[Any, _Running] = {}
    incidents = 0
    degraded = False

    def spawn(index: int, attempt: int) -> None:
        parent_conn, child_conn = mp.Pipe(duplex=False)
        proc = mp.Process(
            target=_child_main, args=(fn, items[index], capture, child_conn)
        )
        proc.start()
        # Close the parent's copy of the write end so worker death
        # surfaces as EOF on the read end.
        child_conn.close()
        deadline = (
            None
            if policy.point_timeout is None
            else time.monotonic() + policy.point_timeout
        )
        running[parent_conn] = _Running(index, attempt, proc, deadline)

    def reap(conn, task: _Running) -> None:
        task.proc.kill()
        task.proc.join()
        conn.close()

    def kill_all() -> None:
        for conn, task in list(running.items()):
            reap(conn, task)
        running.clear()

    def requeue_or_fail(task: _Running, kind: str) -> None:
        nonlocal incidents
        incidents += 1
        _note_incident(kind, labels[task.index], task.attempt)
        if task.attempt >= policy.max_attempts:
            kill_all()
            raise PointFailure(
                f"sweep point {labels[task.index]!r} (index {task.index}) "
                f"failed after {task.attempt} attempt(s); last incident: "
                f"{kind}. Completed points are preserved"
                " (resume with --checkpoint/--resume)."
            )
        delay = policy.backoff(task.attempt)
        if delay > 0:
            time.sleep(delay)
        pending.append((task.index, task.attempt + 1))

    def degrade() -> None:
        nonlocal degraded
        degraded = True
        get_registry().counter("recovery.degraded_serial").inc()
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event("recovery.degraded_serial", incidents=incidents)
        # Reclaim in-flight points for the serial path.
        for conn, task in list(running.items()):
            reap(conn, task)
            pending.append((task.index, task.attempt))
        running.clear()

    try:
        while pending or running:
            if degraded:
                for index, _attempt in sorted(pending):
                    result, records = _run_inline(fn, items[index], capture)
                    finish(index, result, records)
                pending.clear()
                break
            while pending and len(running) < jobs:
                index, attempt = pending.popleft()
                spawn(index, attempt)

            timeout = None
            if any(task.deadline is not None for task in running.values()):
                now = time.monotonic()
                nearest = min(
                    task.deadline for task in running.values()
                    if task.deadline is not None
                )
                timeout = max(0.0, nearest - now)
            ready = _connection_wait(list(running), timeout=timeout)

            for conn in ready:
                task = running.pop(conn)
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    payload = None  # died without reporting: a crash
                conn.close()
                task.proc.join()
                if payload is None:
                    requeue_or_fail(task, "crash")
                    continue
                status, value, records = payload
                if status == "ok":
                    finish(task.index, value, records)
                else:
                    kill_all()
                    raise value

            if policy.point_timeout is not None:
                now = time.monotonic()
                for conn, task in list(running.items()):
                    if task.deadline is not None and now >= task.deadline:
                        running.pop(conn)
                        reap(conn, task)
                        requeue_or_fail(task, "timeout")

            if incidents >= policy.degrade_after and (pending or running):
                degrade()
    except BaseException:
        kill_all()
        raise

    return results  # type: ignore[return-value]
