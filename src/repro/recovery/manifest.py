"""Run manifests: the identity a checkpoint is only resumable under.

A manifest pins everything that determines a sweep's result rows —
the experiment (CLI command), its parameter values, and the master
seed — plus the checkpoint format and code version for compatibility
checks. ``--resume`` refuses (exit 2) when the requested run does not
match the recorded manifest: silently mixing points from two different
configurations would corrupt every downstream comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.recovery.artifacts import ArtifactError

#: Bump on incompatible changes to the manifest/checkpoint layout.
CHECKPOINT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunManifest:
    """Identity of one checkpointed run."""

    experiment: str
    seed: int
    parameters: dict[str, Any] = field(default_factory=dict)
    checkpoint_format: int = CHECKPOINT_FORMAT_VERSION
    code_version: str = ""

    def __post_init__(self) -> None:
        if not self.code_version:
            import repro

            object.__setattr__(
                self, "code_version", getattr(repro, "__version__", "unknown")
            )

    def to_doc(self) -> dict[str, Any]:
        return {
            "kind": "omega-sim-checkpoint",
            "checkpoint_format": self.checkpoint_format,
            "experiment": self.experiment,
            "seed": self.seed,
            "parameters": dict(self.parameters),
            "code_version": self.code_version,
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any], path: str = "manifest") -> "RunManifest":
        if doc.get("kind") != "omega-sim-checkpoint":
            raise ArtifactError(
                f"{path}: not a checkpoint manifest "
                f"(kind={doc.get('kind')!r}, expected 'omega-sim-checkpoint')"
            )
        return cls(
            experiment=str(doc.get("experiment", "")),
            seed=int(doc.get("seed", 0)),
            parameters=dict(doc.get("parameters", {})),
            checkpoint_format=int(doc.get("checkpoint_format", -1)),
            code_version=str(doc.get("code_version", "unknown")),
        )

    def mismatches(self, recorded: "RunManifest") -> list[str]:
        """Reasons the ``recorded`` manifest cannot serve this run."""
        problems: list[str] = []
        if recorded.checkpoint_format != self.checkpoint_format:
            problems.append(
                f"checkpoint format {recorded.checkpoint_format} != "
                f"supported {self.checkpoint_format}"
            )
        if recorded.experiment != self.experiment:
            problems.append(
                f"experiment {recorded.experiment!r} != requested "
                f"{self.experiment!r}"
            )
        if recorded.seed != self.seed:
            problems.append(f"seed {recorded.seed} != requested {self.seed}")
        keys = sorted(set(self.parameters) | set(recorded.parameters))
        for key in keys:
            mine = self.parameters.get(key)
            theirs = recorded.parameters.get(key)
            if mine != theirs:
                problems.append(
                    f"parameter {key}={theirs!r} != requested {key}={mine!r}"
                )
        return problems
