"""Atomic, integrity-checked artifact writes and validating loads.

Every result file this repository produces (experiment row tables,
bench results, checkpoint manifests) goes through one of two writers:

* :func:`atomic_write_text` — write to a temp file in the same
  directory, flush, ``fsync``, then ``os.replace`` onto the final
  name. A reader (or a rerun) can never observe a truncated artifact:
  the final path either holds the complete previous version or the
  complete new one.
* :func:`write_json_artifact` — the same, for JSON documents, with a
  ``content_hash`` field embedded so corruption *after* the write
  (disk faults, manual edits, partial copies) is detected at load.

:func:`load_json_artifact` is the matching validating loader: every
failure mode (missing file, invalid JSON, wrong shape, hash mismatch)
raises :class:`ArtifactError` with a one-line message naming the path
and the problem, which the CLI maps to exit code 2.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable

#: The hash algorithm prefix embedded in artifacts.
_HASH_PREFIX = "sha256:"


class ArtifactError(ValueError):
    """An artifact is missing, corrupt, or structurally invalid.

    Messages are single-line and actionable (they name the path and the
    failure); the CLI reports them verbatim and exits 2 instead of
    stack-tracing.
    """


def canonical_json(doc: Any) -> str:
    """The canonical serialization content hashes are computed over."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def content_hash(doc: Any) -> str:
    """``sha256:<hex>`` over the canonical JSON form of ``doc``."""
    digest = hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()
    return _HASH_PREFIX + digest


def checksum_line(text: str) -> str:
    """``sha256:<hex>`` over raw text (checkpoint-log record bodies)."""
    return _HASH_PREFIX + hashlib.sha256(text.encode("utf-8")).hexdigest()


def fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry after a rename."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms/filesystems without directory fds
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via temp-file + fsync + ``os.replace``.

    The temp file lives in the same directory (same filesystem, so the
    rename is atomic) and is named ``<name>.tmp.<pid>``; an interrupted
    write leaves only that clearly-labelled temp file behind, never a
    truncated ``path``.
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8", newline="") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)
    return path


def write_json_artifact(
    path: str | Path,
    doc: dict[str, Any],
    embed_hash: bool = True,
    indent: int | None = 2,
) -> Path:
    """Atomically write a JSON document, embedding a ``content_hash``.

    The hash covers every key except ``content_hash`` itself, over the
    canonical (sorted, compact) serialization, so it is stable under
    re-serialization and key reordering.
    """
    doc = dict(doc)
    doc.pop("content_hash", None)
    if embed_hash:
        doc["content_hash"] = content_hash(doc)
    return atomic_write_text(path, json.dumps(doc, indent=indent) + "\n")


def load_json_artifact(
    path: str | Path,
    description: str = "artifact",
    require: Iterable[str] = (),
) -> dict[str, Any]:
    """Load and validate a JSON artifact; every failure is one line.

    Validation: the file must exist and parse, the document must be a
    JSON object, any embedded ``content_hash`` must verify, and every
    key in ``require`` must be present.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        reason = exc.strerror or exc.__class__.__name__
        raise ArtifactError(
            f"{path}: cannot read {description}: {reason}"
        ) from exc
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise ArtifactError(
            f"{path}: corrupt {description}: not valid JSON ({exc})"
        ) from exc
    if not isinstance(doc, dict):
        raise ArtifactError(
            f"{path}: corrupt {description}: expected a JSON object, "
            f"got {type(doc).__name__}"
        )
    stored = doc.get("content_hash")
    if stored is not None:
        body = {key: value for key, value in doc.items() if key != "content_hash"}
        computed = content_hash(body)
        if computed != stored:
            raise ArtifactError(
                f"{path}: {description} failed its integrity check "
                f"(stored {stored}, computed {computed}); the file was "
                "truncated or modified after it was written"
            )
    missing = [key for key in require if key not in doc]
    if missing:
        raise ArtifactError(
            f"{path}: corrupt {description}: missing required "
            f"key(s) {', '.join(repr(key) for key in missing)}"
        )
    return doc
