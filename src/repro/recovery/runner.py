"""Checkpoint-aware sweep execution: the glue between drivers and the
supervisor.

Experiment drivers call :func:`repro.perf.parallel.parallel_map`, which
delegates here. When no :class:`RecoveryContext` is active this is a
plain supervised map and behaves exactly like the historical
``Pool.map`` fan-out. When the CLI activates a context (``--checkpoint
DIR`` and friends), every completed sweep point is durably appended to
the context's :class:`~repro.recovery.checkpoint.CheckpointStore` as it
finishes, and on ``--resume`` already-completed points are skipped —
their stored rows (and captured trace records) are used instead of
re-running them.

The context is module-global rather than threaded through every driver
signature: a run executes one experiment command, and the drivers
between the CLI and ``parallel_map`` (sweeps, resilience, ablations,
conflict modes) are pure plumbing that should not need to know about
checkpointing.

Determinism contract: a driver must materialize the same sweeps, in the
same order, with the same per-point labels, on every run with the same
parameters — which they do, because sweep structure is a pure function
of the CLI arguments recorded in the run manifest. ``execute_map``
numbers sweeps in call order and points in item order, keys checkpoint
records by ``(sweep, index)``, and refuses to resume when a stored
label no longer matches the recomputed one.

Trace stitching: when tracing is on and capture is needed (parallel
workers, or any checkpointed run), each point's records are captured in
a private recorder and replayed into the parent recorder in submission
order after the sweep — producing the same record sequence a serial
untraced-capture run would emit inline (span ids are renumbered by
:meth:`~repro.obs.recorder.TraceRecorder.replay`). Stored records from
skipped points are replayed the same way, so a resumed run's stitched
trace is identical to an uninterrupted run's apart from wall-clock
fields.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.obs import recorder as _obs
from repro.obs.registry import get_registry
from repro.recovery.checkpoint import CheckpointStore, RecoveryError
from repro.recovery.supervisor import (
    DEFAULT_POLICY,
    SupervisorPolicy,
    supervised_map,
)

__all__ = ["RecoveryContext", "activate", "active_context", "execute_map"]


class RecoveryContext:
    """Execution-wide recovery state for one experiment command.

    ``store`` is the open checkpoint store, or ``None`` when the run is
    supervised (``--point-timeout`` etc.) but not checkpointed.
    ``resumed_points`` is the number of completed points recovered from
    the store before execution started.
    """

    def __init__(
        self,
        store: CheckpointStore | None = None,
        policy: SupervisorPolicy = DEFAULT_POLICY,
        resumed_points: int = 0,
    ) -> None:
        self.store = store
        self.policy = policy
        self.resumed_points = resumed_points
        #: Points executed (not skipped) under this context.
        self.points_completed = 0
        #: Points skipped because the checkpoint already held them.
        self.points_skipped = 0
        self._sweep_counter = 0

    def next_sweep(self) -> int:
        """Sweep number for the next ``execute_map`` call (call order)."""
        sweep = self._sweep_counter
        self._sweep_counter += 1
        return sweep

    def close(self) -> None:
        if self.store is not None:
            self.store.close()


#: The active context, if any. One experiment command per process, so a
#: module global (not thread-local) is the honest scope.
_ACTIVE: RecoveryContext | None = None


def active_context() -> RecoveryContext | None:
    """The currently active :class:`RecoveryContext`, or ``None``."""
    return _ACTIVE


@contextmanager
def activate(context: RecoveryContext) -> Iterator[RecoveryContext]:
    """Install ``context`` for the duration of one experiment command."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a RecoveryContext is already active")
    _ACTIVE = context
    try:
        yield context
    finally:
        _ACTIVE = None
        context.close()


def _plan_resume(
    store: CheckpointStore,
    sweep: int,
    n: int,
    labels: Sequence[str],
) -> tuple[list[int], dict[int, dict[str, Any]]]:
    """Split a sweep into (to-run indices, already-completed records)."""
    stale = [
        key for key in store.completed if key[0] == sweep and key[1] >= n
    ]
    if stale:
        raise RecoveryError(
            f"{store.directory}: cannot resume: checkpoint holds point "
            f"{stale[0]} beyond this run's sweep {sweep} size {n}; the "
            "sweep structure changed"
        )
    todo: list[int] = []
    done: dict[int, dict[str, Any]] = {}
    for index in range(n):
        record = store.completed.get((sweep, index))
        if record is None:
            todo.append(index)
            continue
        if record.get("label") != labels[index]:
            raise RecoveryError(
                f"{store.directory}: cannot resume: sweep {sweep} point "
                f"{index} was recorded as {record.get('label')!r} but this "
                f"run computes {labels[index]!r}; the sweep structure "
                "changed"
            )
        done[index] = record
    return todo, done


def execute_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    labels: Sequence[str] | None = None,
    policy: SupervisorPolicy | None = None,
) -> list[Any]:
    """Run one sweep under the active recovery context (if any).

    Results come back in item order. Without an active context this is
    supervised execution with default policy — behaviourally identical
    to the old ``Pool.map`` path for healthy runs.
    """
    context = _ACTIVE
    store = context.store if context is not None else None
    if policy is None:
        policy = context.policy if context is not None else DEFAULT_POLICY
    items = list(items)
    n = len(items)
    if labels is None:
        labels = [str(index) for index in range(n)]
    elif len(labels) != n:
        raise ValueError(f"got {len(labels)} labels for {n} items")
    sweep = context.next_sweep() if context is not None else 0

    recorder = _obs.RECORDER
    tracing = recorder.enabled
    # Private-recorder capture is needed whenever records cannot simply
    # be emitted inline: parallel workers have no access to the parent
    # recorder, and checkpointed points must store their records so a
    # resumed run can re-emit them.
    capture = tracing and ((jobs > 1 and n > 1) or store is not None)

    if store is not None and store.completed:
        todo, done = _plan_resume(store, sweep, n, labels)
    else:
        todo, done = list(range(n)), {}

    if done:
        if context is not None:
            context.points_skipped += len(done)
        get_registry().counter("recovery.points_skipped").inc(len(done))

    results: list[Any] = [None] * n
    traces: list[list[dict[str, Any]] | None] = [None] * n
    for index, record in done.items():
        results[index] = record.get("row")
        traces[index] = record.get("trace")

    def on_result(position: int, result: Any, records: list[dict] | None) -> None:
        index = todo[position]
        if store is not None:
            store.append(
                {
                    "sweep": sweep,
                    "index": index,
                    "label": labels[index],
                    "row": result,
                    "trace": records,
                }
            )
        if context is not None:
            context.points_completed += 1

    if todo:
        executed = supervised_map(
            fn,
            [items[index] for index in todo],
            jobs=jobs,
            policy=policy,
            capture=capture,
            on_result=on_result,
            labels=[labels[index] for index in todo],
        )
        for position, (result, records) in enumerate(executed):
            index = todo[position]
            results[index] = result
            traces[index] = records

    if tracing and (capture or done):
        for index in range(n):
            records = traces[index]
            if records:
                recorder.replay(records)

    return results
