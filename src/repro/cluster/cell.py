"""Cell: the inventory of machines a set of schedulers manages."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.cluster.machine import Machine


class Cell:
    """An immutable collection of machines plus capacity arrays.

    The capacity arrays (``cpu_capacity``, ``mem_capacity``) are the
    vectorized view used by placement algorithms and by
    :class:`repro.core.cellstate.CellState`; index ``i`` in the arrays is
    machine ``i``.
    """

    def __init__(self, machines: Sequence[Machine], name: str = "cell") -> None:
        if not machines:
            raise ValueError("a cell must contain at least one machine")
        for position, machine in enumerate(machines):
            if machine.index != position:
                raise ValueError(
                    f"machine at position {position} has index {machine.index}; "
                    "machine indices must match their position in the cell"
                )
        self.name = name
        self.machines: tuple[Machine, ...] = tuple(machines)
        self.cpu_capacity = np.array([m.cpu for m in machines], dtype=np.float64)
        self.mem_capacity = np.array([m.mem for m in machines], dtype=np.float64)
        self.cpu_capacity.setflags(write=False)
        self.mem_capacity.setflags(write=False)
        self.racks = np.array([m.rack for m in machines], dtype=np.int64)
        self.racks.setflags(write=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self) -> Iterator[Machine]:
        return iter(self.machines)

    def __getitem__(self, index: int) -> Machine:
        return self.machines[index]

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def total_cpu(self) -> float:
        return float(self.cpu_capacity.sum())

    @property
    def total_mem(self) -> float:
        return float(self.mem_capacity.sum())

    def subcell(self, indices: Iterable[int], name: str | None = None) -> "Cell":
        """Build a new cell from a subset of this cell's machines.

        Machines are re-indexed to match their position in the new cell
        (used by the statically-partitioned scheduler, which splits one
        physical cell into fixed per-scheduler partitions).
        """
        picked = [self.machines[i] for i in indices]
        reindexed = [
            Machine(
                index=new_index,
                cpu=m.cpu,
                mem=m.mem,
                rack=m.rack,
                attributes=dict(m.attributes),
            )
            for new_index, m in enumerate(picked)
        ]
        return Cell(reindexed, name=name or f"{self.name}/sub")

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        num_machines: int,
        cpu_per_machine: float,
        mem_per_machine: float,
        machines_per_rack: int = 40,
        name: str = "cell",
    ) -> "Cell":
        """Build the homogeneous cell used by the lightweight simulator
        (Table 2: "Machines: homogeneous")."""
        if num_machines <= 0:
            raise ValueError("num_machines must be positive")
        if machines_per_rack <= 0:
            raise ValueError("machines_per_rack must be positive")
        machines = [
            Machine(
                index=i,
                cpu=cpu_per_machine,
                mem=mem_per_machine,
                rack=i // machines_per_rack,
            )
            for i in range(num_machines)
        ]
        return cls(machines, name=name)

    @classmethod
    def heterogeneous(
        cls,
        platforms: Sequence[tuple[int, float, float, dict[str, str]]],
        machines_per_rack: int = 40,
        name: str = "cell",
    ) -> "Cell":
        """Build a heterogeneous cell for the high-fidelity simulator.

        ``platforms`` is a sequence of ``(count, cpu, mem, attributes)``
        tuples, mirroring the mixed machine classes in Google cells
        (Table 2: "Machines: actual data" — substituted per DESIGN.md).
        """
        machines: list[Machine] = []
        for count, cpu, mem, attributes in platforms:
            if count <= 0:
                raise ValueError("platform machine count must be positive")
            for _ in range(count):
                index = len(machines)
                machines.append(
                    Machine(
                        index=index,
                        cpu=cpu,
                        mem=mem,
                        rack=index // machines_per_rack,
                        attributes=attributes,
                    )
                )
        return cls(machines, name=name)
