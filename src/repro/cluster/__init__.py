"""Cluster and machine model.

A *cell* (the paper's term for the management unit of part of a physical
cluster, section 3.4 footnote 4) is an inventory of machines with CPU and
RAM capacities, optional attributes for placement constraints, and
failure-domain (rack) membership used by the high-fidelity placement
algorithm's spreading score.
"""

from repro.cluster.cell import Cell
from repro.cluster.machine import Machine

__all__ = ["Cell", "Machine"]
