"""Machine descriptions."""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping


@dataclass(frozen=True)
class Machine:
    """An immutable machine description.

    Dynamic state (how much CPU/RAM is free right now) deliberately does
    not live here: it lives in :class:`repro.core.cellstate.CellState`,
    the shared state that Omega schedulers transact against. A
    ``Machine`` is the static inventory record.

    Attributes:
        index: position of the machine in its cell (array index).
        cpu: CPU capacity in cores.
        mem: RAM capacity in GB.
        rack: failure-domain identifier (machines sharing a rack share
            a failure domain; used for spreading in ``repro.hifi``).
        attributes: free-form attribute map matched by placement
            constraints (e.g. ``{"arch": "x86", "kernel": "3.2"}``).
    """

    index: int
    cpu: float
    mem: float
    rack: int = 0
    attributes: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"machine index must be >= 0, got {self.index}")
        if self.cpu <= 0 or self.mem <= 0:
            raise ValueError(
                f"machine capacities must be positive (cpu={self.cpu}, mem={self.mem})"
            )
        # Freeze the attribute map so Machine is safely hashable-by-identity
        # and shareable between snapshots.
        object.__setattr__(self, "attributes", MappingProxyType(dict(self.attributes)))

    def satisfies(self, attr: str, value: str) -> bool:
        """Whether this machine has ``attr`` equal to ``value``."""
        return self.attributes.get(attr) == value
