"""The seeded chaos engine for the lightweight simulator.

Injects three fault classes into any of the section 4 architectures
(monolithic, partitioned, Mesos, Omega):

* **machine failure/repair** — a Poisson process per cell (shared
  :class:`~repro.faults.processes.FailureRepairProcess`), evicting
  ledgered tasks and withholding capacity until repair;
* **scheduler crash/restart** — a Poisson process per scheduler; a
  crash loses the in-flight transaction (the job's private snapshot and
  pending commit are discarded, the job requeues at the front) and the
  scheduler serves nothing until it restarts;
* **commit-path faults** — per-attempt latency spikes (the scheduler
  stays busy longer, widening the conflict window) and commit drops
  (the placement work is lost and the attempt resolves as a conflict).

Every draw comes from a named :class:`repro.sim.random.RandomStreams`
stream — one per cell (``machine-failures.{i}``) and per scheduler
(``crash.{name}``, ``commit.{name}``) — so each fault timeline is a
deterministic function of the master seed and independent of event
interleaving (``omega-lint`` rule FIJ001 rejects anything else). All
injections emit ``fault.*`` trace events for ``omega-sim trace``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import TYPE_CHECKING, Sequence

from repro.core.cellstate import CellState
from repro.faults.processes import FailureRepairProcess
from repro.metrics import MetricsCollector
from repro.obs import recorder as _obs
from repro.sim import RandomStreams, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.preemption import AllocationLedger
    from repro.schedulers.base import QueueScheduler
    from repro.workload.job import Job


@dataclass(frozen=True)
class FaultConfig:
    """What to inject and how hard. Frozen and primitive-only so sweep
    points stay picklable across ``--jobs N`` worker processes.

    The default config injects nothing (:attr:`enabled` is False);
    experiments define a baseline and scale it with :meth:`scaled`.
    """

    #: Per-machine mean time between failures (seconds); None disables
    #: machine failures.
    machine_mtbf: float | None = None
    machine_repair_time: float = 1800.0
    #: Per-scheduler mean time between crashes (seconds); None disables
    #: scheduler crashes.
    crash_mtbf: float | None = None
    crash_restart_time: float = 30.0
    #: Probability that one scheduling attempt's commit suffers a
    #: latency spike / is dropped outright.
    commit_delay_prob: float = 0.0
    #: Mean of the (exponential) commit latency spike, seconds.
    commit_delay_mean: float = 5.0
    commit_drop_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.machine_mtbf is not None and self.machine_mtbf <= 0:
            raise ValueError(f"machine_mtbf must be positive, got {self.machine_mtbf}")
        if self.machine_repair_time <= 0:
            raise ValueError(
                f"machine_repair_time must be positive, got {self.machine_repair_time}"
            )
        if self.crash_mtbf is not None and self.crash_mtbf <= 0:
            raise ValueError(f"crash_mtbf must be positive, got {self.crash_mtbf}")
        if self.crash_restart_time <= 0:
            raise ValueError(
                f"crash_restart_time must be positive, got {self.crash_restart_time}"
            )
        for name in ("commit_delay_prob", "commit_drop_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.commit_delay_mean <= 0:
            raise ValueError(
                f"commit_delay_mean must be positive, got {self.commit_delay_mean}"
            )

    @property
    def enabled(self) -> bool:
        """Whether this config injects any fault at all."""
        return (
            self.machine_mtbf is not None
            or self.crash_mtbf is not None
            or self.commit_delay_prob > 0
            or self.commit_drop_prob > 0
        )

    @property
    def wants_commit_faults(self) -> bool:
        return self.commit_delay_prob > 0 or self.commit_drop_prob > 0

    def scaled(self, intensity: float) -> "FaultConfig":
        """This config with every fault rate multiplied by ``intensity``.

        Intensity 0 returns a fully disabled config (so zero-fault sweep
        rows run the exact fault-free code path); intensity 1 is this
        config unchanged; intensity k divides the MTBFs by k and
        multiplies the commit-fault probabilities by k (clamped to 1).
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        if intensity == 0:
            return FaultConfig()
        return replace(
            self,
            machine_mtbf=(
                self.machine_mtbf / intensity if self.machine_mtbf is not None else None
            ),
            crash_mtbf=(
                self.crash_mtbf / intensity if self.crash_mtbf is not None else None
            ),
            commit_delay_prob=min(1.0, self.commit_delay_prob * intensity),
            commit_drop_prob=min(1.0, self.commit_drop_prob * intensity),
        )


class ChaosEngine:
    """Installs and drives the configured fault processes for one run.

    ``streams`` should be a dedicated fork of the run's master streams
    (``streams.fork("chaos")``): every fault class then draws from its
    own named child stream, so adding or removing one fault class never
    perturbs the timelines of the others.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: FaultConfig,
        metrics: MetricsCollector,
    ) -> None:
        self.sim = sim
        self.config = config
        self.metrics = metrics
        self._streams = streams
        self.processes: list[FailureRepairProcess] = []
        self._commit_rngs: dict[str, object] = {}
        self._schedulers: list["QueueScheduler"] = []
        self._horizon: float | None = None
        self.crashes = 0
        self.commit_delays = 0
        self.commit_drops = 0

    # ------------------------------------------------------------------
    @property
    def machine_failures(self) -> int:
        return sum(process.failures for process in self.processes)

    @property
    def tasks_killed(self) -> int:
        return sum(process.tasks_killed for process in self.processes)

    @property
    def machines_down(self) -> int:
        """Machines currently failed and awaiting repair, across cells."""
        return sum(process.machines_down for process in self.processes)

    # ------------------------------------------------------------------
    def install(
        self,
        states: Sequence[CellState],
        schedulers: Sequence["QueueScheduler"],
        ledger: "AllocationLedger | None" = None,
        horizon: float | None = None,
    ) -> None:
        """Attach the configured fault processes to a built simulation.

        ``states``/``schedulers`` must be in construction order (the
        builders pin it), because stream names are derived from cell
        index and scheduler name.
        """
        self._horizon = horizon
        self._schedulers = list(schedulers)
        cfg = self.config
        if cfg.machine_mtbf is not None:
            for index, state in enumerate(states):
                evict = None
                if ledger is not None and ledger.state is state:
                    evict = ledger.evict_machine
                process = FailureRepairProcess(
                    self.sim,
                    state,
                    self._streams.stream(f"machine-failures.{index}"),
                    mtbf=cfg.machine_mtbf,
                    repair_time=cfg.machine_repair_time,
                    evict=evict,
                    on_fail=partial(self._machine_failed, index),
                    on_repair=partial(self._machine_repaired, index),
                )
                process.start(horizon)
                self.processes.append(process)
        if cfg.wants_commit_faults:
            for scheduler in schedulers:
                scheduler.chaos = self
                self._commit_rngs[scheduler.name] = self._streams.stream(
                    f"commit.{scheduler.name}"
                )
        if cfg.crash_mtbf is not None:
            for scheduler in schedulers:
                self._schedule_crash(
                    scheduler, self._streams.stream(f"crash.{scheduler.name}")
                )

    # ------------------------------------------------------------------
    # Machine failures (observer hooks on FailureRepairProcess)
    # ------------------------------------------------------------------
    def _machine_failed(self, cell_index: int, machine: int, killed: int) -> None:
        self.metrics.record_machine_failure(killed)
        # A failed machine just lost every running task — whatever
        # contention the conflict predictors had learned for it is stale,
        # so their scores for it are dropped (not merely decayed).
        for scheduler in self._schedulers:
            predictor = getattr(scheduler, "predictor", None)
            if predictor is not None:
                predictor.note_machine_failed(machine)
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "fault.machine_down",
                t=self.sim.now,
                cell=cell_index,
                machine=machine,
                killed=killed,
            )

    def _machine_repaired(self, cell_index: int, machine: int) -> None:
        self.metrics.record_machine_repair()
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "fault.machine_up", t=self.sim.now, cell=cell_index, machine=machine
            )

    # ------------------------------------------------------------------
    # Scheduler crash/restart
    # ------------------------------------------------------------------
    def _schedule_crash(self, scheduler: "QueueScheduler", rng) -> None:
        gap = float(rng.exponential(self.config.crash_mtbf))
        when = self.sim.now + gap
        if self._horizon is None or when <= self._horizon:
            self.sim.at(when, self._crash_scheduler, scheduler, rng)

    def _crash_scheduler(self, scheduler: "QueueScheduler", rng) -> None:
        if not scheduler.is_down:
            lost = scheduler.crash()
            self.crashes += 1
            self.metrics.record_scheduler_crash(scheduler.name)
            rec = _obs.RECORDER
            if rec.enabled:
                rec.event(
                    "fault.sched_crash",
                    t=self.sim.now,
                    sched=scheduler.name,
                    lost_job=lost.job_id if lost is not None else None,
                )
            self.sim.after(
                self.config.crash_restart_time, self._restart_scheduler, scheduler
            )
        self._schedule_crash(scheduler, rng)

    def _restart_scheduler(self, scheduler: "QueueScheduler") -> None:
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event("fault.sched_restart", t=self.sim.now, sched=scheduler.name)
        scheduler.restart()

    # ------------------------------------------------------------------
    # Commit-path faults (called by schedulers when chaos is installed)
    # ------------------------------------------------------------------
    def commit_fault(
        self, scheduler: "QueueScheduler", job: "Job"
    ) -> tuple[float, bool]:
        """Draw this attempt's commit fault: ``(extra_delay, dropped)``.

        Drawn from the scheduler's own ``commit.{name}`` stream at
        think-start, so each scheduler's fault sequence depends only on
        its own attempt ordering.
        """
        cfg = self.config
        rng = self._commit_rngs[scheduler.name]
        if cfg.commit_drop_prob > 0 and rng.random() < cfg.commit_drop_prob:
            self.commit_drops += 1
            return 0.0, True
        if cfg.commit_delay_prob > 0 and rng.random() < cfg.commit_delay_prob:
            delay = float(rng.exponential(cfg.commit_delay_mean))
            self.commit_delays += 1
            self.metrics.record_commit_delayed(scheduler.name, delay)
            rec = _obs.RECORDER
            if rec.enabled:
                rec.event(
                    "fault.commit_delay",
                    t=self.sim.now,
                    sched=scheduler.name,
                    job=job.job_id,
                    delay=delay,
                )
            return delay, False
        return 0.0, False
