"""Deterministic fault injection and resilience checking (repro.faults).

The paper's evaluation exercises only the happy path: its simulators
"do not model machine failures (as these only generate a small load on
the scheduler)" and its Omega schedulers retry conflicted transactions
immediately and forever. This package grows the reproduction into the
robustness territory the authors skipped (see ``docs/RESILIENCE.md``):

* :class:`~repro.faults.processes.FailureRepairProcess` — the one
  Poisson machine failure/repair implementation, shared by the
  high-fidelity injector (:mod:`repro.hifi.failures`) and the
  lightweight chaos engine;
* :class:`~repro.faults.chaos.ChaosEngine` /
  :class:`~repro.faults.chaos.FaultConfig` — seeded, named-stream
  fault injection for every lightweight architecture: machine failures,
  scheduler crash/restart with in-flight-transaction loss, and
  commit-path latency spikes and drops;
* :mod:`~repro.faults.retry` — pluggable Omega conflict-retry policies
  (immediate, capped, exponential backoff with deterministic jitter,
  starvation escalation to incremental commits per paper section 3.6,
  and predictive escalation driven by the conflict predictor);
* :mod:`~repro.faults.predictor` — per-scheduler
  :class:`~repro.faults.predictor.ConflictPredictor` with
  exponentially-decayed per-machine contention scores, hot-machine
  placement steering and the conflict-probability estimate behind the
  ``predictive`` retry policy;
* :class:`~repro.faults.invariants.CellStateInvariantChecker` — the
  cell-state safety net that runs continuously in simulation or as a
  post-run CI gate.

Everything here draws exclusively from :class:`repro.sim.random.
RandomStreams` streams, so fault timelines are a deterministic function
of the master seed (enforced by ``omega-lint`` rule FIJ001 and the
runtime determinism gate).
"""

from repro.faults.chaos import ChaosEngine, FaultConfig
from repro.faults.invariants import CellStateInvariantChecker, InvariantViolation
from repro.faults.predictor import ConflictPredictor, PredictorConfig
from repro.faults.processes import FailureRepairProcess
from repro.faults.retry import (
    RETRY_POLICIES,
    CappedRetryPolicy,
    ExponentialBackoffPolicy,
    ImmediateRetryPolicy,
    PredictiveEscalationPolicy,
    RetryAction,
    RetryDecision,
    RetryPolicy,
    RetryPolicyConfig,
    StarvationEscalationPolicy,
)

__all__ = [
    "ChaosEngine",
    "FaultConfig",
    "FailureRepairProcess",
    "CellStateInvariantChecker",
    "InvariantViolation",
    "ConflictPredictor",
    "PredictorConfig",
    "RetryAction",
    "RetryDecision",
    "RetryPolicy",
    "RetryPolicyConfig",
    "ImmediateRetryPolicy",
    "CappedRetryPolicy",
    "ExponentialBackoffPolicy",
    "StarvationEscalationPolicy",
    "PredictiveEscalationPolicy",
    "RETRY_POLICIES",
]
