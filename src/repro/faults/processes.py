"""The shared machine failure/repair process.

One implementation of the Poisson failure model serves both simulators:
the high-fidelity :class:`repro.hifi.failures.MachineFailureInjector`
(which evicts tasks through the allocation ledger) and the lightweight
chaos engine (:mod:`repro.faults.chaos`, which may run without a ledger
and lets running tasks ride out the failure — the same modeling
simplification the hifi injector applies to unledgered allocations).

Mechanics: machines fail as a Poisson process whose cell-wide rate is
``up_machines / mtbf``; a failing machine's tasks are evicted through
the pluggable ``evict`` callback, whatever capacity is then free is
withheld from the shared cell state (via the ordinary
:meth:`~repro.core.cellstate.CellState.claim` path, so every cell-state
invariant keeps holding), and a repair after ``repair_time`` seconds
releases the withheld capacity again.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analysis import sanitizer as _san
from repro.core.cellstate import CellState
from repro.sim import Simulator

#: Evicts every task on a machine, returning the evicted task count
#: (e.g. ``AllocationLedger.evict_machine``).
EvictFn = Callable[[int], int]

#: Observer hooks: ``on_fail(machine, killed)`` / ``on_repair(machine)``.
FailHook = Callable[[int, int], None]
RepairHook = Callable[[int], None]


class FailureRepairProcess:
    """Poisson machine failures with repairs over one shared cell state.

    ``rng`` must be a named :class:`repro.sim.random.RandomStreams`
    stream (or a generator derived via ``derive_seed``) so the fault
    timeline is a deterministic function of the master seed — never a
    freshly constructed or wall-clock-seeded generator (``omega-lint``
    rule FIJ001).
    """

    def __init__(
        self,
        sim: Simulator,
        state: CellState,
        rng: np.random.Generator,
        mtbf: float,
        repair_time: float = 1800.0,
        evict: EvictFn | None = None,
        on_fail: FailHook | None = None,
        on_repair: RepairHook | None = None,
    ) -> None:
        """``mtbf`` is the mean time between failures *per machine*
        (seconds); the cell-wide failure rate is ``machines / mtbf``.
        ``repair_time`` is how long a failed machine stays down.
        """
        if mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {mtbf}")
        if repair_time <= 0:
            raise ValueError(f"repair_time must be positive, got {repair_time}")
        self.sim = sim
        self.state = state
        self.rng = rng
        self.mtbf = mtbf
        self.repair_time = repair_time
        self._evict = evict
        self._on_fail = on_fail
        self._on_repair = on_repair
        self._down: dict[int, tuple[float, float]] = {}  # machine -> withheld cpu/mem
        self.failures = 0
        self.tasks_killed = 0
        self._horizon: float | None = None

    # ------------------------------------------------------------------
    @property
    def machines_down(self) -> int:
        return len(self._down)

    def is_down(self, machine: int) -> bool:
        return machine in self._down

    def start(self, horizon: float | None = None) -> None:
        """Begin injecting failures (first gap drawn immediately)."""
        self._horizon = horizon
        self._schedule_next()

    def _cell_rate(self) -> float:
        up_machines = self.state.num_machines - len(self._down)
        return max(up_machines, 1) / self.mtbf

    def _schedule_next(self) -> None:
        gap = self.rng.exponential(1.0 / self._cell_rate())
        when = self.sim.now + gap
        if self._horizon is None or when <= self._horizon:
            self.sim.at(when, self._fail_random_machine)

    # ------------------------------------------------------------------
    def _fail_random_machine(self) -> None:
        up = [m for m in range(self.state.num_machines) if m not in self._down]
        if up:
            self.fail(int(self.rng.choice(up)))
        self._schedule_next()

    def fail(self, machine: int) -> int:
        """Fail ``machine`` now: kill its tasks, withhold its capacity.

        Returns the number of tasks killed. Failing a machine that is
        already down is a no-op.
        """
        if machine in self._down:
            return 0
        self.failures += 1
        killed = self._evict(machine) if self._evict is not None else 0
        self.tasks_killed += killed
        # Withhold whatever is free now (everything, after the eviction,
        # except resources of unevictable allocations, which ride out
        # the failure as a modeling simplification).
        withheld_cpu = float(self.state.free_cpu[machine])
        withheld_mem = float(self.state.free_mem[machine])
        if withheld_cpu > 0 or withheld_mem > 0:
            with _san.master_scope("machine-failure"):
                self.state.claim(machine, withheld_cpu, withheld_mem, 1)
        self._down[machine] = (withheld_cpu, withheld_mem)
        self.sim.after(self.repair_time, self.repair, machine)
        if self._on_fail is not None:
            self._on_fail(machine, killed)
        return killed

    def repair(self, machine: int) -> None:
        """Bring a failed machine back (idempotent)."""
        withheld = self._down.pop(machine, None)
        if withheld is None:
            return
        withheld_cpu, withheld_mem = withheld
        if withheld_cpu > 0 or withheld_mem > 0:
            with _san.master_scope("machine-repair"):
                self.state.release(machine, withheld_cpu, withheld_mem, 1)
        if self._on_repair is not None:
            self._on_repair(machine)
