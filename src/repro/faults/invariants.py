"""Cell-state invariant checking.

The shared cell state's documented invariants (see
:class:`repro.core.cellstate.CellState`) are what the whole optimistic
concurrency argument rests on — "all must agree on ... a common notion
of whether a machine is full". Fault injection stresses every mutation
path at once (commits, releases, evictions, capacity withholding), so
:class:`CellStateInvariantChecker` re-verifies the invariants from the
outside: continuously during a run (installed on the simulator clock)
or once as a post-run gate. CI runs it over a fault-injected scenario
and fails the build on any violation.

Checked per cell:

* free resources are non-negative and never exceed machine capacity
  (within accounting EPSILON), and are never NaN;
* the aggregate used totals agree with ``capacity - sum(free)``;
* per-machine sequence numbers and the global version never decrease
  between checks.

Checked against the allocation ledger, when one is in play:

* no orphaned records (a registered allocation with no tasks left);
* per machine, the ledger's registered resources fit inside what the
  cell state says is actually allocated (ledger/allocation agreement).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.cellstate import CellState
from repro.core.preemption import AllocationLedger
from repro.sim import Simulator

#: Accounting slack for aggregate float comparisons. Looser than the
#: cell state's per-operation EPSILON because totals accumulate dust
#: over hundreds of thousands of claim/release pairs.
TOLERANCE = 1e-6


class InvariantViolation(RuntimeError):
    """One or more cell-state invariants do not hold."""

    def __init__(self, violations: Sequence[str]) -> None:
        self.violations = list(violations)
        lines = "\n  ".join(self.violations)
        super().__init__(
            f"{len(self.violations)} cell-state invariant violation(s):\n  {lines}"
        )


class CellStateInvariantChecker:
    """Re-verifies cell-state invariants during or after a run.

    ``raise_on_violation=True`` makes :meth:`check` raise
    :class:`InvariantViolation` (the CI gate mode); otherwise
    violations accumulate in :attr:`violations` for inspection.
    """

    def __init__(
        self,
        states: Sequence[CellState],
        ledger: AllocationLedger | None = None,
        raise_on_violation: bool = True,
        tolerance: float = TOLERANCE,
    ) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.states = list(states)
        if not self.states:
            raise ValueError("need at least one cell state to check")
        self.ledger = ledger
        self.raise_on_violation = raise_on_violation
        self.tolerance = tolerance
        self.checks_run = 0
        self.violations: list[str] = []
        self._last_seq: list[np.ndarray | None] = [None] * len(self.states)
        self._last_version: list[int] = [-1] * len(self.states)

    # ------------------------------------------------------------------
    def check(self, now: float = 0.0) -> list[str]:
        """Run every invariant once; returns (and records) violations."""
        found: list[str] = []
        for index, state in enumerate(self.states):
            found.extend(self._check_state(index, state, now))
        if self.ledger is not None:
            found.extend(self._check_ledger(now))
        self.checks_run += 1
        self.violations.extend(found)
        if found and self.raise_on_violation:
            raise InvariantViolation(found)
        return found

    def install(
        self, sim: Simulator, interval: float, horizon: float | None = None
    ) -> None:
        """Check continuously, every ``interval`` simulated seconds."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        sim.every(interval, self._tick, sim, until=horizon)

    def _tick(self, sim: Simulator) -> None:
        self.check(sim.now)

    # ------------------------------------------------------------------
    def _check_state(self, index: int, state: CellState, now: float) -> list[str]:
        found: list[str] = []
        tol = self.tolerance
        prefix = f"t={now:.3f} cell {index}"
        for kind, free, capacity in (
            ("cpu", state.free_cpu, state.cell.cpu_capacity),
            ("mem", state.free_mem, state.cell.mem_capacity),
        ):
            nan = np.flatnonzero(np.isnan(free))
            if nan.size:
                found.append(f"{prefix}: NaN free {kind} on machines {nan.tolist()}")
                continue
            negative = np.flatnonzero(free < -tol)
            if negative.size:
                found.append(
                    f"{prefix}: negative free {kind} on machines "
                    f"{negative.tolist()} (min {float(free.min())})"
                )
            over = np.flatnonzero(free > capacity + tol)
            if over.size:
                found.append(
                    f"{prefix}: free {kind} exceeds capacity on machines "
                    f"{over.tolist()}"
                )
        # Aggregate agreement: used == capacity - free (within dust
        # proportional to cell size).
        slack = tol * max(1.0, state.cell.total_cpu)
        derived_cpu = state.cell.total_cpu - float(state.free_cpu.sum())
        if abs(derived_cpu - state.used_cpu) > slack:
            found.append(
                f"{prefix}: used cpu {state.used_cpu} disagrees with "
                f"capacity - free = {derived_cpu}"
            )
        slack = tol * max(1.0, state.cell.total_mem)
        derived_mem = state.cell.total_mem - float(state.free_mem.sum())
        if abs(derived_mem - state.used_mem) > slack:
            found.append(
                f"{prefix}: used mem {state.used_mem} disagrees with "
                f"capacity - free = {derived_mem}"
            )
        # Monotonicity between checks.
        previous = self._last_seq[index]
        if previous is not None:
            regressed = np.flatnonzero(state.seq < previous)
            if regressed.size:
                found.append(
                    f"{prefix}: sequence numbers decreased on machines "
                    f"{regressed.tolist()}"
                )
        self._last_seq[index] = state.seq.copy()
        if state.version < self._last_version[index]:
            found.append(
                f"{prefix}: version regressed from {self._last_version[index]} "
                f"to {state.version}"
            )
        self._last_version[index] = state.version
        return found

    def _check_ledger(self, now: float) -> list[str]:
        found: list[str] = []
        ledger = self.ledger
        assert ledger is not None
        state = ledger.state
        tol = self.tolerance
        prefix = f"t={now:.3f} ledger"
        for machine in sorted(ledger._by_machine):
            ledger_cpu = 0.0
            ledger_mem = 0.0
            for record in sorted(
                ledger._by_machine[machine].values(), key=lambda r: r.record_id
            ):
                if record.count < 1:
                    found.append(
                        f"{prefix}: orphaned record {record.record_id} on "
                        f"machine {machine} (count={record.count})"
                    )
                    continue
                ledger_cpu += record.total_cpu
                ledger_mem += record.total_mem
            allocated_cpu = float(
                state.cell.cpu_capacity[machine] - state.free_cpu[machine]
            )
            allocated_mem = float(
                state.cell.mem_capacity[machine] - state.free_mem[machine]
            )
            if ledger_cpu > allocated_cpu + tol or ledger_mem > allocated_mem + tol:
                found.append(
                    f"{prefix}: machine {machine} registers "
                    f"({ledger_cpu} cpu, {ledger_mem} mem) in the ledger but "
                    f"the cell state only has ({allocated_cpu} cpu, "
                    f"{allocated_mem} mem) allocated"
                )
        return found
