"""Predictive conflict avoidance for the Omega commit path.

The retry layer (:mod:`repro.faults.retry`) *reacts* to conflicts after
they happen; this module makes the resilience layer proactive. "Early
Scheduling in Parallel State Machine Replication" (PAPERS.md) shows
that classifying work into conflict classes *before* execution beats
optimistic retry under contention, and the paper's own section 8 points
at "techniques from the database community ... to reduce the likelihood
and effects of interference". :class:`ConflictPredictor` is that
predictor for one Omega scheduler:

* **Contention scores.** Every fine-grained conflict event emitted by
  :func:`repro.core.transaction.commit` (stale-sequence and capacity
  rejections, fed machine-by-machine from the batched
  ``_batch_validate`` masks via the ``on_conflict`` hook) bumps an
  exponentially-decayed per-machine score on the *simulated* clock.
* **Hotness view.** :meth:`hot_machines` exposes the top-K machines
  whose decayed score clears a threshold; placement consults it to
  steer :func:`~repro.core.placement.randomized_first_fit` and the
  ordered-fit kernels away from predicted-hot machines (see
  :func:`repro.core.placement.steered_placement` — steering only
  *reorders* candidates, it never excludes the only feasible ones).
* **Conflict probability.** Commit outcomes feed a pair of decayed
  attempt/conflict accumulators whose ratio estimates the scheduler's
  near-term conflict probability; the ``predictive`` retry policy
  (:class:`repro.faults.retry.PredictiveEscalationPolicy`) escalates a
  gang-scheduled job to incremental commits when that estimate crosses
  a configurable threshold — *before* the job has personally starved.

Determinism and crash semantics:

* All state advances only on simulated-time observations — the
  predictor draws no randomness and never reads the wall clock, so a
  predictor-on run is as gate-deterministic as a predictor-off one.
* The predictor is plain picklable data (dicts and floats): sweep
  configs carry only :class:`PredictorConfig` primitives and each
  ``--jobs N`` worker rebuilds identical predictor state from its own
  run's events.
* **A scheduler crash resets its predictor** (see
  :meth:`~repro.core.scheduler.OmegaScheduler.crash`): the contention
  model is in-memory process state, and loses exactly what the
  in-flight transaction loses. Chaos-injected *machine* failures drop
  the failed machine's score — a machine that just lost all its tasks
  is not where contention lives (tested in
  ``tests/faults/test_predictor.py``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PredictorConfig:
    """Picklable recipe for a :class:`ConflictPredictor`.

    Frozen and primitive-only, like :class:`~repro.faults.chaos.
    FaultConfig`, so sweep points cross ``--jobs N`` process boundaries
    unchanged.
    """

    #: Exponential-decay half-life of per-machine contention scores and
    #: of the attempt/conflict accumulators, in simulated seconds.
    halflife: float = 60.0
    #: How many predicted-hot machines placement steers away from.
    top_k: int = 8
    #: Minimum decayed score (in rejected tasks) for a machine to count
    #: as hot. Below it, one stale conflict is noise, not contention.
    hot_threshold: float = 1.0
    #: Predicted conflict probability at which the ``predictive`` retry
    #: policy escalates a gang job to incremental commits.
    escalate_probability: float = 0.25
    #: Minimum decayed attempt mass before the probability estimate is
    #: trusted (otherwise :meth:`ConflictPredictor.conflict_probability`
    #: reports 0.0 — never escalate on a cold model).
    min_attempts: float = 3.0

    def __post_init__(self) -> None:
        if self.halflife <= 0:
            raise ValueError(f"halflife must be positive, got {self.halflife}")
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if self.hot_threshold <= 0:
            raise ValueError(
                f"hot_threshold must be positive, got {self.hot_threshold}"
            )
        if not 0.0 < self.escalate_probability <= 1.0:
            raise ValueError(
                "escalate_probability must be in (0, 1], got "
                f"{self.escalate_probability}"
            )
        if self.min_attempts < 0:
            raise ValueError(
                f"min_attempts must be >= 0, got {self.min_attempts}"
            )


class ConflictPredictor:
    """Per-scheduler contention model over decayed conflict history.

    Scores decay lazily: each machine stores ``(score, stamp)`` and is
    re-based to the current simulated time only when it is observed or
    read, so idle machines cost nothing. The attempt/conflict
    accumulators decay with the same half-life; because both shrink by
    the same factor, their ratio — the conflict-probability estimate —
    is invariant under pure passage of time, which keeps
    :meth:`conflict_probability` a cheap O(1) read.
    """

    def __init__(self, config: PredictorConfig) -> None:
        self.config = config
        #: machine -> (decayed score, simulated time of last re-base).
        self._scores: dict[int, tuple[float, float]] = {}
        self._attempts = 0.0
        self._conflicts = 0.0
        self._stamp = 0.0
        #: Lifetime observation counters (survive decay, reset on crash).
        self.conflicts_observed = 0
        self.commits_observed = 0

    # ------------------------------------------------------------------
    # Decay arithmetic
    # ------------------------------------------------------------------
    def _decay_factor(self, elapsed: float) -> float:
        if elapsed <= 0.0:
            return 1.0
        return 0.5 ** (elapsed / self.config.halflife)

    def score(self, machine: int, now: float) -> float:
        """The machine's contention score decayed to ``now`` (pure read)."""
        entry = self._scores.get(int(machine))
        if entry is None:
            return 0.0
        value, stamp = entry
        return value * self._decay_factor(now - stamp)

    # ------------------------------------------------------------------
    # Feeding (called by the scheduler around transaction.commit)
    # ------------------------------------------------------------------
    def observe_conflict(
        self, machine: int, tasks: int, cause: str, now: float
    ) -> None:
        """One fine-grained conflict: ``tasks`` rejected on ``machine``.

        ``cause`` mirrors the ``txn.conflict`` trace vocabulary
        (``stale_sequence`` / ``partial_capacity`` / ``capacity``);
        stale-sequence rejections are contention by definition, capacity
        rejections are contention *evidence* (someone claimed the room
        first), so every cause feeds the same score.
        """
        del cause  # all causes weigh alike; kept for future shaping
        machine = int(machine)
        weight = float(max(1, tasks))
        self._scores[machine] = (self.score(machine, now) + weight, now)
        self.conflicts_observed += 1

    def observe_commit(self, conflicted: bool, now: float) -> None:
        """One commit outcome for the probability estimate."""
        factor = self._decay_factor(now - self._stamp)
        self._attempts = self._attempts * factor + 1.0
        self._conflicts = self._conflicts * factor + (1.0 if conflicted else 0.0)
        self._stamp = now
        self.commits_observed += 1

    # ------------------------------------------------------------------
    # Views (consulted by placement, the retry policy and telemetry)
    # ------------------------------------------------------------------
    def hot_machines(self, now: float) -> tuple[int, ...]:
        """Top-K predicted-hot machines, hottest first.

        A pure read (telemetry samplers call it too, and sampling must
        never perturb scheduling decisions). Deterministic order:
        descending decayed score, machine id as the tie-break. The score
        table is bounded by the number of machines, so nothing is ever
        pruned — an idle entry just decays toward zero.
        """
        config = self.config
        if not self._scores:
            return ()
        hot: list[tuple[float, int]] = []
        for machine, (value, stamp) in sorted(self._scores.items()):
            decayed = value * self._decay_factor(now - stamp)
            if decayed >= config.hot_threshold:
                hot.append((-decayed, machine))
        hot.sort()
        return tuple(machine for _, machine in hot[: config.top_k])

    def conflict_probability(self) -> float:
        """Estimated probability that the next commit conflicts.

        The ratio of the decayed conflict and attempt masses as of the
        last observation (both decay identically, so the ratio needs no
        re-basing). Reports 0.0 until ``min_attempts`` of decayed
        attempt mass has accumulated.
        """
        if self._attempts < max(self.config.min_attempts, 1e-12):
            return 0.0
        return min(1.0, self._conflicts / self._attempts)

    @property
    def tracked_machines(self) -> int:
        """Machines currently carrying a (possibly decayed) score."""
        return len(self._scores)

    # ------------------------------------------------------------------
    # Fault hooks (chaos engine and scheduler crash path)
    # ------------------------------------------------------------------
    def note_machine_failed(self, machine: int) -> None:
        """A chaos-injected machine failure: drop its contention score.

        The machine just lost every running task; whatever contention it
        carried is gone with them, and steering away from a newly-empty
        machine would be exactly backwards.
        """
        self._scores.pop(int(machine), None)

    def reset(self) -> None:
        """Scheduler crash semantics: the in-memory model is lost.

        Everything — scores, probability accumulators, lifetime counters
        — returns to the just-built state, mirroring the loss of the
        in-flight transaction. The restarted scheduler re-learns from
        the conflicts it sees after restart.
        """
        self._scores.clear()
        self._attempts = 0.0
        self._conflicts = 0.0
        self._stamp = 0.0
        self.conflicts_observed = 0
        self.commits_observed = 0

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """A comparable snapshot of all predictor state (tests, gauges)."""
        return {
            "scores": dict(self._scores),
            "attempts": self._attempts,
            "conflicts": self._conflicts,
            "stamp": self._stamp,
            "conflicts_observed": self.conflicts_observed,
            "commits_observed": self.commits_observed,
        }
