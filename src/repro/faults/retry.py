"""Pluggable Omega conflict-retry policies.

The paper's schedulers handle a commit conflict by resyncing and trying
again immediately (section 3.4) — and section 3.6 observes where that
breaks down: "a large job can starve" when every attempt conflicts, and
the remedy the authors adopt is "incremental transactions, which accept
all but the conflicting changes". This module makes that whole design
space a first-class, swappable policy:

``immediate``
    The paper's behaviour: retry at the head of the queue with no
    delay, bounded only by the scheduler's overall attempt limit.
``capped``
    Immediate retries up to ``max_conflict_retries`` conflicts, then
    the job is **abandoned** — an explicit terminal state counted
    separately in :class:`repro.metrics.MetricsCollector`.
``backoff``
    Exponential backoff with deterministic jitter: the k-th conflict
    delays the retry by ``base_delay * factor**(k-1)`` (clamped to
    ``max_delay``), stretched by a jitter factor drawn from the
    policy's named random stream. OCC contention control, per the
    paper's section 8 nod to "techniques from the database community".
``starvation``
    Backoff plus the section 3.6 escalation: after ``escalate_after``
    conflicts the job is switched to incremental commit mode (gang
    all-or-nothing semantics are dropped so partial progress lands),
    and a hard conflict cap still bounds the loop.

Every policy is a deterministic function of (job state, its own RNG
stream): two schedulers built from the same
:class:`RetryPolicyConfig` and the same ``derive_seed``/``fork`` stream
produce identical decision sequences, which is what lets fault-injected
sweeps pass the runtime determinism gate — including under ``--jobs N``
parallel execution, where each worker rebuilds its policies from the
picklable config.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

import numpy as np

from repro.workload.job import Job


class RetryAction(enum.Enum):
    """What to do with a job whose commit just conflicted."""

    RETRY = "retry"
    ABANDON = "abandon"


@dataclass(frozen=True)
class RetryDecision:
    """One policy verdict for one conflicted attempt."""

    action: RetryAction
    #: Simulated seconds to wait before requeueing (0 = immediately).
    delay: float = 0.0
    #: Requeue at the head of the queue (the paper's behaviour) or the
    #: back (let other jobs through first).
    at_front: bool = True
    #: Switch the job to incremental commit mode from now on (the
    #: section 3.6 starvation remedy for gang-scheduled jobs).
    escalate: bool = False


#: The decision that reproduces the paper byte-for-byte.
IMMEDIATE_RETRY = RetryDecision(action=RetryAction.RETRY)


class RetryPolicy(abc.ABC):
    """Decides how a scheduler handles conflict retries for one job.

    Policies see the job *after* its conflict counter was bumped, so
    ``job.conflicts`` is 1 on the first conflicted attempt.
    """

    #: Stable identifier used in config, tables and trace events.
    name: str = ""

    @abc.abstractmethod
    def decide(self, job: Job) -> RetryDecision:
        """The verdict for ``job``'s latest conflicted attempt."""


class ImmediateRetryPolicy(RetryPolicy):
    """The paper's default: retry now, at the head of the queue.

    The scheduler's ``attempt_limit`` (section 4's 1,000-attempt
    abandonment ceiling) remains the only bound; this policy itself
    never abandons.
    """

    name = "immediate"

    def decide(self, job: Job) -> RetryDecision:
        return IMMEDIATE_RETRY


class CappedRetryPolicy(RetryPolicy):
    """Immediate retries up to a conflict ceiling, then abandon.

    Bounds the unbounded-retry hazard: a permanently-conflicting job
    terminates in the explicit ``abandoned`` state (counted under
    ``jobs_abandoned_conflict``) instead of burning attempts until the
    generic limit.
    """

    name = "capped"

    def __init__(self, max_conflict_retries: int = 50) -> None:
        if max_conflict_retries < 1:
            raise ValueError(
                f"max_conflict_retries must be >= 1, got {max_conflict_retries}"
            )
        self.max_conflict_retries = max_conflict_retries

    def decide(self, job: Job) -> RetryDecision:
        if job.conflicts > self.max_conflict_retries:
            return RetryDecision(action=RetryAction.ABANDON)
        return IMMEDIATE_RETRY


class ExponentialBackoffPolicy(RetryPolicy):
    """Exponential backoff with deterministic jitter.

    The nominal delay after the k-th conflict is
    ``base_delay * factor**(k-1)``, clamped to ``max_delay`` — a
    monotone, bounded sequence. Jitter stretches each delay by a factor
    in ``[1, 1 + jitter)`` drawn from ``rng``; keeping
    ``jitter <= factor - 1`` preserves (non-strict) monotonicity.
    Conflicted jobs requeue at the *back*: a backing-off job must not
    block the queue head while it waits.
    """

    name = "backoff"

    def __init__(
        self,
        rng: np.random.Generator,
        base_delay: float = 1.0,
        factor: float = 2.0,
        max_delay: float = 60.0,
        jitter: float = 0.5,
        max_conflict_retries: int | None = None,
    ) -> None:
        if base_delay <= 0:
            raise ValueError(f"base_delay must be positive, got {base_delay}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if max_delay < base_delay:
            raise ValueError(
                f"max_delay {max_delay} must be >= base_delay {base_delay}"
            )
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        if max_conflict_retries is not None and max_conflict_retries < 1:
            raise ValueError(
                f"max_conflict_retries must be >= 1, got {max_conflict_retries}"
            )
        self._rng = rng
        self.base_delay = base_delay
        self.factor = factor
        self.max_delay = max_delay
        self.jitter = jitter
        self.max_conflict_retries = max_conflict_retries

    def nominal_delay(self, conflicts: int) -> float:
        """The jitter-free delay after the ``conflicts``-th conflict."""
        if conflicts < 1:
            raise ValueError(f"conflicts must be >= 1, got {conflicts}")
        return min(self.base_delay * self.factor ** (conflicts - 1), self.max_delay)

    def decide(self, job: Job) -> RetryDecision:
        if (
            self.max_conflict_retries is not None
            and job.conflicts > self.max_conflict_retries
        ):
            return RetryDecision(action=RetryAction.ABANDON)
        delay = self.nominal_delay(job.conflicts)
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * float(self._rng.random())
        return RetryDecision(action=RetryAction.RETRY, delay=delay, at_front=False)


class StarvationEscalationPolicy(RetryPolicy):
    """Backoff plus the paper's section 3.6 starvation remedy.

    After ``escalate_after`` conflicts the job is switched to
    incremental commit mode — a gang-scheduled (all-or-nothing) job
    stops being starved by repeated whole-transaction aborts and starts
    landing the non-conflicting subset of its tasks. A hard conflict
    cap (``max_conflict_retries``) still guarantees termination for
    adversarial conflict schedules where even incremental commits make
    no progress.
    """

    name = "starvation"

    def __init__(
        self,
        rng: np.random.Generator,
        escalate_after: int = 3,
        base_delay: float = 0.5,
        factor: float = 2.0,
        max_delay: float = 30.0,
        jitter: float = 0.5,
        max_conflict_retries: int = 100,
    ) -> None:
        if escalate_after < 1:
            raise ValueError(f"escalate_after must be >= 1, got {escalate_after}")
        self.escalate_after = escalate_after
        self._backoff = ExponentialBackoffPolicy(
            rng,
            base_delay=base_delay,
            factor=factor,
            max_delay=max_delay,
            jitter=jitter,
            max_conflict_retries=max_conflict_retries,
        )
        self.max_conflict_retries = max_conflict_retries

    def decide(self, job: Job) -> RetryDecision:
        decision = self._backoff.decide(job)
        if decision.action is RetryAction.ABANDON:
            return decision
        if job.conflicts >= self.escalate_after and not job.escalated:
            return RetryDecision(
                action=RetryAction.RETRY,
                delay=decision.delay,
                at_front=decision.at_front,
                escalate=True,
            )
        return decision


class PredictiveEscalationPolicy(RetryPolicy):
    """Predictive gang→incremental escalation (proactive section 3.6).

    :class:`StarvationEscalationPolicy` waits for a job to personally
    rack up ``escalate_after`` conflicts before dropping its gang
    semantics; this policy additionally consults the scheduler's
    :class:`~repro.faults.predictor.ConflictPredictor` and escalates as
    soon as the *predicted* conflict probability crosses
    ``escalate_probability`` — the job escalates on its first conflict
    if the commit path is already known-contended, before starving. The
    reactive ``escalate_after`` trigger is kept as a backstop, so the
    policy is never *later* to escalate than the starvation baseline:
    in a quiet cell (predictor cold, probability near zero) the two
    behave identically, and under contention the predictive trigger
    fires first. Backoff delays and the hard conflict cap come from the
    same machinery as the reactive policies, so the two are directly
    comparable in the escalation-latency histogram
    (``jobs.attempts_until_escalation`` in ``run.metrics``).

    Like the other four policies it is a deterministic function of (job
    state, predictor state, its own RNG stream), and the whole object —
    predictor included — pickles across ``--jobs N`` workers.
    """

    name = "predictive"

    def __init__(
        self,
        rng: np.random.Generator,
        predictor: "ConflictPredictor | None" = None,
        escalate_probability: float = 0.25,
        escalate_after: int = 3,
        base_delay: float = 0.5,
        factor: float = 2.0,
        max_delay: float = 30.0,
        jitter: float = 0.5,
        max_conflict_retries: int = 100,
    ) -> None:
        if not 0.0 < escalate_probability <= 1.0:
            raise ValueError(
                "escalate_probability must be in (0, 1], got "
                f"{escalate_probability}"
            )
        if escalate_after < 1:
            raise ValueError(f"escalate_after must be >= 1, got {escalate_after}")
        self.predictor = predictor
        self.escalate_probability = escalate_probability
        self.escalate_after = escalate_after
        self._backoff = ExponentialBackoffPolicy(
            rng,
            base_delay=base_delay,
            factor=factor,
            max_delay=max_delay,
            jitter=jitter,
            max_conflict_retries=max_conflict_retries,
        )
        self.max_conflict_retries = max_conflict_retries

    def decide(self, job: Job) -> RetryDecision:
        decision = self._backoff.decide(job)
        if decision.action is RetryAction.ABANDON:
            return decision
        if not job.escalated:
            predicted = (
                self.predictor.conflict_probability()
                if self.predictor is not None
                else 0.0
            )
            if (
                predicted >= self.escalate_probability
                or job.conflicts >= self.escalate_after
            ):
                return RetryDecision(
                    action=RetryAction.RETRY,
                    delay=decision.delay,
                    at_front=decision.at_front,
                    escalate=True,
                )
        return decision


#: Policy names accepted by :class:`RetryPolicyConfig` and the CLI.
RETRY_POLICIES = ("immediate", "capped", "backoff", "starvation", "predictive")


@dataclass(frozen=True)
class RetryPolicyConfig:
    """Picklable recipe for building a :class:`RetryPolicy`.

    Sweep points must cross process boundaries under ``--jobs N``, so
    configs carry only primitives; each worker builds the stateful
    policy from its run's own named random stream.
    """

    kind: str = "immediate"
    max_conflict_retries: int | None = None
    base_delay: float = 1.0
    factor: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.5
    escalate_after: int = 3
    #: ``predictive`` only: predicted conflict probability at which a
    #: gang job escalates to incremental commits (the reactive
    #: ``escalate_after`` trigger is kept as a backstop).
    escalate_probability: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in RETRY_POLICIES:
            raise ValueError(
                f"unknown retry policy {self.kind!r}; choose from {RETRY_POLICIES}"
            )

    def build(
        self,
        rng: np.random.Generator,
        predictor: "ConflictPredictor | None" = None,
    ) -> RetryPolicy:
        """Build the policy, drawing jitter from ``rng`` (a named
        :class:`~repro.sim.random.RandomStreams` stream).

        ``predictor`` is the owning scheduler's
        :class:`~repro.faults.predictor.ConflictPredictor`; only the
        ``predictive`` policy consumes it (the builders in
        :mod:`repro.experiments.common` share one predictor instance
        between a scheduler's placement steering and its retry policy).
        """
        if self.kind == "immediate":
            return ImmediateRetryPolicy()
        if self.kind == "capped":
            return CappedRetryPolicy(
                max_conflict_retries=self.max_conflict_retries or 50
            )
        if self.kind == "backoff":
            return ExponentialBackoffPolicy(
                rng,
                base_delay=self.base_delay,
                factor=self.factor,
                max_delay=self.max_delay,
                jitter=self.jitter,
                max_conflict_retries=self.max_conflict_retries,
            )
        if self.kind == "predictive":
            return PredictiveEscalationPolicy(
                rng,
                predictor=predictor,
                escalate_probability=self.escalate_probability,
                escalate_after=self.escalate_after,
                base_delay=self.base_delay,
                factor=self.factor,
                max_delay=self.max_delay,
                jitter=self.jitter,
                max_conflict_retries=self.max_conflict_retries or 100,
            )
        return StarvationEscalationPolicy(
            rng,
            escalate_after=self.escalate_after,
            base_delay=self.base_delay,
            factor=self.factor,
            max_delay=self.max_delay,
            jitter=self.jitter,
            max_conflict_retries=self.max_conflict_retries or 100,
        )
