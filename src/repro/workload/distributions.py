"""Distribution samplers for synthetic workload generation.

The lightweight simulator is "driven by a workload derived from real
workloads ... we analyze the workloads to obtain distributions of
parameter values such as the number of tasks per job, the task duration,
the per-task resources and job inter-arrival times, and then synthesize
jobs and tasks that conform to these distributions" (paper section 4).
These sampler classes are that distribution vocabulary.

All samplers share a tiny interface: ``sample(rng)`` for one draw,
``sample_many(rng, n)`` for a vector of draws, and ``mean()`` for the
analytic mean where known (used to derive offered-load estimates).
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

import numpy as np


@runtime_checkable
class Sampler(Protocol):
    """Protocol every distribution sampler implements."""

    def sample(self, rng: np.random.Generator) -> float: ...

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray: ...

    def mean(self) -> float: ...


class Constant:
    """Degenerate distribution: always ``value``."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


class Exponential:
    """Exponential distribution with the given ``rate`` (events/second).

    Job arrivals are Poisson processes, so inter-arrival gaps are
    exponential; ``rate`` is the paper's lambda_jobs.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=n)

    def mean(self) -> float:
        return 1.0 / self.rate

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate!r})"


class LogNormal:
    """Log-normal distribution parameterized by *median* and *sigma*.

    Medians are the natural way to talk about heavy-tailed cluster
    quantities ("batch jobs have a median runtime of minutes"); sigma is
    the shape parameter of the underlying normal. Optional ``low`` and
    ``high`` clip the samples (e.g. task CPU cannot exceed a machine).
    """

    def __init__(
        self,
        median: float,
        sigma: float,
        low: float | None = None,
        high: float | None = None,
    ) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if low is not None and high is not None and low > high:
            raise ValueError(f"low={low} > high={high}")
        self.median = float(median)
        self.sigma = float(sigma)
        self.low = low
        self.high = high
        self._mu = math.log(median)

    def _clip(self, values: np.ndarray) -> np.ndarray:
        if self.low is not None or self.high is not None:
            return np.clip(values, self.low, self.high)
        return values

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._clip(rng.lognormal(self._mu, self.sigma, size=1))[0])

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self._clip(rng.lognormal(self._mu, self.sigma, size=n))

    def mean(self) -> float:
        """Analytic mean of the *unclipped* distribution.

        For clipped samplers this is an upper-side approximation; the
        workload-sanity tests use Monte Carlo means where precision
        matters.
        """
        return self.median * math.exp(self.sigma**2 / 2.0)

    def __repr__(self) -> str:
        return (
            f"LogNormal(median={self.median!r}, sigma={self.sigma!r}, "
            f"low={self.low!r}, high={self.high!r})"
        )


class DiscretizedLogNormal:
    """Log-normal rounded to integers >= ``low`` (task counts, worker counts).

    Produces the heavy-tailed tasks-per-job distribution of Figure 4:
    most jobs are small, the 99.9th percentile reaches thousands.
    """

    def __init__(
        self, median: float, sigma: float, low: int = 1, high: int | None = None
    ) -> None:
        self._inner = LogNormal(median, sigma)
        if low < 1:
            raise ValueError(f"low must be >= 1, got {low}")
        if high is not None and high < low:
            raise ValueError(f"high={high} < low={low}")
        self.low = int(low)
        self.high = high

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_many(rng, 1)[0])

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        values = np.rint(self._inner.sample_many(rng, n))
        values = np.maximum(values, self.low)
        if self.high is not None:
            values = np.minimum(values, self.high)
        return values

    def mean(self) -> float:
        return max(float(self.low), self._inner.mean())

    def __repr__(self) -> str:
        return (
            f"DiscretizedLogNormal(median={self._inner.median!r}, "
            f"sigma={self._inner.sigma!r}, low={self.low!r}, high={self.high!r})"
        )


class Uniform:
    """Uniform distribution on ``[low, high)``."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ValueError(f"high={high} < low={low}")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class WeightedChoice:
    """Discrete distribution over explicit values with weights.

    Used e.g. for MapReduce configured worker counts, where the paper
    reports frequently observed values of 5, 11, 200 and 1,000.
    """

    def __init__(self, values: Sequence[float], weights: Sequence[float]) -> None:
        if len(values) != len(weights):
            raise ValueError("values and weights must have the same length")
        if not values:
            raise ValueError("need at least one value")
        weight_array = np.asarray(weights, dtype=np.float64)
        if (weight_array < 0).any() or weight_array.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to > 0")
        self.values = np.asarray(values, dtype=np.float64)
        self.probabilities = weight_array / weight_array.sum()

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values, p=self.probabilities))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(self.values, p=self.probabilities, size=n)

    def mean(self) -> float:
        return float(np.dot(self.values, self.probabilities))

    def __repr__(self) -> str:
        return f"WeightedChoice(values={self.values.tolist()!r})"


class Mixture:
    """A weighted mixture of component samplers."""

    def __init__(self, components: Sequence[Sampler], weights: Sequence[float]) -> None:
        if len(components) != len(weights):
            raise ValueError("components and weights must have the same length")
        if not components:
            raise ValueError("need at least one component")
        weight_array = np.asarray(weights, dtype=np.float64)
        if (weight_array < 0).any() or weight_array.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to > 0")
        self.components = list(components)
        self.probabilities = weight_array / weight_array.sum()

    def sample(self, rng: np.random.Generator) -> float:
        index = int(rng.choice(len(self.components), p=self.probabilities))
        return self.components[index].sample(rng)

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        indices = rng.choice(len(self.components), p=self.probabilities, size=n)
        out = np.empty(n, dtype=np.float64)
        for component_index, component in enumerate(self.components):
            mask = indices == component_index
            count = int(mask.sum())
            if count:
                out[mask] = component.sample_many(rng, count)
        return out

    def mean(self) -> float:
        return float(
            sum(
                p * component.mean()
                for p, component in zip(self.probabilities, self.components)
            )
        )

    def __repr__(self) -> str:
        return f"Mixture(components={self.components!r})"
