"""Sanity validation of cluster presets.

The presets substitute for proprietary traces, so their internal
consistency matters: batch must dominate job counts, offered load must
fit the cell, and the scheduler-level dynamics (saturation factors)
must stay in the regime the paper's figures explore. This module turns
those checks — which the test suite also enforces — into a user-facing
report, exposed as ``omega-sim validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.schedulers.base import DEFAULT_T_JOB, DEFAULT_T_TASK
from repro.workload.clusters import PRESETS, ClusterPreset


@dataclass
class PresetReport:
    """Derived sanity quantities for one cluster preset."""

    name: str
    num_machines: int
    total_cpu: float
    batch_job_fraction: float
    batch_offered_cpu_share: float
    batch_busyness_estimate: float
    saturation_factor_estimate: float
    service_busyness_at_100s: float
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.warnings

    def as_row(self) -> dict:
        return {
            "cluster": self.name,
            "machines": self.num_machines,
            "batch_job_frac": self.batch_job_fraction,
            "batch_load_share": self.batch_offered_cpu_share,
            "batch_busyness_1x": self.batch_busyness_estimate,
            "saturation_est": self.saturation_factor_estimate,
            "svc_busy@t_job=100s": self.service_busyness_at_100s,
            "warnings": "; ".join(self.warnings) or "-",
        }


def validate_preset(
    preset: ClusterPreset,
    t_job: float = DEFAULT_T_JOB,
    t_task: float = DEFAULT_T_TASK,
) -> PresetReport:
    """Compute the report and attach warnings for out-of-regime values."""
    warnings: list[str] = []

    total_rate = preset.batch.arrival_rate + preset.service.arrival_rate
    batch_job_fraction = preset.batch.arrival_rate / total_rate
    if batch_job_fraction <= 0.8:
        warnings.append(
            f"batch is only {batch_job_fraction:.0%} of jobs (paper: >80%)"
        )

    headroom = preset.total_cpu * (1.0 - preset.initial_utilization)
    offered = preset.batch.mean_offered_cpu()
    batch_share = offered / preset.total_cpu
    if offered >= headroom:
        warnings.append(
            f"steady batch demand ({offered:.0f} cores) exceeds headroom "
            f"({headroom:.0f} cores) above the initial fill"
        )

    busyness = preset.batch.arrival_rate * preset.batch.mean_decision_time(
        t_job, t_task
    )
    saturation = float("inf") if busyness == 0 else 1.0 / busyness
    if busyness >= 1.0:
        warnings.append(
            f"batch scheduler saturated at 1x load (busyness {busyness:.2f})"
        )
    elif saturation > 50:
        warnings.append(
            f"batch scheduler nearly idle (saturation at {saturation:.0f}x; "
            "load-scaling sweeps will be flat)"
        )

    service_busy_100 = preset.service.arrival_rate * preset.service.mean_decision_time(
        100.0, t_task
    )
    if service_busy_100 > 2.0:
        warnings.append(
            "service scheduler oversaturated at t_job=100s "
            f"(busyness {service_busy_100:.1f}); decision-time sweeps will "
            "clip early"
        )

    return PresetReport(
        name=preset.name,
        num_machines=preset.num_machines,
        total_cpu=preset.total_cpu,
        batch_job_fraction=batch_job_fraction,
        batch_offered_cpu_share=batch_share,
        batch_busyness_estimate=busyness,
        saturation_factor_estimate=saturation,
        service_busyness_at_100s=service_busy_100,
        warnings=warnings,
    )


def validate_all(
    presets: dict[str, ClusterPreset] | None = None,
) -> list[PresetReport]:
    """Validate every registered preset (or a supplied mapping)."""
    if presets is None:
        presets = PRESETS
    return [validate_preset(preset) for preset in presets.values()]
