"""Workload model: jobs, tasks, empirical distributions, cluster presets.

The paper drives its lightweight simulator with synthetic jobs sampled
from empirical distributions measured on three Google production cells
(clusters A, B and C, May 2011). The production traces are proprietary,
so `repro.workload.clusters` defines parameterized presets whose
distributions match the published shapes (Figures 2-4); see DESIGN.md
section "Substitutions".
"""

from repro.workload.distributions import (
    Constant,
    DiscretizedLogNormal,
    Exponential,
    LogNormal,
    Mixture,
    Sampler,
    Uniform,
    WeightedChoice,
)
from repro.workload.clusters import (
    CLUSTER_A,
    CLUSTER_B,
    CLUSTER_C,
    CLUSTER_D,
    PRESETS,
    CharacterizationParams,
    ClusterPreset,
    WorkloadParams,
    preset_by_name,
)
from repro.workload.generator import InitialFill, WorkloadGenerator
from repro.workload.job import Job, JobType

__all__ = [
    "Job",
    "JobType",
    "Sampler",
    "Constant",
    "Exponential",
    "LogNormal",
    "DiscretizedLogNormal",
    "Uniform",
    "WeightedChoice",
    "Mixture",
    "WorkloadParams",
    "CharacterizationParams",
    "ClusterPreset",
    "CLUSTER_A",
    "CLUSTER_B",
    "CLUSTER_C",
    "CLUSTER_D",
    "PRESETS",
    "preset_by_name",
    "WorkloadGenerator",
    "InitialFill",
]
