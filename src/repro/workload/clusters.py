"""Cluster presets A, B, C, D.

The paper characterizes three Google production cells (section 2.1):

* **A** — a medium-sized, fairly busy cluster,
* **B** — one of the larger clusters in use at Google,
* **C** — the cluster whose scheduler trace was published (Reiss et al.),
* **D** — (section 6.2) a small, lightly-loaded cluster, about a quarter
  of the size of cluster C.

The actual traces are proprietary; these presets substitute parameterized
distributions tuned to the published *shapes* (DESIGN.md, "Substitutions"):

* > 80 % of jobs are batch, but 55-80 % of resources go to service jobs
  (Figure 2);
* service jobs run orders of magnitude longer than batch jobs, with a
  tail that exceeds the 30-day observation window (Figure 3);
* tasks-per-job is heavy-tailed, reaching thousands of tasks beyond the
  99th percentile (Figure 4);
* batch inter-arrival times are seconds; service inter-arrivals are
  minutes (Figure 3).

Each preset carries two parameter sets:

* ``batch`` / ``service`` (:class:`WorkloadParams`) drive the *simulators*.
  Their arrival rates and decision-time interactions reproduce the
  scheduler-level dynamics of Figures 5-14 (e.g. the Figure 8 saturation
  ordering A < B < C). Durations are capped so a 24-hour simulation
  reaches a quasi-steady state.
* ``characterization`` (:class:`CharacterizationParams`) carries the
  full-tailed distributions used to regenerate the workload
  characterization Figures 2-4 over the paper's 30-day window.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster import Cell
from repro.workload.distributions import (
    DiscretizedLogNormal,
    LogNormal,
    Sampler,
)

#: Cap on simulated task durations (3 days). Tasks outliving the
#: simulation horizon never free their resources anyway; the cap keeps
#: offered-load accounting finite.
SIM_DURATION_CAP = 3 * 24 * 3600.0

#: The paper's 30-day trace window (Figures 3-4 x-axis range).
TRACE_WINDOW = 30 * 24 * 3600.0


@dataclass(frozen=True)
class WorkloadParams:
    """Synthetic-workload parameters for one job type on one cluster."""

    arrival_rate: float  # jobs per second (the paper's lambda_jobs)
    tasks_per_job: Sampler
    task_duration: Sampler  # seconds
    cpu_per_task: Sampler  # cores
    mem_per_task: Sampler  # GB

    def mean_offered_cpu(self) -> float:
        """Long-run mean CPU demand (cores) offered by this stream.

        little's-law style estimate: rate x tasks x cpu x duration.
        Uses analytic sampler means, so treat as an estimate.
        """
        return (
            self.arrival_rate
            * self.tasks_per_job.mean()
            * self.cpu_per_task.mean()
            * self.task_duration.mean()
        )

    def mean_decision_time(self, t_job: float, t_task: float) -> float:
        """Expected per-job scheduler decision time under the paper's
        linear model t_decision = t_job + t_task * tasks_per_job."""
        return t_job + t_task * self.tasks_per_job.mean()

    def scaled_rate(self, factor: float) -> "WorkloadParams":
        """A copy with the arrival rate multiplied by ``factor``
        (Figure 8/9's relative lambda_jobs knob)."""
        if factor <= 0:
            raise ValueError(f"rate factor must be positive, got {factor}")
        return replace(self, arrival_rate=self.arrival_rate * factor)


@dataclass(frozen=True)
class CharacterizationParams:
    """Full-tailed per-type distributions for the Figure 2-4 workload
    characterization (30-day window, durations uncapped)."""

    batch_arrival_rate: float
    service_arrival_rate: float
    batch_tasks: Sampler
    service_tasks: Sampler
    batch_runtime: Sampler
    service_runtime: Sampler
    batch_cpu: Sampler
    service_cpu: Sampler
    batch_mem: Sampler
    service_mem: Sampler


@dataclass(frozen=True)
class ClusterPreset:
    """Everything needed to instantiate one of the paper's clusters."""

    name: str
    num_machines: int
    cpu_per_machine: float
    mem_per_machine: float
    batch: WorkloadParams
    service: WorkloadParams
    characterization: CharacterizationParams
    initial_utilization: float = 0.60  # paper section 4: ~60 % fill
    description: str = ""

    def cell(self) -> Cell:
        """Build the homogeneous cell for the lightweight simulator."""
        return Cell.homogeneous(
            self.num_machines,
            self.cpu_per_machine,
            self.mem_per_machine,
            name=self.name,
        )

    @property
    def total_cpu(self) -> float:
        return self.num_machines * self.cpu_per_machine

    @property
    def total_mem(self) -> float:
        return self.num_machines * self.mem_per_machine

    def scaled(self, factor: float) -> "ClusterPreset":
        """Scale the cell size and arrival rates together by ``factor``.

        Shrinking a preset this way preserves utilization and relative
        scheduler load while making simulations cheaper; benchmark
        defaults use factors < 1 so the suite runs on one CPU.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        machines = max(1, round(self.num_machines * factor))
        achieved = machines / self.num_machines
        return replace(
            self,
            name=f"{self.name}x{factor:g}",
            num_machines=machines,
            batch=self.batch.scaled_rate(achieved),
            service=self.service.scaled_rate(achieved),
            characterization=replace(
                self.characterization,
                batch_arrival_rate=self.characterization.batch_arrival_rate * achieved,
                service_arrival_rate=self.characterization.service_arrival_rate
                * achieved,
            ),
        )


def _make_characterization(
    batch_rate: float, service_rate: float
) -> CharacterizationParams:
    """Shared Figure 2-4 distribution shapes; rates vary per cluster.

    Tuned so that (validated in tests/benchmarks):
    batch is > 80 % of jobs; service holds 55-80 % of requested
    CPU-core-seconds over a 30-day window; 5-10 % of service jobs outlive
    the 30-day window; tasks-per-job tails reach thousands.
    """
    return CharacterizationParams(
        batch_arrival_rate=batch_rate,
        service_arrival_rate=service_rate,
        batch_tasks=DiscretizedLogNormal(median=20, sigma=1.5, low=1, high=20000),
        service_tasks=DiscretizedLogNormal(median=4, sigma=1.2, low=1, high=3000),
        batch_runtime=LogNormal(median=600.0, sigma=1.8, low=1.0),
        service_runtime=LogNormal(median=12 * 3600.0, sigma=3.0, low=30.0),
        batch_cpu=LogNormal(median=0.3, sigma=0.5, low=0.05, high=4.0),
        service_cpu=LogNormal(median=0.5, sigma=0.5, low=0.05, high=4.0),
        batch_mem=LogNormal(median=1.0, sigma=0.5, low=0.05, high=16.0),
        service_mem=LogNormal(median=1.5, sigma=0.5, low=0.05, high=16.0),
    )


def _batch_params(rate: float, tasks_median: float) -> WorkloadParams:
    return WorkloadParams(
        arrival_rate=rate,
        tasks_per_job=DiscretizedLogNormal(median=tasks_median, sigma=1.5, low=1, high=5000),
        task_duration=LogNormal(median=40.0, sigma=1.3, low=5.0, high=SIM_DURATION_CAP),
        cpu_per_task=LogNormal(median=0.3, sigma=0.5, low=0.05, high=2.0),
        mem_per_task=LogNormal(median=1.0, sigma=0.5, low=0.05, high=8.0),
    )


def _service_params(rate: float) -> WorkloadParams:
    return WorkloadParams(
        arrival_rate=rate,
        tasks_per_job=DiscretizedLogNormal(median=5, sigma=1.2, low=1, high=1000),
        task_duration=LogNormal(
            median=4 * 3600.0, sigma=1.5, low=60.0, high=SIM_DURATION_CAP
        ),
        cpu_per_task=LogNormal(median=0.5, sigma=0.5, low=0.05, high=2.0),
        mem_per_task=LogNormal(median=1.5, sigma=0.5, low=0.05, high=8.0),
    )


CLUSTER_A = ClusterPreset(
    name="A",
    num_machines=1500,
    cpu_per_machine=4.0,
    mem_per_machine=16.0,
    batch=_batch_params(rate=1.5, tasks_median=10),
    service=_service_params(rate=0.006),
    characterization=_make_characterization(batch_rate=0.30, service_rate=0.025),
    description="medium-sized, fairly busy cluster",
)

CLUSTER_B = ClusterPreset(
    name="B",
    num_machines=3000,
    cpu_per_machine=4.0,
    mem_per_machine=16.0,
    batch=_batch_params(rate=0.75, tasks_median=8),
    service=_service_params(rate=0.008),
    characterization=_make_characterization(batch_rate=0.60, service_rate=0.05),
    description="one of the larger clusters in use at Google",
)

CLUSTER_C = ClusterPreset(
    name="C",
    num_machines=2500,
    cpu_per_machine=4.0,
    mem_per_machine=16.0,
    batch=_batch_params(rate=0.47, tasks_median=8),
    service=_service_params(rate=0.004),
    characterization=_make_characterization(batch_rate=0.40, service_rate=0.033),
    description="the cluster with the published public trace",
)

CLUSTER_D = ClusterPreset(
    name="D",
    num_machines=625,
    cpu_per_machine=4.0,
    mem_per_machine=16.0,
    batch=_batch_params(rate=0.10, tasks_median=8),
    service=_service_params(rate=0.002),
    characterization=_make_characterization(batch_rate=0.08, service_rate=0.007),
    initial_utilization=0.25,
    description="small, lightly-loaded cluster, about a quarter of C",
)

PRESETS: dict[str, ClusterPreset] = {
    preset.name: preset for preset in (CLUSTER_A, CLUSTER_B, CLUSTER_C, CLUSTER_D)
}


def preset_by_name(name: str) -> ClusterPreset:
    """Look up a preset by cluster letter (case-insensitive)."""
    key = name.strip().upper()
    try:
        return PRESETS[key]
    except KeyError:
        raise KeyError(
            f"unknown cluster preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
