"""Jobs and tasks.

A job is one or more tasks (paper section 2.1: "sometimes thousands of
tasks"). Following the paper's observation that "most jobs in our
real-life workloads have tasks with identical requirements", every task
of a job shares the same CPU/RAM request and duration; a job therefore
carries per-task requirements plus a task count, and per-task identity
only materializes as placement claims.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.cellstate import EPSILON


class JobType(enum.Enum):
    """The paper's two-way workload split (section 2.1).

    BATCH: performs a computation and finishes; fast turnaround matters.
    SERVICE: long-running end-user or infrastructure service; careful
    placement matters.
    """

    BATCH = "batch"
    SERVICE = "service"


#: Default precedence bands by job type. Mirrors the paper's workload
#: split, where "we put all low priority jobs and those marked as 'best
#: effort' or 'batch' into the batch category" — service jobs sit in
#: the higher-precedence bands.
DEFAULT_PRECEDENCE = {JobType.BATCH: 0, JobType.SERVICE: 10}

_job_ids = itertools.count(1)


def reset_job_ids() -> None:
    """Reset the global job-id counter (test isolation helper)."""
    global _job_ids
    _job_ids = itertools.count(1)


@dataclass
class Job:
    """A schedulable job: ``num_tasks`` identical tasks.

    The scheduling-progress fields (``unplaced_tasks``, ``attempts``,
    ``conflicts``, timing marks) are written by schedulers as the job
    moves through its lifecycle; everything else is immutable workload
    description.
    """

    job_type: JobType
    submit_time: float
    num_tasks: int
    cpu_per_task: float
    mem_per_task: float
    duration: float
    job_id: int = field(default_factory=lambda: next(_job_ids))
    constraints: Sequence[Any] = ()
    #: Relative importance on the cell-wide precedence scale (paper
    #: section 3.4: all schedulers "must agree on ... a common scale for
    #: expressing the relative importance of jobs, called precedence").
    #: Higher values may preempt lower ones where preemption is enabled.
    precedence: int = 0

    # -- scheduling progress ------------------------------------------------
    unplaced_tasks: int = field(init=False)
    attempts: int = 0
    conflicts: int = 0
    first_attempt_time: float | None = None
    fully_scheduled_time: float | None = None
    abandoned: bool = False
    #: Whether the job's next attempt is a retry caused by a commit
    #: conflict (as opposed to a first attempt or a capacity retry).
    #: Used for the "no conflicts" busyness approximation of Figure 12c.
    requeued_for_conflict: bool = field(init=False, default=False)
    #: Whether a starvation-escalation retry policy switched this job to
    #: incremental commit mode (the paper's section 3.6 remedy for
    #: repeatedly-conflicting gang-scheduled jobs).
    escalated: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError(f"a job needs at least one task, got {self.num_tasks}")
        if self.cpu_per_task < 0 or self.mem_per_task < 0:
            raise ValueError("per-task resource requests must be non-negative")
        if self.cpu_per_task <= EPSILON and self.mem_per_task <= EPSILON:
            # A sub-EPSILON request is indistinguishable from zero in
            # the cell-state accounting, so reject it the same way.
            raise ValueError("a task must request some resource")
        if self.duration <= 0:
            raise ValueError(f"task duration must be positive, got {self.duration}")
        self.unplaced_tasks = self.num_tasks

    # -- derived quantities ---------------------------------------------------
    @property
    def placed_tasks(self) -> int:
        return self.num_tasks - self.unplaced_tasks

    @property
    def is_fully_scheduled(self) -> bool:
        return self.unplaced_tasks == 0

    @property
    def total_cpu(self) -> float:
        """Aggregate CPU request of the whole job (cores)."""
        return self.num_tasks * self.cpu_per_task

    @property
    def total_mem(self) -> float:
        """Aggregate RAM request of the whole job (GB)."""
        return self.num_tasks * self.mem_per_task

    def mark_first_attempt(self, now: float) -> None:
        """Record the start of the first scheduling attempt.

        Job wait time (paper section 4, "Metrics") is defined as
        ``first_attempt_time - submit_time``.
        """
        if self.first_attempt_time is None:
            self.first_attempt_time = now

    @property
    def wait_time(self) -> float | None:
        """Queueing delay before the first scheduling attempt, if started."""
        if self.first_attempt_time is None:
            return None
        return self.first_attempt_time - self.submit_time
