"""Synthetic workload generation: Poisson job arrivals and initial fill.

Matches the lightweight-simulator setup of paper section 4: job
inter-arrival times, tasks per job, task durations and per-task resources
are sampled from per-cluster empirical distributions; at simulation start
the cell is pre-filled to roughly 60 % utilization "using task-size data
extracted from the relevant trace".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sim import Simulator
from repro.workload.clusters import SIM_DURATION_CAP, ClusterPreset, WorkloadParams
from repro.workload.distributions import LogNormal
from repro.workload.job import DEFAULT_PRECEDENCE, Job, JobType


class WorkloadGenerator:
    """Poisson arrival process for one job type.

    Calls ``submit(job)`` for each synthesized job until ``horizon``.
    The generator owns its RNG stream, so two simulator configurations
    built from the same seed receive byte-identical workloads — the
    property that makes the paper's A/B architecture comparisons fair
    ("compare the behaviour of all three architectures under the same
    conditions and with identical workloads").
    """

    def __init__(
        self,
        sim: Simulator,
        params: WorkloadParams,
        job_type: JobType,
        rng: np.random.Generator,
        submit: Callable[[Job], None],
        horizon: float,
        rate_factor: float = 1.0,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if rate_factor <= 0:
            raise ValueError(f"rate_factor must be positive, got {rate_factor}")
        self._sim = sim
        self._params = params
        self._job_type = job_type
        self._rng = rng
        self._submit = submit
        self._horizon = horizon
        self._rate = params.arrival_rate * rate_factor
        self.jobs_generated = 0

    def start(self) -> None:
        """Begin generating arrivals (first gap drawn from the process)."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = self._rng.exponential(1.0 / self._rate)
        arrival_time = self._sim.now + gap
        if arrival_time <= self._horizon:
            self._sim.at(arrival_time, self._arrive)

    def _arrive(self) -> None:
        job = self.make_job(self._sim.now)
        self.jobs_generated += 1
        self._submit(job)
        self._schedule_next()

    def make_job(self, submit_time: float) -> Job:
        """Sample one job from the per-type distributions."""
        params = self._params
        rng = self._rng
        return Job(
            job_type=self._job_type,
            submit_time=submit_time,
            num_tasks=int(params.tasks_per_job.sample(rng)),
            cpu_per_task=params.cpu_per_task.sample(rng),
            mem_per_task=params.mem_per_task.sample(rng),
            duration=params.task_duration.sample(rng),
            precedence=DEFAULT_PRECEDENCE[self._job_type],
        )


@dataclass(frozen=True)
class StandingTask:
    """A pre-existing task occupying resources at simulation start."""

    cpu: float
    mem: float
    duration: float  # remaining lifetime from t=0
    job_type: JobType


class InitialFill:
    """Generates the standing task population that fills the cell to the
    target utilization at t=0.

    Composition follows the paper's workload mix: the majority of
    *standing resources* belong to long-running service tasks, the rest
    to batch tasks that churn (section 2.1: 55-80 % of resources are
    allocated to service jobs). Batch residual lifetimes are fresh draws
    from the batch duration distribution; standing *service* tasks are
    long-lived by definition (they are the survivors — service jobs run
    for weeks), so their residuals come from a days-scale distribution
    rather than the arrival-time one. This keeps simulated utilization
    near the 60 % target instead of decaying within hours.
    """

    SERVICE_CPU_SHARE = 0.7

    #: Residual lifetime of standing service tasks (days, capped at the
    #: simulation duration cap).
    SERVICE_RESIDUAL = LogNormal(
        median=2 * 86400.0, sigma=1.0, low=6 * 3600.0, high=SIM_DURATION_CAP
    )

    def __init__(self, preset: ClusterPreset, target_utilization: float | None = None):
        self._preset = preset
        self.target_utilization = (
            preset.initial_utilization
            if target_utilization is None
            else target_utilization
        )
        if not 0.0 <= self.target_utilization < 1.0:
            raise ValueError(
                f"target utilization must be in [0, 1), got {self.target_utilization}"
            )

    def generate(self, rng: np.random.Generator) -> list[StandingTask]:
        """Sample standing tasks until the CPU target is reached."""
        target_cpu = self._preset.total_cpu * self.target_utilization
        tasks: list[StandingTask] = []
        filled = 0.0
        service_budget = target_cpu * self.SERVICE_CPU_SHARE
        service_filled = 0.0
        while filled < target_cpu:
            if service_filled < service_budget:
                params, job_type = self._preset.service, JobType.SERVICE
            else:
                params, job_type = self._preset.batch, JobType.BATCH
            cpu = params.cpu_per_task.sample(rng)
            if job_type is JobType.SERVICE:
                duration = self.SERVICE_RESIDUAL.sample(rng)
            else:
                duration = params.task_duration.sample(rng)
            task = StandingTask(
                cpu=cpu,
                mem=params.mem_per_task.sample(rng),
                duration=duration,
                job_type=job_type,
            )
            tasks.append(task)
            filled += cpu
            if job_type is JobType.SERVICE:
                service_filled += cpu
        return tasks
