"""A registry of counters, gauges, and fixed-bucket histograms.

Schedulers and the :class:`~repro.metrics.collector.MetricsCollector`
publish low-level counters here; experiments and the CLI's
``--verbose`` flag read them back as a flat snapshot. Metrics are
keyed by ``(name, labels)`` — asking twice returns the same object —
and histograms estimate percentiles from fixed bucket boundaries the
way monitoring systems (Prometheus et al.) do, trading exactness for
constant memory.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

#: Default histogram bucket upper bounds (seconds-flavoured, spanning
#: sub-millisecond decision times to multi-hour waits).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


def _label_suffix(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count (events, tasks, seconds)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}{_label_suffix(self.labels)}={self.value}>"


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Keep the high-water mark across several runs/samples."""
        if value > self.value:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}{_label_suffix(self.labels)}={self.value}>"


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit overflow bucket catches everything above the last bound.
    Percentiles interpolate linearly inside the winning bucket and are
    clamped to the observed min/max, so a single-sample histogram
    reports that sample exactly and an empty one reports NaN.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total", "_min", "_max")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {buckets}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)  # +1 = overflow bucket
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if value != value:
            raise ValueError(f"histogram {self.name} cannot observe NaN")
        index = self._bucket_index(value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def _bucket_index(self, value: float) -> int:
        # Linear scan is fine: bucket lists are tens of entries and
        # observations are not on the simulator's innermost hot path.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    @property
    def mean(self) -> float:
        if self.count == 0:
            return float("nan")
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0..100) from the buckets."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return float("nan")
        target = p / 100.0 * self.count
        cumulative = 0.0
        lower = self._min
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            upper = self.bounds[index] if index < len(self.bounds) else self._max
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self._min), self._max)
            cumulative += bucket_count
            lower = upper
        return self._max  # pragma: no cover - p=100 handled in the loop

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
            "min": self._min if self.count else float("nan"),
            "max": self._max if self.count else float("nan"),
        }

    # ------------------------------------------------------------------
    # Serializable state (trace `run.metrics` records, multi-run merges)
    # ------------------------------------------------------------------
    def state(self) -> dict[str, Any]:
        """JSON-safe snapshot of the histogram's full internal state.

        ``min``/``max`` are ``None`` while the histogram is empty (the
        internal +-inf sentinels are not valid JSON).
        """
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
        }

    @classmethod
    def from_state(
        cls, state: dict[str, Any], name: str = "", labels: dict[str, str] | None = None
    ) -> "Histogram":
        """Rebuild a histogram from a :meth:`state` dict."""
        histogram = cls(name, labels or {}, buckets=tuple(state["bounds"]))
        histogram.merge_state(state)
        return histogram

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Bucket bounds must match exactly — merging differently-shaped
        histograms would silently mis-bucket, so it is an error.
        """
        if tuple(state["bounds"]) != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        counts = state["counts"]
        if len(counts) != len(self.counts):
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket count differs"
            )
        for index, value in enumerate(counts):
            self.counts[index] += value
        self.count += state["count"]
        self.total += state["total"]
        if state["min"] is not None and state["min"] < self._min:
            self._min = float(state["min"])
        if state["max"] is not None and state["max"] > self._max:
            self._max = float(state["max"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name}{_label_suffix(self.labels)} n={self.count}>"


class MetricsRegistry:
    """Get-or-create store of named, labeled metrics."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}

    def _get_or_create(self, kind: type, name: str, labels: dict[str, str], **kwargs):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(name, labels, **kwargs)
            self._metrics[key] = metric
        elif type(metric) is not kind:
            raise ValueError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        if buckets is None:
            return self._get_or_create(Histogram, name, labels)
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, prefix: str = "") -> dict[str, Any]:
        """Flat ``{qualified-name: value}`` view, optionally filtered.

        Counters and gauges map to their value; histograms map to their
        :meth:`~Histogram.summary` dict.
        """
        out: dict[str, Any] = {}
        for metric in self._metrics.values():
            if prefix and not metric.name.startswith(prefix):
                continue
            qualified = metric.name + _label_suffix(metric.labels)
            if isinstance(metric, Histogram):
                out[qualified] = metric.summary()
            else:
                out[qualified] = metric.value
        return dict(sorted(out.items()))


#: Process-global registry: cheap cross-run accumulation (the CLI's
#: ``--verbose`` sim-stats report reads it). Per-run isolation uses a
#: private ``MetricsRegistry`` instance instead.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-global registry."""
    return _GLOBAL


def reset_registry() -> MetricsRegistry:
    """Replace the process-global registry with a fresh one."""
    global _GLOBAL
    _GLOBAL = MetricsRegistry()
    return _GLOBAL


def publish_sim_stats(stats: dict[str, float | int]) -> None:
    """Accumulate one run's engine stats into the global registry.

    Called by the simulation harnesses after each run with
    :meth:`repro.sim.engine.Simulator.stats`; the CLI's ``--verbose``
    flag reads the result back. Commands may run many simulations —
    counters sum over all of them, the peak gauge keeps the maximum.
    """
    registry = get_registry()
    registry.counter("sim.runs").inc()
    registry.counter("sim.events_processed").inc(stats["events_processed"])
    registry.counter("sim.wall_seconds").inc(stats["wall_seconds"])
    registry.gauge("sim.peak_queue_depth").set_max(stats["peak_queue_depth"])
