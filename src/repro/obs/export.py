"""JSONL (one JSON object per line) persistence for trace records.

The trace format is deliberately boring: every record is a flat JSON
object, written append-only, so traces survive crashed runs (every
complete line is valid) and compose with standard tooling
(``jq``, ``grep``, pandas' ``read_json(lines=True)``).

With ``atomic=True`` (the trace recorder's default) records stream to
``<path>.tmp`` and are fsync'd and renamed onto ``path`` on close: the
final path only ever holds a *complete* trace, never one truncated by a
crash. An interrupted run leaves its partial trace behind under the
clearly-labelled ``.tmp`` name, so nothing is lost for post-mortems.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, TextIO


class JsonlWriter:
    """Streams records to a JSONL file as they are emitted."""

    def __init__(self, path: str, atomic: bool = False) -> None:
        self.path = path
        self._atomic = atomic
        self._write_path = path + ".tmp" if atomic else path
        self._file: TextIO | None = open(self._write_path, "w", encoding="utf-8")

    def write(self, record: dict[str, Any]) -> None:
        if self._file is None:
            raise ValueError(f"writer for {self.path} is closed")
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")

    def close(self) -> None:
        """Close the underlying file (atomic mode: fsync, then rename
        onto the final path); closing twice is a no-op."""
        if self._file is not None:
            if self._atomic:
                self._file.flush()
                os.fsync(self._file.fileno())
            self._file.close()
            self._file = None
            if self._atomic:
                os.replace(self._write_path, self.path)

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False


def write_jsonl(records: Iterable[dict[str, Any]], path: str) -> int:
    """Write ``records`` to ``path``; returns the number written."""
    count = 0
    with JsonlWriter(path) as writer:
        for record in records:
            writer.write(record)
            count += 1
    return count


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Load every record from a JSONL trace file.

    Blank lines are skipped; a malformed line raises :class:`ValueError`
    naming the offending line number.
    """
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed trace line: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: trace record is not an object")
            records.append(record)
    return records
