"""Deterministic simulated-time telemetry sampling (``timeline.*``).

The paper's core evidence is *time-resolved*: Figures 5-8 plot
scheduler busyness, conflict fraction and wait time over simulated
days, not end-of-run aggregates. :class:`TimelineSampler` hooks the
discrete-event engine's own scheduler (:meth:`Simulator.every`) to
record those series as first-class trace records:

``timeline.cell``
    One per sample: cell CPU/memory utilization, total pending-queue
    depth, machines currently failed, schedulers currently crashed.
``timeline.sched``
    One per scheduler per sample: queue depth, busy fraction over the
    sampling window, cumulative and per-window conflict/abandonment
    rates, jobs scheduled.

Because sampling rides the event loop, the records are a deterministic
function of the master seed — the determinism gates compare them like
any other record, checkpoint/resume stitching covers them for free, and
wall-clock time never appears (``omega-lint`` DET002 holds). Sampling
is opt-in per run (``LightweightConfig.timeline_interval``, surfaced as
``omega-sim ... --timeline-interval SECONDS``); an enabled sampler adds
events to the loop, so it is part of the run's configuration rather
than a recorder side effect.

Consumers: ``omega-sim trace`` / ``trace --json`` summarize the series,
:mod:`repro.obs.perfetto` turns them into Perfetto counter tracks, and
``omega-sim report`` charts them (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.obs import recorder as _obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cellstate import CellState
    from repro.faults.chaos import ChaosEngine
    from repro.metrics import MetricsCollector
    from repro.schedulers.base import QueueScheduler
    from repro.sim import Simulator

#: Process-wide default sampling interval (simulated seconds). ``None``
#: disables sampling for configs that do not set their own interval.
#: The CLI sets this from ``--timeline-interval`` *before* constructing
#: sweep configs, so the resolved value is baked into each (picklable)
#: config and reaches ``--jobs N`` worker processes unchanged.
_DEFAULT_INTERVAL: float | None = None


def set_default_interval(interval: float | None) -> None:
    """Set (or clear, with None) the process-wide sampling default."""
    global _DEFAULT_INTERVAL
    if interval is not None and interval <= 0:
        raise ValueError(f"timeline interval must be positive, got {interval}")
    _DEFAULT_INTERVAL = interval


def default_interval() -> float | None:
    """The current process-wide sampling default."""
    return _DEFAULT_INTERVAL


class TimelineSampler:
    """Samples cell- and scheduler-level telemetry on the event loop.

    All state reads are pure queries against objects the simulation
    already owns; installing a sampler never perturbs scheduling
    decisions (it does add its own tick events to the loop, which is
    why sampling is config-gated, not recorder-gated).
    """

    def __init__(
        self,
        sim: "Simulator",
        metrics: "MetricsCollector",
        states: Sequence["CellState"],
        schedulers: Sequence["QueueScheduler"],
        interval: float,
        horizon: float | None = None,
        chaos: "ChaosEngine | None" = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"timeline interval must be positive, got {interval}")
        self.sim = sim
        self.metrics = metrics
        self.states = list(states)
        self.schedulers = list(schedulers)
        self.interval = float(interval)
        self.horizon = horizon
        self.chaos = chaos
        self.samples_taken = 0
        # Previous sample's cumulative counters, per scheduler, for the
        # sliding-window rates: (busy_seconds, conflicts, abandoned).
        self._previous: dict[str, tuple[float, int, int]] = {
            scheduler.name: (0.0, 0, 0) for scheduler in self.schedulers
        }

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Register the periodic sampling tick with the simulator."""
        self.sim.every(self.interval, self.sample, until=self.horizon)

    # ------------------------------------------------------------------
    def _utilization(self) -> tuple[float, float]:
        used_cpu = sum(state.used_cpu for state in self.states)
        total_cpu = sum(state.cell.total_cpu for state in self.states)
        used_mem = sum(state.used_mem for state in self.states)
        total_mem = sum(state.cell.total_mem for state in self.states)
        cpu = used_cpu / total_cpu if total_cpu > 0 else 0.0
        mem = used_mem / total_mem if total_mem > 0 else 0.0
        return cpu, mem

    def _cumulative_busy(self, scheduler: "QueueScheduler") -> float:
        """Busy seconds up to now: recorded intervals + in-flight credit.

        ``metrics.schedulers`` is a defaultdict — read with ``.get`` so
        sampling never materializes entries for schedulers that have not
        reported anything yet (that would perturb ``scheduler_names()``).
        """
        entry = self.metrics.schedulers.get(scheduler.name)
        busy = sum(entry.busy_time.values()) if entry is not None else 0.0
        since = scheduler.busy_since
        if since is not None:
            busy += self.sim.now - since
        return busy

    def sample(self) -> None:
        """Emit one ``timeline.cell`` + per-scheduler ``timeline.sched``."""
        rec = _obs.RECORDER
        self.samples_taken += 1
        now = self.sim.now
        interval = self.interval
        emit = rec.enabled
        if emit:
            cpu_util, mem_util = self._utilization()
            chaos = self.chaos
            machines_down = chaos.machines_down if chaos is not None else 0
            scheds_down = sum(
                1 for scheduler in self.schedulers if scheduler.is_down
            )
            rec.event(
                "timeline.cell",
                t=now,
                cpu_util=cpu_util,
                mem_util=mem_util,
                pending=sum(s.queue_depth for s in self.schedulers),
                machines_down=machines_down,
                scheds_down=scheds_down,
                active_faults=machines_down + scheds_down,
            )
        for scheduler in self.schedulers:
            name = scheduler.name
            busy = self._cumulative_busy(scheduler)
            entry = self.metrics.schedulers.get(name)
            conflicts = sum(entry.conflicts.values()) if entry is not None else 0
            abandoned = entry.jobs_abandoned if entry is not None else 0
            scheduled = (
                sum(entry.jobs_scheduled.values()) if entry is not None else 0
            )
            prev_busy, prev_conflicts, prev_abandoned = self._previous[name]
            # Serial servers cannot exceed one busy-second per second;
            # the clamp only absorbs float rounding at window edges.
            busy_frac = min(1.0, max(0.0, (busy - prev_busy) / interval))
            self._previous[name] = (busy, conflicts, abandoned)
            if not emit:
                continue
            fields = dict(
                t=now,
                sched=name,
                queue_depth=scheduler.queue_depth,
                busy_frac=busy_frac,
                down=scheduler.is_down,
                conflicts=conflicts,
                conflict_rate=(conflicts - prev_conflicts) / interval,
                scheduled=scheduled,
                abandoned=abandoned,
                abandon_rate=(abandoned - prev_abandoned) / interval,
            )
            # Predictor gauges ride along only on predictor-on runs, so
            # predictor-off records stay byte-identical. hot_machines()
            # is a pure read — sampling must never perturb scheduling.
            predictor = getattr(scheduler, "predictor", None)
            if predictor is not None:
                fields["predict_hot"] = len(predictor.hot_machines(now))
                fields["predict_prob"] = predictor.conflict_probability()
                fields["predict_tracked"] = predictor.tracked_machines
            rec.event("timeline.sched", **fields)
