"""The process-local trace recorder.

One global recorder receives structured *events* (a point in simulated
time) and *spans* (a region of wall-clock work at one simulated
instant). By default the global recorder is a :class:`NullRecorder`
whose :attr:`~NullRecorder.enabled` flag is ``False``; every
instrumented hot path guards emission with a single attribute check::

    rec = recorder.RECORDER
    if rec.enabled:
        rec.event("txn.begin", t=sim.now, sched=name, job=job_id)

so tracing costs one dictionary-free branch when off.

Records are plain dicts (ready for JSONL export, see
:mod:`repro.obs.export`) with a fixed envelope:

``kind``
    ``"event"`` or ``"span"``.
``name``
    Dotted record name (``txn.commit``, ``sched.busy``, ...).
``t``
    Simulated time (seconds). Inherited from the enclosing span when
    not given.
``sched`` / ``job`` / ``attempt``
    Scheduler id, job id, and 1-based attempt number. Inherited from
    the enclosing span when not given.
``span`` / ``id`` / ``parent``
    Span linkage: events carry the enclosing span's ``id`` in
    ``span``; span records carry their own ``id`` and their parent
    span's id in ``parent``.
``wall_ms``
    Spans only: wall-clock time spent inside the span.

Anything else passed as a keyword lands under ``fields``.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.export import JsonlWriter


class _NullSpan:
    """Reusable no-op context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def note(self, **fields: Any) -> None:
        """Discard extra span fields (mirror of :meth:`Span.note`)."""


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default: every call is a no-op.

    ``enabled`` is a class attribute so the hot-path guard
    ``if rec.enabled`` is a plain attribute load.
    """

    enabled = False

    def event(self, name: str, **fields: Any) -> None:
        """Discard an event."""

    def span(self, name: str, **fields: Any) -> _NullSpan:
        """Return a shared no-op context manager."""
        return _NULL_SPAN

    def replay(self, records: list[dict[str, Any]]) -> None:
        """Discard captured records."""

    def close(self) -> None:
        """Nothing to flush."""


class Span:
    """Context manager for one recorded span.

    Entering pushes a context frame (``t``/``sched``/``job``/
    ``attempt`` inherit to nested events and spans); exiting emits the
    span record with its measured wall time.
    """

    __slots__ = ("_recorder", "_name", "_ctx", "_fields", "_id", "_parent", "_wall0")

    def __init__(
        self,
        recorder: "TraceRecorder",
        name: str,
        ctx: dict[str, Any],
        fields: dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._ctx = ctx
        self._fields = fields
        self._id = 0
        self._parent: int | None = None
        self._wall0 = 0.0

    def note(self, **fields: Any) -> None:
        """Attach extra fields (e.g. an outcome) before the span closes."""
        self._fields.update(fields)

    def __enter__(self) -> "Span":
        rec = self._recorder
        parent_ctx = rec._context[-1] if rec._context else {}
        ctx = self._ctx
        for key in ("t", "sched", "job", "attempt"):
            if ctx.get(key) is None:
                ctx[key] = parent_ctx.get(key)
        rec._context.append(ctx)
        self._id = rec._next_span_id
        rec._next_span_id += 1
        self._parent = rec._span_stack[-1] if rec._span_stack else None
        rec._span_stack.append(self._id)
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        wall_ms = (time.perf_counter() - self._wall0) * 1000.0
        rec = self._recorder
        rec._span_stack.pop()
        ctx = rec._context.pop()
        record: dict[str, Any] = {
            "kind": "span",
            "name": self._name,
            "id": self._id,
            "parent": self._parent,
            "t": ctx.get("t"),
            "sched": ctx.get("sched"),
            "job": ctx.get("job"),
            "attempt": ctx.get("attempt"),
            "wall_ms": wall_ms,
        }
        if self._fields:
            record["fields"] = self._fields
        rec._emit(record)
        return False


class TraceRecorder:
    """Records structured events and spans, in memory and/or to JSONL.

    ``path`` streams every record to a JSONL file as it is emitted;
    ``keep_records`` retains them in :attr:`records` (defaults to True
    only when no path is given, so long file-backed runs stay flat in
    memory).
    """

    enabled = True

    def __init__(self, path: str | None = None, keep_records: bool | None = None) -> None:
        self.records: list[dict[str, Any]] = []
        self._writer = JsonlWriter(path, atomic=True) if path is not None else None
        self._keep = keep_records if keep_records is not None else path is None
        self._context: list[dict[str, Any]] = []
        self._span_stack: list[int] = []
        self._next_span_id = 1
        self.records_emitted = 0

    # ------------------------------------------------------------------
    def _emit(self, record: dict[str, Any]) -> None:
        self.records_emitted += 1
        if self._keep:
            self.records.append(record)
        if self._writer is not None:
            self._writer.write(record)

    def event(
        self,
        name: str,
        *,
        t: float | None = None,
        sched: str | None = None,
        job: int | None = None,
        attempt: int | None = None,
        **fields: Any,
    ) -> None:
        """Record a point event, inheriting context from the open span."""
        ctx = self._context[-1] if self._context else {}
        record: dict[str, Any] = {
            "kind": "event",
            "name": name,
            "t": t if t is not None else ctx.get("t"),
            "sched": sched if sched is not None else ctx.get("sched"),
            "job": job if job is not None else ctx.get("job"),
            "attempt": attempt if attempt is not None else ctx.get("attempt"),
            "span": self._span_stack[-1] if self._span_stack else None,
        }
        if fields:
            record["fields"] = fields
        self._emit(record)

    def span(
        self,
        name: str,
        *,
        t: float | None = None,
        sched: str | None = None,
        job: int | None = None,
        attempt: int | None = None,
        **fields: Any,
    ) -> Span:
        """Open a span; use as a context manager."""
        ctx = {"t": t, "sched": sched, "job": job, "attempt": attempt}
        return Span(self, name, ctx, fields)

    def replay(self, records: list[dict[str, Any]]) -> None:
        """Re-emit records captured by another recorder (e.g. in a
        parallel worker process).

        Worker recorders number their spans from 1; replaying offsets
        every span-id field (``id``/``parent``/``span``) by this
        recorder's counter, so a trace stitched from per-worker captures
        in submission order is identical to the trace a serial run of
        the same work would have produced.
        """
        offset = self._next_span_id - 1
        max_id = 0
        for record in records:
            clean = dict(record)
            for key in ("id", "parent", "span"):
                value = clean.get(key)
                if isinstance(value, int):
                    clean[key] = value + offset
            if clean.get("kind") == "span" and isinstance(record.get("id"), int):
                if record["id"] > max_id:
                    max_id = record["id"]
            self._emit(clean)
        self._next_span_id += max_id

    def close(self) -> None:
        """Flush and close the JSONL writer, if any."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None


#: The process-global recorder. Instrumented code reads this module
#: attribute directly (``recorder.RECORDER``) so swapping recorders
#: takes effect everywhere immediately.
NULL_RECORDER = NullRecorder()
RECORDER: NullRecorder | TraceRecorder = NULL_RECORDER


def get_recorder() -> NullRecorder | TraceRecorder:
    """Return the current global recorder."""
    return RECORDER


def set_recorder(recorder: NullRecorder | TraceRecorder | None):
    """Install ``recorder`` globally (None restores the null recorder)."""
    global RECORDER
    RECORDER = recorder if recorder is not None else NULL_RECORDER
    return RECORDER


def reset_recorder() -> NullRecorder:
    """Restore the zero-overhead null recorder and return it."""
    global RECORDER
    RECORDER = NULL_RECORDER
    return NULL_RECORDER
