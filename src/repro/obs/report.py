"""Self-contained static HTML reports from recorded traces.

``omega-sim report RUN.jsonl [MORE.jsonl ...]`` renders one HTML file —
inline CSS and inline SVG only, no external assets or scripts — so the
report can be committed, attached to CI artifacts, or opened from a
tarball years later and still work offline.

Per trace it shows the scheduler rollup and wait-time percentile tables
(p50/p90/p99/p99.9 merged from ``run.metrics`` histogram states), line
charts of the ``timeline.*`` series recorded by
:mod:`repro.obs.timeline` (cell utilization, pending queue depth,
per-scheduler busy fraction and conflict rate), and a binned conflict
timeline that works even for traces recorded without
``--timeline-interval``. With several traces it prepends a side-by-side
comparison (per-scheduler table plus overlaid utilization chart).
"""

from __future__ import annotations

import html
import math
from typing import Any, Iterable, Sequence

from repro.obs.summary import TraceSummary, summarize_file

_PALETTE = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#e377c2",
    "#17becf",
)

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 60em;
       color: #1a1a2e; padding: 0 1em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #1f77b4; padding-bottom: .3em; }
h2 { font-size: 1.2em; margin-top: 2em; }
h3 { font-size: 1em; margin-bottom: .3em; }
p.meta { color: #555; margin-top: 0; }
table { border-collapse: collapse; margin: .5em 0 1.5em; }
th, td { border: 1px solid #ccd; padding: .25em .6em; text-align: right;
         font-variant-numeric: tabular-nums; }
th { background: #eef2f7; }
td:first-child, th:first-child { text-align: left; }
svg { margin: .25em 0 1em; }
p.note { color: #777; font-style: italic; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    if value is None:
        return "–"
    if isinstance(value, float):
        if not math.isfinite(value):
            return "–"
        return f"{value:.4g}"
    return str(value)


def _table(rows: Sequence[dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    if not rows:
        return '<p class="note">no data</p>'
    columns = list(columns if columns is not None else rows[0].keys())
    head = "".join(f"<th>{_esc(col)}</th>" for col in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(_fmt(row.get(col)))}</td>" for col in columns) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


# ----------------------------------------------------------------------
# Inline SVG line charts
# ----------------------------------------------------------------------
def _ticks(low: float, high: float, count: int = 5) -> list[float]:
    if high <= low:
        return [low]
    step = (high - low) / (count - 1)
    return [low + step * i for i in range(count)]


def _svg_line_chart(
    title: str,
    series: Sequence[tuple[str, Sequence[tuple[float, float]]]],
    *,
    y_label: str = "",
    width: int = 720,
    height: int = 240,
    y_min: float = 0.0,
    y_max: float | None = None,
) -> str:
    """One line chart as an inline ``<svg>`` element.

    ``series`` is ``[(legend label, [(x, y), ...]), ...]``; non-finite
    points are dropped, and a chart with no finite points renders a
    "no data" placeholder instead of empty axes.
    """
    clean: list[tuple[str, list[tuple[float, float]]]] = []
    for label, points in series:
        finite = [
            (float(x), float(y))
            for x, y in points
            if math.isfinite(float(x)) and math.isfinite(float(y))
        ]
        if finite:
            clean.append((label, finite))

    if not clean:
        return (
            f'<svg width="{width}" height="{height}" role="img" '
            f'viewBox="0 0 {width} {height}" aria-label="{_esc(title)}">'
            f'<text x="12" y="20" font-size="13" font-weight="bold">{_esc(title)}</text>'
            f'<text x="{width / 2:.0f}" y="{height / 2:.0f}" text-anchor="middle" '
            f'fill="#999" font-size="13">no data</text></svg>'
        )

    left, right, top, bottom = 60, 14, 30, 34
    plot_w = width - left - right
    plot_h = height - top - bottom
    xs = [x for _, points in clean for x, _ in points]
    ys = [y for _, points in clean for _, y in points]
    x_low, x_high = min(xs), max(xs)
    if x_high <= x_low:
        x_high = x_low + 1.0
    y_low = min(y_min, min(ys))
    y_high = y_max if y_max is not None else max(ys) * 1.05
    if y_high <= y_low:
        y_high = y_low + 1.0

    def px(x: float) -> float:
        return left + (x - x_low) / (x_high - x_low) * plot_w

    def py(y: float) -> float:
        return top + plot_h - (y - y_low) / (y_high - y_low) * plot_h

    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'viewBox="0 0 {width} {height}" aria-label="{_esc(title)}">',
        f'<text x="12" y="20" font-size="13" font-weight="bold">{_esc(title)}</text>',
        f'<rect x="{left}" y="{top}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#ccd"/>',
    ]
    for tick in _ticks(y_low, y_high):
        y = py(tick)
        parts.append(
            f'<line x1="{left}" y1="{y:.1f}" x2="{left + plot_w}" y2="{y:.1f}" '
            'stroke="#eef" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{left - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="11" fill="#555">{tick:.3g}</text>'
        )
    for tick in _ticks(x_low, x_high):
        x = px(tick)
        parts.append(
            f'<text x="{x:.1f}" y="{top + plot_h + 16}" text-anchor="middle" '
            f'font-size="11" fill="#555">{tick:.4g}</text>'
        )
    parts.append(
        f'<text x="{left + plot_w / 2:.0f}" y="{height - 4}" text-anchor="middle" '
        'font-size="11" fill="#555">simulated time (s)</text>'
    )
    if y_label:
        parts.append(
            f'<text x="14" y="{top + plot_h / 2:.0f}" font-size="11" fill="#555" '
            f'transform="rotate(-90 14 {top + plot_h / 2:.0f})" '
            f'text-anchor="middle">{_esc(y_label)}</text>'
        )
    for index, (label, points) in enumerate(clean):
        color = _PALETTE[index % len(_PALETTE)]
        coords = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in points)
        if len(points) == 1:
            x, y = points[0]
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.5" fill="{color}"/>'
            )
        else:
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" '
                'stroke-width="1.5"/>'
            )
        legend_x = left + plot_w - 150
        legend_y = top + 8 + 14 * index
        parts.append(
            f'<rect x="{legend_x}" y="{legend_y - 8}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{legend_x + 14}" y="{legend_y + 1}" font-size="11" '
            f'fill="#333">{_esc(label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# Report sections
# ----------------------------------------------------------------------
def _series_from(
    samples: Iterable[dict[str, Any]], key: str
) -> list[tuple[float, float]]:
    points = []
    for sample in samples:
        t = sample.get("t")
        value = sample.get(key)
        if t is None or value is None:
            continue
        points.append((float(t), float(value)))
    return points


def _trace_charts(summary: TraceSummary) -> list[str]:
    charts = []
    if summary.timeline_cell:
        charts.append(
            _svg_line_chart(
                "Cell utilization",
                [
                    ("cpu", _series_from(summary.timeline_cell, "cpu_util")),
                    ("mem", _series_from(summary.timeline_cell, "mem_util")),
                ],
                y_label="fraction",
                y_max=1.0,
            )
        )
        charts.append(
            _svg_line_chart(
                "Pending jobs (all schedulers)",
                [("pending", _series_from(summary.timeline_cell, "pending"))],
                y_label="jobs",
            )
        )
        faults = _series_from(summary.timeline_cell, "active_faults")
        if any(value for _, value in faults):
            charts.append(
                _svg_line_chart(
                    "Active faults",
                    [("faults", faults)],
                    y_label="count",
                )
            )
    if summary.timeline_sched:
        per_sched = sorted(summary.timeline_sched.items())
        charts.append(
            _svg_line_chart(
                "Scheduler busy fraction (per sampling window)",
                [
                    (name, _series_from(samples, "busy_frac"))
                    for name, samples in per_sched
                ],
                y_label="busy fraction",
                y_max=1.0,
            )
        )
        charts.append(
            _svg_line_chart(
                "Conflict rate (conflicts/s, per sampling window)",
                [
                    (name, _series_from(samples, "conflict_rate"))
                    for name, samples in per_sched
                ],
                y_label="conflicts/s",
            )
        )
        charts.append(
            _svg_line_chart(
                "Scheduler queue depth",
                [
                    (name, _series_from(samples, "queue_depth"))
                    for name, samples in per_sched
                ],
                y_label="jobs",
            )
        )
    return charts


def _conflict_chart(summary: TraceSummary, bins: int = 24) -> str | None:
    names = [
        name
        for name in summary.scheduler_names()
        if summary.schedulers[name].txn_conflicted
    ]
    if not names:
        return None
    series = []
    for name in names:
        timeline = summary.conflict_timeline(name, bins=bins)
        series.append((name, [(start, float(count)) for start, count in timeline]))
    return _svg_line_chart(
        f"Conflicted commits per bin ({bins} bins)", series, y_label="conflicts"
    )


def _trace_section(label: str, summary: TraceSummary) -> str:
    parts = [f"<section><h2>{_esc(label)}</h2>"]
    parts.append(
        '<p class="meta">'
        f"{summary.records} records · {summary.runs or 1} run(s) · "
        f"max t={summary.max_t:.1f}s · "
        f"{summary.timeline_sample_count()} timeline samples</p>"
    )
    parts.append("<h3>Scheduler rollup</h3>")
    parts.append(_table(summary.scheduler_rows()))
    parts.append("<h3>Wait-time percentiles (seconds)</h3>")
    percentiles = summary.percentile_rows()
    if percentiles:
        parts.append(_table(percentiles))
    else:
        parts.append(
            '<p class="note">no run.metrics histograms in this trace '
            "(recorded before timeline support, or the run did not finish)</p>"
        )
    charts = _trace_charts(summary)
    if charts:
        parts.extend(charts)
    else:
        parts.append(
            '<p class="note">no timeline samples — record with '
            "<code>--timeline-interval SECONDS</code> to chart utilization, "
            "busy fraction and conflict rate over simulated time</p>"
        )
    conflict_chart = _conflict_chart(summary)
    if conflict_chart is not None:
        parts.append(conflict_chart)
    parts.append("</section>")
    return "".join(parts)


def _comparison_section(traces: Sequence[tuple[str, TraceSummary]]) -> str:
    rows = []
    for label, summary in traces:
        for row in summary.scheduler_rows():
            rows.append({"trace": label, **row})
    utilization = [
        (label, _series_from(summary.timeline_cell, "cpu_util"))
        for label, summary in traces
        if summary.timeline_cell
    ]
    parts = ["<section><h2>Comparison</h2>"]
    parts.append("<h3>Per-scheduler rollup, all traces</h3>")
    parts.append(_table(rows))
    if utilization:
        parts.append(
            _svg_line_chart(
                "CPU utilization, all traces",
                utilization,
                y_label="fraction",
                y_max=1.0,
            )
        )
    parts.append("</section>")
    return "".join(parts)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def generate_report(traces: Sequence[tuple[str, TraceSummary]]) -> str:
    """Render one or more (label, summary) pairs as a full HTML page."""
    if not traces:
        raise ValueError("generate_report needs at least one trace")
    title = "omega-sim report"
    body = [f"<h1>{_esc(title)}</h1>"]
    if len(traces) > 1:
        body.append(_comparison_section(traces))
    for label, summary in traces:
        body.append(_trace_section(label, summary))
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        "</head><body>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def write_report(trace_paths: Sequence[str], output_path: str) -> int:
    """Summarize JSONL traces into an HTML report file; returns bytes written."""
    import os

    traces = [(os.path.basename(path), summarize_file(path)) for path in trace_paths]
    document = generate_report(traces)
    tmp = output_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(document)
    os.replace(tmp, output_path)
    return len(document.encode("utf-8"))
