"""Observability: structured tracing, metrics, and profiling.

The paper's evaluation hinges on *per-decision* quantities — which
commit conflicted, where a scheduler's busy time went, how many times a
job retried — that end-of-run aggregates cannot explain. This package
provides the three layers that make those visible:

* :mod:`repro.obs.recorder` — a process-global trace recorder emitting
  structured span/event records (simulated time *and* wall time,
  scheduler id, job id, attempt number). The default recorder is a
  no-op whose cost on instrumented hot paths is one attribute check.
* :mod:`repro.obs.registry` — counters, gauges, and fixed-bucket
  histograms with percentile estimation; the
  :class:`~repro.metrics.collector.MetricsCollector` publishes its raw
  counters here.
* :mod:`repro.obs.profile` — per-callback wall-clock attribution for
  the event loop ("top-N hottest callbacks").

Traces export to JSONL (:mod:`repro.obs.export`) and summarize into
conflict timelines, retry chains, and busy-time breakdowns
(:mod:`repro.obs.summary`, surfaced as ``omega-sim trace``). On top of
the raw records sit the time-resolved consumers: the config-gated
:mod:`repro.obs.timeline` sampler records ``timeline.*`` telemetry
series on the simulated clock, :mod:`repro.obs.perfetto` converts any
trace to Chrome/Perfetto trace-event JSON (``omega-sim perfetto``), and
:mod:`repro.obs.report` renders self-contained HTML reports with inline
SVG charts (``omega-sim report``).

Enable tracing around any run::

    from repro import obs

    recorder = obs.TraceRecorder(path="run.jsonl", keep_records=False)
    obs.set_recorder(recorder)
    try:
        ...  # run any simulation
    finally:
        obs.reset_recorder()
        recorder.close()

See ``docs/OBSERVABILITY.md`` for the record schema and a walkthrough.
"""

from repro.obs.export import JsonlWriter, read_jsonl, write_jsonl
from repro.obs.perfetto import export_perfetto
from repro.obs.profile import CallbackProfiler, callback_name
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    TraceRecorder,
    get_recorder,
    reset_recorder,
    set_recorder,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    publish_sim_stats,
    reset_registry,
)
from repro.obs.report import generate_report, write_report
from repro.obs.summary import TraceSummary, json_safe, summarize_file
from repro.obs.timeline import TimelineSampler, default_interval, set_default_interval

__all__ = [
    # recorder
    "NULL_RECORDER",
    "NullRecorder",
    "TraceRecorder",
    "Span",
    "get_recorder",
    "set_recorder",
    "reset_recorder",
    # registry
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "publish_sim_stats",
    "reset_registry",
    # profiling
    "CallbackProfiler",
    "callback_name",
    # export + summary
    "JsonlWriter",
    "read_jsonl",
    "write_jsonl",
    "TraceSummary",
    "json_safe",
    "summarize_file",
    # time-resolved consumers
    "TimelineSampler",
    "default_interval",
    "set_default_interval",
    "export_perfetto",
    "generate_report",
    "write_report",
]
