"""Wall-clock profiling of simulator callbacks.

The discrete-event engine dispatches every piece of work in the system
— scheduler think completions, task releases, workload arrivals — as a
callback. Attributing wall-clock time per callback *target* therefore
yields a complete "where did the run's real time go" breakdown without
a sampling profiler. Attach a :class:`CallbackProfiler` to
:attr:`repro.sim.engine.Simulator.profiler` before running::

    sim.profiler = CallbackProfiler()
    sim.run(...)
    print(sim.profiler.report(n=5))
"""

from __future__ import annotations

from typing import Any, Callable


def callback_name(fn: Callable[..., Any]) -> str:
    """A stable human-readable identity for a callback target."""
    qualname = getattr(fn, "__qualname__", None)
    if qualname is None:
        return repr(fn)
    module = getattr(fn, "__module__", None)
    return f"{module}.{qualname}" if module else qualname


class CallbackProfiler:
    """Accumulates per-callback call counts and wall-clock time."""

    def __init__(self) -> None:
        # name -> [calls, total_seconds, max_seconds]
        self._stats: dict[str, list[float]] = {}

    def record(self, fn: Callable[..., Any], seconds: float) -> None:
        """Attribute one dispatch of ``fn`` taking ``seconds`` wall time."""
        name = callback_name(fn)
        entry = self._stats.get(name)
        if entry is None:
            self._stats[name] = [1, seconds, seconds]
            return
        entry[0] += 1
        entry[1] += seconds
        if seconds > entry[2]:
            entry[2] = seconds

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        return sum(entry[1] for entry in self._stats.values())

    @property
    def total_calls(self) -> int:
        return int(sum(entry[0] for entry in self._stats.values()))

    def top(self, n: int = 10) -> list[dict[str, Any]]:
        """The ``n`` hottest callbacks by total wall time, descending."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        ranked = sorted(self._stats.items(), key=lambda kv: kv[1][1], reverse=True)
        rows = []
        for name, (calls, total, peak) in ranked[:n]:
            rows.append(
                {
                    "callback": name,
                    "calls": int(calls),
                    "total_s": total,
                    "mean_us": (total / calls) * 1e6 if calls else 0.0,
                    "max_us": peak * 1e6,
                }
            )
        return rows

    def report(self, n: int = 10) -> str:
        """Fixed-width "top-N hottest callbacks" text table."""
        rows = self.top(n)
        if not rows:
            return "(no callbacks profiled)"
        header = f"{'callback':<60} {'calls':>9} {'total_s':>9} {'mean_us':>9} {'max_us':>9}"
        lines = [header, "-" * len(header)]
        for row in rows:
            lines.append(
                f"{row['callback']:<60} {row['calls']:>9d} "
                f"{row['total_s']:>9.4f} {row['mean_us']:>9.1f} {row['max_us']:>9.1f}"
            )
        return "\n".join(lines)
