"""Post-hoc analysis of recorded traces.

Turns a stream of trace records (in memory or loaded from JSONL via
:func:`repro.obs.export.read_jsonl`) into the run-level views the
``omega-sim trace`` subcommand prints:

* **per-scheduler rollup** — transaction attempts, conflicted commits,
  conflict fraction (conflicted commits per scheduled job, matching
  :meth:`MetricsCollector.overall_conflict_fraction`), busy time split
  into productive work and conflict-retry rework;
* **conflict timelines** — conflicted commits per simulated-time bin
  per scheduler;
* **retry chains** — the per-job sequence of attempts with outcomes,
  ranked by length, which is how you answer "*why* did job 17 take 14
  attempts?";
* **contended machines** — the top-K machines by fine-grained
  ``txn.conflict`` rejections (events, rejected tasks, and the
  stale-sequence / partial-capacity / capacity cause split) — the
  ground truth the :class:`repro.faults.predictor.ConflictPredictor`
  hotness view estimates online;
* **timeline series** — the ``timeline.*`` samples recorded by
  :mod:`repro.obs.timeline` (utilization, busy fraction, conflict
  rate over simulated time), grouped per run and per scheduler;
* **wait-time percentiles** — p50/p90/p99/p99.9 per scheduler, merged
  from the histogram states each run's ``run.metrics`` record carries.
"""

from __future__ import annotations

import math
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.registry import Histogram


@dataclass
class SchedulerSummary:
    """Rollup of one scheduler's trace records."""

    name: str
    txn_attempts: int = 0
    txn_conflicted: int = 0
    conflict_claims: int = 0
    busy_seconds: float = 0.0
    busy_conflict_seconds: float = 0.0
    jobs_scheduled: int = 0
    jobs_abandoned: int = 0
    offers_issued: int = 0
    offers_accepted: int = 0
    offers_declined: int = 0
    conflict_times: list[float] = field(default_factory=list)

    @property
    def txn_committed(self) -> int:
        return self.txn_attempts - self.txn_conflicted

    @property
    def conflict_fraction(self) -> float:
        """Conflicted commit attempts per successfully scheduled job."""
        if self.jobs_scheduled == 0:
            return float("nan")
        return self.txn_conflicted / self.jobs_scheduled

    @property
    def productive_busy_seconds(self) -> float:
        return self.busy_seconds - self.busy_conflict_seconds


@dataclass
class JobSummary:
    """One job's path through the scheduler(s).

    ``job_id`` is the raw integer for single-run traces and the
    run-prefixed string (``run2/17``) when several runs share a trace.
    """

    job_id: int | str
    sched: str | None = None
    attempts: int = 0
    conflicts: int = 0
    scheduled: bool = False
    abandoned: bool = False
    first_t: float | None = None
    last_t: float | None = None
    #: Chronological attempt log: ``{"t", "attempt", "outcome"}`` dicts.
    chain: list[dict[str, Any]] = field(default_factory=list)

    def _touch(self, t: float | None, sched: str | None, attempt: int | None) -> None:
        if sched is not None:
            self.sched = sched
        if attempt is not None and attempt > self.attempts:
            self.attempts = attempt
        if t is not None:
            if self.first_t is None or t < self.first_t:
                self.first_t = t
            if self.last_t is None or t > self.last_t:
                self.last_t = t


class TraceSummary:
    """Aggregated view of one trace (possibly spanning several runs).

    When one JSONL file carries more than one run (a sweep, a federated
    run's member cells, back-to-back ``omega`` invocations appending to
    the same trace), scheduler names and job ids restart per run and
    would silently roll up together. Multi-run traces therefore prefix
    every rollup key with its run index (``run2/omega-batch``,
    ``run2/17``); single-run traces keep bare names, byte-identical to
    the historical output.
    """

    def __init__(self) -> None:
        self.records = 0
        self.runs = 0
        #: Set by :meth:`from_records` when the trace holds >1 run.
        self._prefix_runs = False
        self.record_names: TallyCounter[str] = TallyCounter()
        self.schedulers: dict[str, SchedulerSummary] = {}
        self.jobs: dict[int | str, JobSummary] = {}
        self.max_t = 0.0
        #: ``timeline.cell`` samples: ``{"t", "run", ...fields}`` dicts.
        self.timeline_cell: list[dict[str, Any]] = []
        #: ``timeline.sched`` samples keyed by scheduler name.
        self.timeline_sched: dict[str, list[dict[str, Any]]] = {}
        #: Wait-time (etc.) histograms merged from ``run.metrics``
        #: records, keyed by (metric name, sorted label items).
        self.histograms: dict[tuple[str, tuple[tuple[str, str], ...]], Histogram] = {}
        #: Per-machine ``txn.conflict`` tallies:
        #: machine -> {"events", "tasks", "<cause>": events}.
        self.machine_conflicts: dict[int, dict[str, int]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[dict[str, Any]]) -> "TraceSummary":
        summary = cls()
        records = list(records)
        total_runs = sum(
            1 for record in records if record.get("name") == "run.start"
        )
        summary._prefix_runs = total_runs > 1
        for record in records:
            summary._ingest(record)
        return summary

    def _sched(self, name: str) -> SchedulerSummary:
        entry = self.schedulers.get(name)
        if entry is None:
            entry = self.schedulers[name] = SchedulerSummary(name)
        return entry

    def _job(self, job_id: int | str) -> JobSummary:
        entry = self.jobs.get(job_id)
        if entry is None:
            entry = self.jobs[job_id] = JobSummary(job_id)
        return entry

    def _ingest(self, record: dict[str, Any]) -> None:
        self.records += 1
        name = record.get("name", "?")
        self.record_names[name] += 1
        t = record.get("t")
        if t is not None and t > self.max_t:
            self.max_t = t
        sched = record.get("sched")
        job_id = record.get("job")
        fields = record.get("fields") or {}

        if name == "run.start":
            self.runs += 1
            return
        if self._prefix_runs:
            # Several runs share this trace: scheduler names and job ids
            # restart per run, so every rollup key gets its run index.
            if sched is not None:
                sched = f"run{self.runs}/{sched}"
            if job_id is not None:
                job_id = f"run{self.runs}/{job_id}"
        if name == "timeline.cell":
            self.timeline_cell.append({"t": t, "run": self.runs, **fields})
            return
        if name == "timeline.sched" and sched is not None:
            series = self.timeline_sched.setdefault(sched, [])
            series.append({"t": t, "run": self.runs, **fields})
            return
        if name == "run.metrics":
            for entry in fields.get("histograms", ()):
                labels = entry.get("labels") or {}
                if self._prefix_runs and "scheduler" in labels:
                    labels = {
                        **labels,
                        "scheduler": f"run{self.runs}/{labels['scheduler']}",
                    }
                key = (entry["name"], tuple(sorted(labels.items())))
                histogram = self.histograms.get(key)
                if histogram is None:
                    self.histograms[key] = Histogram.from_state(
                        entry["state"], name=entry["name"], labels=dict(labels)
                    )
                else:
                    histogram.merge_state(entry["state"])
            return
        if job_id is not None:
            self._job(job_id)._touch(t, sched, record.get("attempt"))

        if name == "txn.commit" and sched is not None:
            entry = self._sched(sched)
            entry.txn_attempts += 1
            conflicted = bool(fields.get("conflicted"))
            if conflicted:
                entry.txn_conflicted += 1
                if t is not None:
                    entry.conflict_times.append(t)
            if job_id is not None:
                job = self._job(job_id)
                if conflicted:
                    job.conflicts += 1
                job.chain.append(
                    {
                        "t": t,
                        "attempt": record.get("attempt"),
                        "outcome": "conflict" if conflicted else "commit",
                        "accepted": fields.get("accepted"),
                        "rejected": fields.get("rejected"),
                    }
                )
        elif name == "txn.conflict" and sched is not None:
            self._sched(sched).conflict_claims += 1
            machine = fields.get("machine")
            if machine is not None:
                entry = self.machine_conflicts.get(machine)
                if entry is None:
                    entry = self.machine_conflicts[machine] = {
                        "events": 0,
                        "tasks": 0,
                    }
                entry["events"] += 1
                entry["tasks"] += int(fields.get("tasks") or 0)
                cause = fields.get("cause")
                if cause is not None:
                    entry[cause] = entry.get(cause, 0) + 1
        elif name == "sched.busy" and sched is not None:
            start = fields.get("t0")
            if t is not None and start is not None:
                entry = self._sched(sched)
                entry.busy_seconds += t - start
                if fields.get("conflict_retry"):
                    entry.busy_conflict_seconds += t - start
        elif name == "job.scheduled":
            if sched is not None:
                self._sched(sched).jobs_scheduled += 1
            if job_id is not None:
                job = self._job(job_id)
                job.scheduled = True
                job.chain.append(
                    {"t": t, "attempt": record.get("attempt"), "outcome": "scheduled"}
                )
        elif name == "job.abandoned":
            if sched is not None:
                self._sched(sched).jobs_abandoned += 1
            if job_id is not None:
                job = self._job(job_id)
                job.abandoned = True
                job.chain.append(
                    {"t": t, "attempt": record.get("attempt"), "outcome": "abandoned"}
                )
        elif name == "mesos.offer_issued":
            framework = fields.get("framework")
            if framework is not None:
                if self._prefix_runs:
                    framework = f"run{self.runs}/{framework}"
                self._sched(framework).offers_issued += 1
        elif name == "mesos.offer_accepted" and sched is not None:
            self._sched(sched).offers_accepted += 1
        elif name == "mesos.offer_declined" and sched is not None:
            self._sched(sched).offers_declined += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def scheduler_names(self) -> list[str]:
        return sorted(self.schedulers)

    def conflict_fraction(self, scheduler: str) -> float:
        return self._sched(scheduler).conflict_fraction

    def busy_seconds(self, scheduler: str) -> float:
        return self._sched(scheduler).busy_seconds

    def conflict_timeline(
        self, scheduler: str, bins: int = 12, horizon: float | None = None
    ) -> list[tuple[float, int]]:
        """Conflicted commits per time bin: ``[(bin_start, count), ...]``."""
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        span = horizon if horizon is not None else self.max_t
        if span <= 0:
            span = 1.0
        width = span / bins
        counts = [0] * bins
        for t in self._sched(scheduler).conflict_times:
            index = min(int(t / width), bins - 1)
            counts[index] += 1
        return [(i * width, counts[i]) for i in range(bins)]

    def timeline_sample_count(self) -> int:
        """Total ``timeline.*`` samples ingested (cell samples)."""
        return len(self.timeline_cell)

    def percentile_rows(self) -> list[dict[str, Any]]:
        """Per-scheduler wait-time percentile rows (p50/p90/p99/p99.9).

        Sourced from the ``jobs.wait_seconds`` histograms that each
        run's ``run.metrics`` record serializes; empty when the trace
        predates that record (older traces still summarize fine).
        """
        rows = []
        for (name, label_items), histogram in sorted(self.histograms.items()):
            if name != "jobs.wait_seconds":
                continue
            labels = dict(label_items)
            summary = histogram.summary()
            rows.append(
                {
                    "scheduler": labels.get("scheduler", "?"),
                    "count": summary["count"],
                    "mean_s": summary["mean"],
                    "p50_s": summary["p50"],
                    "p90_s": summary["p90"],
                    "p99_s": summary["p99"],
                    "p999_s": summary["p999"],
                    "max_s": summary["max"],
                }
            )
        return rows

    def escalation_rows(self) -> list[dict[str, Any]]:
        """Per-(scheduler, policy) escalation-latency rows.

        Sourced from the ``jobs.attempts_until_escalation`` histograms
        each run's ``run.metrics`` record serializes: how many attempts
        a job burned before its gang→incremental escalation, which is
        how the reactive (``starvation``) and predictive policies are
        compared head-to-head.
        """
        rows = []
        for (name, label_items), histogram in sorted(self.histograms.items()):
            if name != "jobs.attempts_until_escalation":
                continue
            labels = dict(label_items)
            summary = histogram.summary()
            rows.append(
                {
                    "scheduler": labels.get("scheduler", "?"),
                    "policy": labels.get("policy", "?"),
                    "escalations": summary["count"],
                    "mean_attempts": summary["mean"],
                    "p50": summary["p50"],
                    "p90": summary["p90"],
                    "max": summary["max"],
                }
            )
        return rows

    def contended_machine_rows(self, top_n: int = 10) -> list[dict[str, Any]]:
        """The ``top_n`` machines by fine-grained conflict rejections.

        Ranked by rejected tasks (events as the tie-break, machine id as
        the final deterministic tie-break), with the cause split the
        ``txn.conflict`` vocabulary defines. This is the *measured*
        contention the predictor's decayed hotness view estimates
        online — ``omega-sim trace`` on a predictor-on run shows how
        well the two agree.
        """
        if top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        ranked = sorted(
            self.machine_conflicts.items(),
            key=lambda item: (-item[1]["tasks"], -item[1]["events"], item[0]),
        )
        return [
            {
                "machine": machine,
                "events": entry["events"],
                "tasks": entry["tasks"],
                "stale_sequence": entry.get("stale_sequence", 0),
                "partial_capacity": entry.get("partial_capacity", 0),
                "capacity": entry.get("capacity", 0),
            }
            for machine, entry in ranked[:top_n]
        ]

    def retry_chains(self, top_n: int = 5) -> list[JobSummary]:
        """The ``top_n`` jobs with the most attempts, longest first."""
        if top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        ranked = sorted(
            self.jobs.values(), key=lambda j: (j.attempts, j.conflicts), reverse=True
        )
        return ranked[:top_n]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def scheduler_rows(self) -> list[dict[str, Any]]:
        rows = []
        for name in self.scheduler_names():
            entry = self.schedulers[name]
            rows.append(
                {
                    "scheduler": name,
                    "txns": entry.txn_attempts,
                    "conflicted": entry.txn_conflicted,
                    "conflict_frac": entry.conflict_fraction,
                    "jobs": entry.jobs_scheduled,
                    "abandoned": entry.jobs_abandoned,
                    "busy_s": entry.busy_seconds,
                    "retry_busy_s": entry.busy_conflict_seconds,
                }
            )
        return rows

    def render(self, top_jobs: int = 5, bins: int = 12) -> str:
        """The full ``omega-sim trace`` report as text."""
        lines = [
            f"trace summary: {self.records} records, "
            f"{self.runs or 1} run(s), max sim time t={self.max_t:.1f}s"
        ]
        names = ", ".join(
            f"{name}={count}" for name, count in sorted(self.record_names.items())
        )
        lines.append(f"record counts: {names}")

        if self.schedulers:
            lines.append("")
            lines.append("per-scheduler rollup:")
            lines.append(_format_rows(self.scheduler_rows()))

            percentiles = self.percentile_rows()
            if percentiles:
                lines.append("")
                lines.append("per-scheduler wait-time percentiles (seconds):")
                lines.append(_format_rows(percentiles))

            timelines = [
                (name, self.conflict_timeline(name, bins=bins))
                for name in self.scheduler_names()
                if self.schedulers[name].txn_conflicted
            ]
            if timelines:
                lines.append("")
                lines.append(f"conflict timeline (conflicted commits per {bins} bins):")
                peak = max(
                    count for _, timeline in timelines for _, count in timeline
                )
                for name, timeline in timelines:
                    bars = "".join(
                        _spark_char(count, peak) for _, count in timeline
                    )
                    total = sum(count for _, count in timeline)
                    lines.append(f"  {name:<24} |{bars}| {total} conflicts")

        escalations = self.escalation_rows()
        if escalations:
            lines.append("")
            lines.append("escalation latency (attempts until gang→incremental):")
            lines.append(_format_rows(escalations))

        contended = self.contended_machine_rows()
        if contended:
            lines.append("")
            lines.append("top contended machines (txn.conflict rejections):")
            lines.append(_format_rows(contended))

        chains = [job for job in self.retry_chains(top_jobs) if job.attempts > 0]
        if chains:
            lines.append("")
            lines.append("longest retry chains:")
            for job in chains:
                status = (
                    "scheduled"
                    if job.scheduled
                    else "abandoned"
                    if job.abandoned
                    else "in flight"
                )
                lines.append(
                    f"  job {job.job_id} ({job.sched}): {job.attempts} attempts, "
                    f"{job.conflicts} conflicts, {status}"
                    + (f" at t={job.last_t:.1f}s" if job.last_t is not None else "")
                )
        if self.timeline_cell:
            lines.append("")
            lines.append(
                f"timeline: {len(self.timeline_cell)} samples over "
                f"{len(self.timeline_sched)} scheduler series "
                "(chart them with `omega-sim report`)"
            )
        return "\n".join(lines)

    def json_rollup(self, top_jobs: int = 5, bins: int = 12) -> dict[str, Any]:
        """The machine-readable ``omega-sim trace --json`` document.

        Mirrors :meth:`render` section by section. NaN/inf never appear
        (they are not valid JSON): missing values serialize as null.
        """
        chains = [
            {
                "job": job.job_id,
                "scheduler": job.sched,
                "attempts": job.attempts,
                "conflicts": job.conflicts,
                "scheduled": job.scheduled,
                "abandoned": job.abandoned,
                "first_t": job.first_t,
                "last_t": job.last_t,
            }
            for job in self.retry_chains(top_jobs)
            if job.attempts > 0
        ]
        document = {
            "records": self.records,
            "runs": self.runs,
            "max_t": self.max_t,
            "record_names": dict(sorted(self.record_names.items())),
            "scheduler_rows": self.scheduler_rows(),
            "percentile_rows": self.percentile_rows(),
            "conflict_timelines": {
                name: [
                    {"bin_start": start, "conflicts": count}
                    for start, count in self.conflict_timeline(name, bins=bins)
                ]
                for name in self.scheduler_names()
                if self.schedulers[name].txn_conflicted
            },
            "retry_chains": chains,
            "escalation_rows": self.escalation_rows(),
            "contended_machines": self.contended_machine_rows(),
            "timeline": {
                "cell": self.timeline_cell,
                "schedulers": {
                    name: self.timeline_sched[name]
                    for name in sorted(self.timeline_sched)
                },
            },
        }
        return json_safe(document)


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with None (valid JSON)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {key: json_safe(inner) for key, inner in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(inner) for inner in value]
    return value


_SPARK_LEVELS = " .:-=+*#%@"


def _spark_char(count: int, peak: int) -> str:
    if peak <= 0 or count <= 0:
        return _SPARK_LEVELS[0]
    index = 1 + int((count / peak) * (len(_SPARK_LEVELS) - 2))
    return _SPARK_LEVELS[min(index, len(_SPARK_LEVELS) - 1)]


def _format_rows(rows: list[dict[str, Any]]) -> str:
    """Minimal fixed-width table (kept local: obs has no repro deps)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    ]
    return "\n".join([header, separator, *body])


def summarize_file(path: str) -> TraceSummary:
    """Load a JSONL trace and summarize it."""
    from repro.obs.export import read_jsonl

    return TraceSummary.from_records(read_jsonl(path))
