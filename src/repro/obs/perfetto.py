"""Export JSONL traces to the Chrome/Perfetto trace-event format.

``omega-sim perfetto RUN.jsonl`` converts any trace recorded with
``--trace`` into a JSON document that opens directly in
`ui.perfetto.dev <https://ui.perfetto.dev>`_ (or ``chrome://tracing``):

* each simulation run becomes a *process* (``pid``), named from its
  ``run.start`` record (architecture, cluster, seed);
* each scheduler becomes a *thread* (``tid``) inside its run, plus a
  ``run`` thread for run-level records;
* ``sched.busy`` intervals and recorded spans become duration ("X")
  events, every other point record an instant ("i") event;
* ``timeline.*`` samples (see :mod:`repro.obs.timeline`) become counter
  ("C") tracks — cell utilization, pending jobs, per-scheduler busy
  fraction / queue depth / conflict rate.

Timestamps are *simulated* microseconds (the trace-event unit), so the
Perfetto timeline reads in simulated time; span duration uses the
span's recorded wall time, the only place wall clock appears.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.summary import json_safe

#: Simulated seconds -> trace-event microseconds.
_US = 1_000_000.0

#: The per-run thread that hosts run-level (scheduler-less) records.
_RUN_TRACK = "run"


class _Tracks:
    """Deterministic pid/tid assignment in first-appearance order."""

    def __init__(self) -> None:
        self.metadata: list[dict[str, Any]] = []
        self._tids: dict[tuple[int, str], int] = {}
        self._next_tid: dict[int, int] = {}
        self._named_pids: set[int] = set()

    def name_process(self, pid: int, name: str) -> None:
        if pid in self._named_pids:
            return
        self._named_pids.add(pid)
        self.metadata.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )

    def tid(self, pid: int, track: str) -> int:
        self.name_process(pid, f"run {pid}")
        key = (pid, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._next_tid.get(pid, 0)
            self._next_tid[pid] = tid + 1
            self._tids[key] = tid
            self.metadata.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid


def _ts(t: Any) -> float:
    return float(t) * _US if t is not None else 0.0


def export_perfetto(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Convert trace records into a trace-event JSON document."""
    tracks = _Tracks()
    events: list[dict[str, Any]] = []
    pid = 0

    def counter(name: str, t: Any, values: dict[str, Any]) -> None:
        events.append(
            {
                "ph": "C",
                "name": name,
                "pid": pid,
                "tid": tracks.tid(pid, _RUN_TRACK),
                "ts": _ts(t),
                "args": values,
            }
        )

    for record in records:
        name = record.get("name", "?")
        fields = record.get("fields") or {}
        t = record.get("t")
        sched = record.get("sched")

        if name == "run.start":
            pid += 1
            label = " ".join(
                str(fields[key])
                for key in ("architecture", "cluster")
                if fields.get(key) is not None
            )
            seed = fields.get("seed")
            if seed is not None:
                label = f"{label} seed={seed}" if label else f"seed={seed}"
            tracks.name_process(pid, f"run {pid}: {label}" if label else f"run {pid}")
            continue

        if name == "timeline.cell":
            counter(
                "cell utilization",
                t,
                {
                    "cpu": fields.get("cpu_util", 0.0),
                    "mem": fields.get("mem_util", 0.0),
                },
            )
            counter("pending jobs", t, {"pending": fields.get("pending", 0)})
            counter(
                "active faults", t, {"faults": fields.get("active_faults", 0)}
            )
            continue
        if name == "timeline.sched" and sched is not None:
            counter(
                f"{sched} busy_frac", t, {"busy_frac": fields.get("busy_frac", 0.0)}
            )
            counter(
                f"{sched} queue_depth",
                t,
                {"queue_depth": fields.get("queue_depth", 0)},
            )
            counter(
                f"{sched} conflict_rate",
                t,
                {"conflict_rate": fields.get("conflict_rate", 0.0)},
            )
            continue

        track = sched if sched is not None else _RUN_TRACK
        tid = tracks.tid(pid, track)
        base = {
            "name": name,
            "pid": pid,
            "tid": tid,
            "args": {
                key: value
                for key, value in (
                    ("job", record.get("job")),
                    ("attempt", record.get("attempt")),
                    *fields.items(),
                )
                if value is not None
            },
        }
        if record.get("kind") == "span":
            # Simulated instant, wall-clock width: the recorded span.
            events.append(
                {
                    **base,
                    "ph": "X",
                    "ts": _ts(t),
                    "dur": max(0.0, float(record.get("wall_ms") or 0.0) * 1000.0),
                }
            )
        elif name == "sched.busy" and fields.get("t0") is not None and t is not None:
            events.append(
                {
                    **base,
                    "name": "think (conflict retry)"
                    if fields.get("conflict_retry")
                    else "think",
                    "ph": "X",
                    "ts": _ts(fields["t0"]),
                    "dur": max(0.0, (float(t) - float(fields["t0"])) * _US),
                }
            )
        else:
            events.append({**base, "ph": "i", "ts": _ts(t), "s": "t"})

    # Stable per-track time order: Perfetto tolerates global disorder,
    # but sorted tracks make the export testable and diff-friendly.
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return json_safe(
        {
            "traceEvents": tracks.metadata + events,
            "displayTimeUnit": "ms",
        }
    )


def export_file(input_path: str, output_path: str) -> int:
    """Convert a JSONL trace file; returns the trace-event count."""
    import json

    from repro.obs.export import read_jsonl

    document = export_perfetto(read_jsonl(input_path))
    tmp = output_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")
    import os

    os.replace(tmp, output_path)
    return len(document["traceEvents"])
