"""One federation member cell and its eventually-consistent digest.

Each cell wraps a full :class:`~repro.experiments.common.
LightweightSimulation` world (own CellState, schedulers, metrics
collector, chaos engine) attached to the federation's *shared* event
loop and to random streams forked per cell from the run's master seed.
The cell additionally carries the federation-facing state: reachability
flags driven by the federation chaos engine and the published
utilization/queue-depth digest the front door routes on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import LightweightConfig, LightweightSimulation
from repro.obs import recorder as _obs
from repro.sim import RandomStreams, Simulator
from repro.workload.job import Job


@dataclass(frozen=True)
class CellDigest:
    """What a cell advertises to the front door.

    Routing decisions read this — never the cell's live state — so the
    router sees exactly what a real eventually-consistent aggregate
    view would show it: data up to one staleness interval old, or
    frozen arbitrarily long by a feed partition.
    """

    utilization: float
    queue_depth: int
    published_at: float


class FederatedCell:
    """One member cell of a federation.

    ``staleness`` is the digest publication interval: 0 means the front
    door reads the live digest synchronously (no publication events are
    scheduled, which keeps a zero-staleness run's event sequence free
    of federation artifacts).
    """

    def __init__(
        self,
        index: int,
        config: LightweightConfig,
        sim: Simulator,
        streams: RandomStreams,
        staleness: float = 0.0,
    ) -> None:
        self.index = index
        self.name = f"c{index}"
        self.staleness = staleness
        self.world = LightweightSimulation(config, sim=sim, streams=streams)
        self.sim = sim
        #: Whole-cell blackout: schedulers crashed, unreachable from the
        #: front door (set by the federation chaos engine).
        self.blacked_out = False
        #: Front-door link down: internally healthy but unreachable.
        self.link_down = False
        #: Aggregate-feed partition: the published digest is frozen.
        self.partitioned = False
        self._published: CellDigest | None = None
        self._frozen: CellDigest | None = None

    # ------------------------------------------------------------------
    def build(self) -> "FederatedCell":
        self.world.build()
        return self

    @property
    def reachable(self) -> bool:
        """Whether a front-door submission can reach this cell now."""
        return not self.blacked_out and not self.link_down

    def submit(self, job: Job) -> None:
        assert self.world.submit is not None
        self.world.submit(job)

    def queue_depth(self) -> int:
        return sum(
            scheduler.queue_depth for scheduler in self.world.schedulers
        )

    # ------------------------------------------------------------------
    # The eventually-consistent digest
    # ------------------------------------------------------------------
    def live_digest(self) -> CellDigest:
        """The cell's true state right now (what a publish snapshots)."""
        return CellDigest(
            utilization=self.world.cpu_utilization(),
            queue_depth=self.queue_depth(),
            published_at=self.sim.now,
        )

    def publish_digest(self) -> None:
        """Publish the current digest to the aggregate view.

        Called every ``staleness`` seconds by the federation harness.
        While the feed is partitioned the publish is lost — the router
        keeps seeing the last pre-partition snapshot.
        """
        if self.partitioned:
            return
        self._published = self.live_digest()
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "fed.digest",
                t=self.sim.now,
                cell=self.name,
                utilization=self._published.utilization,
                queue_depth=self._published.queue_depth,
            )

    def freeze_digest(self) -> None:
        """Pin the digest the router sees for the partition's duration.

        With a nonzero staleness the frozen view is simply the last
        published snapshot; at zero staleness (synchronous reads) the
        partition snapshots the live state at onset.
        """
        self._frozen = (
            self._published if self.staleness > 0 else self.live_digest()
        )

    def thaw_digest(self) -> None:
        self._frozen = None

    def digest(self) -> CellDigest:
        """The digest the front door routes on."""
        if self.partitioned and self._frozen is not None:
            return self._frozen
        if self.staleness > 0 and self._published is not None:
            return self._published
        return self.live_digest()
