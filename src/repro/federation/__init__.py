"""Federated multi-cell Omega: N independent shared-state cells behind
an eventually-consistent front-door router, with whole-cell fault
tolerance (blackouts, aggregate-feed partitions, link flaps) and
cross-cell job migration. See docs/FEDERATION.md.
"""

from repro.federation.cells import CellDigest, FederatedCell
from repro.federation.chaos import FederationChaosEngine
from repro.federation.config import (
    ROUTING_POLICIES,
    FederationConfig,
    FederationFaultConfig,
)
from repro.federation.harness import FederatedResult, FederatedSimulation
from repro.federation.router import FederationAccountingError, FrontDoor

__all__ = [
    "CellDigest",
    "FederatedCell",
    "FederationAccountingError",
    "FederationChaosEngine",
    "FederationConfig",
    "FederationFaultConfig",
    "FederatedResult",
    "FederatedSimulation",
    "FrontDoor",
    "ROUTING_POLICIES",
]
