"""Configuration for the federated multi-cell simulation.

A federation is N independent Omega cells — each a full
:class:`~repro.experiments.common.LightweightSimulation` world — behind
a front-door router (see :mod:`repro.federation.router`). Both configs
here are frozen/primitive-only in the same spirit as
:class:`repro.faults.FaultConfig`, so federation sweep points stay
picklable across ``--jobs N`` worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.common import LightweightConfig

#: Front-door routing policies (Sliwko's taxonomy: static round-robin,
#: dynamic least-loaded, and randomized load-proportional spreading).
ROUTING_POLICIES = ("round-robin", "least-loaded", "weighted-random")


@dataclass(frozen=True)
class FederationFaultConfig:
    """Cell-scoped fault classes injected by the federation chaos engine.

    The default config injects nothing (:attr:`enabled` is False), which
    keeps every zero-intensity federated run byte-identical to a
    fault-free one; experiments define a baseline and scale it with
    :meth:`scaled`, mirroring :class:`repro.faults.FaultConfig`.
    """

    #: Per-cell mean time between whole-cell blackouts (seconds); None
    #: disables blackouts. A blackout crashes every scheduler in the
    #: cell (in-flight commits are lost), drains the pending queues for
    #: cross-cell migration, and recovers after :attr:`blackout_duration`.
    blackout_mtbf: float | None = None
    blackout_duration: float = 600.0
    #: Per-cell mean time between aggregate-feed partitions (seconds);
    #: None disables them. A partition freezes the cell's published
    #: digest — the router keeps routing on the stale snapshot — until
    #: it heals after :attr:`partition_duration`.
    partition_mtbf: float | None = None
    partition_duration: float = 900.0
    #: Per-cell mean time between front-door link flaps (seconds); None
    #: disables them. While the link is down the cell keeps scheduling
    #: internally but new submissions to it time out at the front door.
    flap_mtbf: float | None = None
    flap_duration: float = 60.0

    def __post_init__(self) -> None:
        for name in ("blackout_mtbf", "partition_mtbf", "flap_mtbf"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("blackout_duration", "partition_duration", "flap_duration"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def enabled(self) -> bool:
        """Whether this config injects any cell-scoped fault at all."""
        return (
            self.blackout_mtbf is not None
            or self.partition_mtbf is not None
            or self.flap_mtbf is not None
        )

    def scaled(self, intensity: float) -> "FederationFaultConfig":
        """This config with every fault rate multiplied by ``intensity``.

        Intensity 0 returns a fully disabled config (zero-intensity
        sweep rows run the exact fault-free code path); intensity k
        divides each MTBF by k.
        """
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        if intensity == 0:
            return FederationFaultConfig()
        return replace(
            self,
            blackout_mtbf=(
                self.blackout_mtbf / intensity
                if self.blackout_mtbf is not None
                else None
            ),
            partition_mtbf=(
                self.partition_mtbf / intensity
                if self.partition_mtbf is not None
                else None
            ),
            flap_mtbf=(
                self.flap_mtbf / intensity if self.flap_mtbf is not None else None
            ),
        )


@dataclass
class FederationConfig:
    """Everything that parameterizes one federated run.

    ``cell_config`` is the per-cell template: every cell runs it with
    ``external_arrivals`` set (the front door owns the workload
    generators) and a ``c{i}/`` scheduler-name prefix. The front door
    generates the combined arrival stream at ``num_cells`` times the
    template's rate factors, so each cell carries roughly one cell's
    load and a 1-cell federation degenerates to the single-cell
    baseline exactly.
    """

    cell_config: LightweightConfig
    num_cells: int = 1
    #: Aggregate-view staleness: each cell publishes its
    #: utilization/queue-depth digest every this many simulated seconds.
    #: 0 means the router reads live state synchronously (and adds no
    #: simulator events — the degenerate-baseline requirement).
    staleness: float = 0.0
    policy: str = "round-robin"
    fault_config: FederationFaultConfig = field(
        default_factory=FederationFaultConfig
    )
    #: How long the front door waits before declaring a submission to an
    #: unreachable cell failed (deterministic health-check timeout).
    route_timeout: float = 5.0
    #: Exponential backoff for a failed cell: suspension doubles from
    #: ``backoff_base`` per consecutive failure, capped at
    #: ``backoff_cap``. A successful delivery resets the counter.
    backoff_base: float = 10.0
    backoff_cap: float = 300.0
    #: Re-route budget per job before the front door abandons it
    #: ("reroute-cap").
    max_reroutes: int = 8
    #: Cross-cell migration budget per job before the front door
    #: abandons it ("migration-cap").
    max_migrations: int = 4

    def __post_init__(self) -> None:
        if self.num_cells < 1:
            raise ValueError(f"need at least one cell, got {self.num_cells}")
        if self.policy not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.policy!r}; "
                f"choose from {ROUTING_POLICIES}"
            )
        if self.staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {self.staleness}")
        if self.route_timeout <= 0:
            raise ValueError(
                f"route_timeout must be positive, got {self.route_timeout}"
            )
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                "need 0 < backoff_base <= backoff_cap, got "
                f"{self.backoff_base}, {self.backoff_cap}"
            )
        if self.max_reroutes < 1:
            raise ValueError(f"max_reroutes must be >= 1, got {self.max_reroutes}")
        if self.max_migrations < 1:
            raise ValueError(
                f"max_migrations must be >= 1, got {self.max_migrations}"
            )
