"""Cell-scoped fault injection for the federation.

Extends the chaos model of :mod:`repro.faults.chaos` one level up, to
whole cells: blackouts (every scheduler in the cell crashes and the
cell drops off the front door), aggregate-feed partitions (the cell's
digest freezes while the cell itself keeps working), and front-door
link flaps (the cell is briefly unreachable but internally healthy).

Determinism contract, identical to the intra-cell engine: every fault
timeline is drawn from its own named stream — ``blackout.{i}``,
``partition.{i}``, ``flap.{i}`` per cell — on a dedicated fork of the
run's master streams, so fault schedules are a pure function of the
master seed and independent of event interleaving, and a zero-intensity
config draws nothing at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.federation.cells import FederatedCell
from repro.federation.config import FederationFaultConfig
from repro.federation.router import FrontDoor
from repro.obs import recorder as _obs
from repro.sim import RandomStreams, Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np


class FederationChaosEngine:
    """Installs and drives the configured cell-scoped fault processes.

    ``streams`` must be a dedicated fork of the run's master streams
    (``streams.fork("fed-chaos")``): each (cell, fault class) pair then
    draws from its own child stream, so adding or removing one fault
    class never perturbs the timelines of the others.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        config: FederationFaultConfig,
        cells: Sequence[FederatedCell],
        front_door: FrontDoor,
        horizon: float | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.cells = list(cells)
        self.front_door = front_door
        self._streams = streams
        self._horizon = horizon
        self.blackouts = 0
        self.partitions = 0
        self.flaps = 0
        self.jobs_lost = 0
        self.jobs_drained = 0

    # ------------------------------------------------------------------
    def install(self) -> None:
        cfg = self.config
        for cell in self.cells:
            if cfg.blackout_mtbf is not None:
                self._arm(
                    cell,
                    self._streams.stream(f"blackout.{cell.index}"),
                    cfg.blackout_mtbf,
                    self._blackout,
                )
            if cfg.partition_mtbf is not None:
                self._arm(
                    cell,
                    self._streams.stream(f"partition.{cell.index}"),
                    cfg.partition_mtbf,
                    self._partition,
                )
            if cfg.flap_mtbf is not None:
                self._arm(
                    cell,
                    self._streams.stream(f"flap.{cell.index}"),
                    cfg.flap_mtbf,
                    self._flap,
                )

    def _arm(
        self,
        cell: FederatedCell,
        rng: "np.random.Generator",
        mtbf: float,
        fault: Callable[[FederatedCell, "np.random.Generator"], None],
    ) -> None:
        gap = float(rng.exponential(mtbf))
        when = self.sim.now + gap
        if self._horizon is None or when <= self._horizon:
            self.sim.at(when, fault, cell, rng)

    # ------------------------------------------------------------------
    # Whole-cell blackout / recovery
    # ------------------------------------------------------------------
    def _blackout(self, cell: FederatedCell, rng: "np.random.Generator") -> None:
        if not cell.blacked_out:
            cell.blacked_out = True
            self.blackouts += 1
            drained = []
            lost = 0
            for scheduler in cell.world.schedulers:
                inflight = scheduler.crash(requeue=False)
                if inflight is not None:
                    lost += 1
                    self.front_door.record_lost(inflight, cell)
                drained.extend(scheduler.drain_pending())
            self.jobs_lost += lost
            self.jobs_drained += len(drained)
            rec = _obs.RECORDER
            if rec.enabled:
                rec.event(
                    "fault.cell_blackout",
                    t=self.sim.now,
                    cell=cell.name,
                    inflight_lost=lost,
                    drained=len(drained),
                )
            self.sim.after(self.config.blackout_duration, self._recover, cell)
            # Migrate the drained backlog last, so the router sees the
            # cell already dark and never routes the backlog straight
            # back into it.
            self.front_door.migrate(drained, cell)
        self._arm(cell, rng, self.config.blackout_mtbf, self._blackout)

    def _recover(self, cell: FederatedCell) -> None:
        cell.blacked_out = False
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event("fault.cell_recover", t=self.sim.now, cell=cell.name)
        for scheduler in cell.world.schedulers:
            scheduler.restart()

    # ------------------------------------------------------------------
    # Aggregate-feed partition / heal
    # ------------------------------------------------------------------
    def _partition(self, cell: FederatedCell, rng: "np.random.Generator") -> None:
        if not cell.partitioned:
            cell.freeze_digest()
            cell.partitioned = True
            self.partitions += 1
            rec = _obs.RECORDER
            if rec.enabled:
                rec.event("fault.feed_partition", t=self.sim.now, cell=cell.name)
            self.sim.after(self.config.partition_duration, self._heal, cell)
        self._arm(cell, rng, self.config.partition_mtbf, self._partition)

    def _heal(self, cell: FederatedCell) -> None:
        cell.partitioned = False
        cell.thaw_digest()
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event("fault.feed_heal", t=self.sim.now, cell=cell.name)

    # ------------------------------------------------------------------
    # Front-door link flap
    # ------------------------------------------------------------------
    def _flap(self, cell: FederatedCell, rng: "np.random.Generator") -> None:
        if not cell.link_down:
            cell.link_down = True
            self.flaps += 1
            rec = _obs.RECORDER
            if rec.enabled:
                rec.event("fault.link_down", t=self.sim.now, cell=cell.name)
            self.sim.after(self.config.flap_duration, self._link_up, cell)
        self._arm(cell, rng, self.config.flap_mtbf, self._flap)

    def _link_up(self, cell: FederatedCell) -> None:
        cell.link_down = False
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event("fault.link_up", t=self.sim.now, cell=cell.name)
