"""The federation front door: routing, health checks, migration,
and the end-to-end job accounting invariant.

The front door owns the federation's workload: every synthesized job
enters here and is routed to a member cell under one of the pluggable
policies of :data:`~repro.federation.config.ROUTING_POLICIES`, driven
only by the cells' eventually-consistent digests. Health checking is
deterministic: a submission to an unreachable cell fails after a fixed
``route_timeout``, the cell is suspended under exponential backoff, and
the job is re-routed — bounded by ``max_reroutes`` with explicit
abandonment ("reroute-cap"). When the chaos engine blacks out a cell,
its drained backlog is migrated here — bounded by ``max_migrations``
("migration-cap") — and its lost in-flight jobs are recorded so that

    submitted == scheduled + pending + abandoned + lost_to_blackout

holds as a checked invariant (:meth:`FrontDoor.check_accounting`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.federation.cells import FederatedCell
from repro.federation.config import FederationConfig
from repro.obs import recorder as _obs
from repro.sim import RandomStreams, Simulator
from repro.workload.job import Job

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np


class FederationAccountingError(AssertionError):
    """The end-to-end job accounting invariant failed: a job was
    silently lost (or double-counted) somewhere between the front door
    and the cells."""


#: Smallest weight a cell keeps under weighted-random routing, so a
#: fully-utilized cell still receives a trickle of load (and the walk
#: over weights never divides by zero).
MIN_WEIGHT = 0.01


class FrontDoor:
    """Routes the federation's arrival stream across member cells."""

    def __init__(
        self,
        sim: Simulator,
        cells: Sequence[FederatedCell],
        config: FederationConfig,
        streams: RandomStreams,
    ) -> None:
        self.sim = sim
        self.cells = list(cells)
        self.config = config
        self._rr_next = 0
        self._router_rng: "np.random.Generator | None" = None
        if config.policy == "weighted-random":
            # Only the randomized policy draws; the deterministic
            # policies never touch a stream, so switching between them
            # cannot perturb any other stochastic process in the run.
            self._router_rng = streams.stream("fed.router")
        # -- health state, per cell index ------------------------------
        self.failures = [0] * len(self.cells)
        self.suspended_until = [0.0] * len(self.cells)
        # -- accounting -------------------------------------------------
        #: Every job that ever entered the federation, in arrival order.
        self.jobs: list[Job] = []
        self.submitted = 0
        self.jobs_migrated = 0
        self.jobs_rerouted = 0
        self.route_timeouts = 0
        self.lost_to_blackout: set[int] = set()
        self.abandoned_by_reason: dict[str, int] = {}
        self._reroutes: dict[int, int] = {}
        self._migrations: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """A new job arrived at the federation (workload-generator hook)."""
        self.submitted += 1
        self.jobs.append(job)
        self._route(job)

    def migrate(self, jobs: Sequence[Job], from_cell: FederatedCell) -> None:
        """Re-home a dead cell's drained backlog, bounded per job."""
        rec = _obs.RECORDER
        for job in jobs:
            count = self._migrations.get(job.job_id, 0) + 1
            self._migrations[job.job_id] = count
            if count > self.config.max_migrations:
                self._abandon(job, "migration-cap")
                continue
            self.jobs_migrated += 1
            if rec.enabled:
                rec.event(
                    "fed.migrate",
                    t=self.sim.now,
                    job=job.job_id,
                    cell=from_cell.name,
                    migration=count,
                )
            self._route(job)

    def record_lost(self, job: Job, cell: FederatedCell) -> None:
        """A blackout destroyed this job's in-flight transaction."""
        self.lost_to_blackout.add(job.job_id)
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "fed.job_lost", t=self.sim.now, job=job.job_id, cell=cell.name
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, job: Job) -> None:
        cell = self._pick()
        if cell is None:
            # Every cell is suspended: hold the job until the earliest
            # suspension expires, charging its reroute budget so a
            # permanently-dead federation abandons instead of spinning.
            wake = max(min(self.suspended_until), self.sim.now)
            rec = _obs.RECORDER
            if rec.enabled:
                rec.event(
                    "fed.route_stalled", t=self.sim.now, job=job.job_id, until=wake
                )
            self.sim.at(wake, self._retry_route, job)
            return
        self._deliver(job, cell)

    def _retry_route(self, job: Job) -> None:
        if not self._charge_reroute(job):
            return
        self._route(job)

    def _deliver(self, job: Job, cell: FederatedCell) -> None:
        if cell.reachable:
            self.failures[cell.index] = 0
            cell.submit(job)
            return
        # The cell is dark: the submission hangs for the deterministic
        # health-check timeout before the front door gives up on it.
        self.sim.after(self.config.route_timeout, self._route_failed, job, cell)

    def _route_failed(self, job: Job, cell: FederatedCell) -> None:
        index = cell.index
        self.failures[index] += 1
        self.route_timeouts += 1
        backoff = min(
            self.config.backoff_cap,
            self.config.backoff_base * 2.0 ** (self.failures[index] - 1),
        )
        self.suspended_until[index] = self.sim.now + backoff
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "fed.route_timeout",
                t=self.sim.now,
                job=job.job_id,
                cell=cell.name,
                failures=self.failures[index],
                backoff=backoff,
            )
        if not self._charge_reroute(job):
            return
        self._route(job)

    def _charge_reroute(self, job: Job) -> bool:
        count = self._reroutes.get(job.job_id, 0) + 1
        self._reroutes[job.job_id] = count
        if count > self.config.max_reroutes:
            self._abandon(job, "reroute-cap")
            return False
        self.jobs_rerouted += 1
        return True

    def _abandon(self, job: Job, reason: str) -> None:
        """Terminal front-door failure, accounted explicitly."""
        job.abandoned = True
        self.abandoned_by_reason[reason] = (
            self.abandoned_by_reason.get(reason, 0) + 1
        )
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "fed.abandoned",
                t=self.sim.now,
                job=job.job_id,
                reason=reason,
            )

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------
    def _eligible(self) -> list[FederatedCell]:
        now = self.sim.now
        return [
            cell for cell in self.cells if self.suspended_until[cell.index] <= now
        ]

    def _pick(self) -> FederatedCell | None:
        eligible = self._eligible()
        if not eligible:
            return None
        policy = self.config.policy
        if policy == "round-robin":
            return self._pick_round_robin(eligible)
        if policy == "least-loaded":
            return self._pick_least_loaded(eligible)
        return self._pick_weighted_random(eligible)

    def _pick_round_robin(self, eligible: list[FederatedCell]) -> FederatedCell:
        """The next eligible cell in fixed rotation order."""
        total = len(self.cells)
        eligible_indices = {cell.index for cell in eligible}
        for offset in range(total):
            index = (self._rr_next + offset) % total
            if index in eligible_indices:
                self._rr_next = (index + 1) % total
                return self.cells[index]
        raise AssertionError("unreachable: eligible list was non-empty")

    def _pick_least_loaded(self, eligible: list[FederatedCell]) -> FederatedCell:
        """Lowest advertised utilization; ties go to the lowest index."""
        return min(eligible, key=lambda cell: (cell.digest().utilization, cell.index))

    def _pick_weighted_random(
        self, eligible: list[FederatedCell]
    ) -> FederatedCell:
        """Randomized spread proportional to advertised free capacity."""
        assert self._router_rng is not None
        weights = [
            max(MIN_WEIGHT, 1.0 - cell.digest().utilization) for cell in eligible
        ]
        target = float(self._router_rng.random()) * sum(weights)
        cumulative = 0.0
        for cell, weight in zip(eligible, weights):
            cumulative += weight
            if target < cumulative:
                return cell
        return eligible[-1]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def accounting(self) -> dict[str, int]:
        """Classify every job the federation ever accepted.

        Classification priority handles overlap deterministically: a
        job that eventually scheduled counts as scheduled even if an
        earlier home for it blacked out; an abandoned job counts as
        abandoned even if it once sat in a dead cell's queue.
        """
        scheduled = pending = abandoned = lost = 0
        for job in self.jobs:
            if job.fully_scheduled_time is not None:
                scheduled += 1
            elif job.abandoned:
                abandoned += 1
            elif job.job_id in self.lost_to_blackout:
                lost += 1
            else:
                pending += 1
        return {
            "submitted": self.submitted,
            "scheduled": scheduled,
            "pending": pending,
            "abandoned": abandoned,
            "lost_to_blackout": lost,
        }

    def check_accounting(self) -> dict[str, int]:
        """Raise unless submitted == scheduled + pending + abandoned +
        lost_to_blackout — i.e. no job was silently lost."""
        counts = self.accounting()
        total = (
            counts["scheduled"]
            + counts["pending"]
            + counts["abandoned"]
            + counts["lost_to_blackout"]
        )
        if counts["submitted"] != total:
            raise FederationAccountingError(
                f"job accounting does not balance: submitted "
                f"{counts['submitted']} != scheduled {counts['scheduled']} "
                f"+ pending {counts['pending']} + abandoned "
                f"{counts['abandoned']} + lost_to_blackout "
                f"{counts['lost_to_blackout']} (= {total})"
            )
        if counts["submitted"] != len(self.jobs):
            raise FederationAccountingError(
                f"submission ledger out of sync: counted {counts['submitted']} "
                f"but tracked {len(self.jobs)} jobs"
            )
        return counts
