"""Builds and runs one federated multi-cell simulation.

The federation owns a single shared event loop: every member cell is a
full :class:`~repro.experiments.common.LightweightSimulation` world
attached to it (cell 0 on the run's master streams, cell *i* on a
``cell.{i}`` fork, so a 1-cell federation draws byte-identical
randomness to the single-cell baseline). The front door owns the
workload generators — the combined arrival stream runs at
``num_cells`` times the per-cell template rate — and routes arrivals
on the cells' eventually-consistent digests.

The caller supplies the master :class:`~repro.sim.RandomStreams`
(see :func:`repro.experiments.federation.build_federation`): this
module is covered by the fault-injection lint discipline (FIJ001) and
therefore never constructs its own entropy source.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analysis import sanitizer as _san
from repro.experiments.common import LightweightResult
from repro.federation.cells import FederatedCell
from repro.federation.chaos import FederationChaosEngine
from repro.federation.config import FederationConfig
from repro.federation.router import FrontDoor
from repro.obs import recorder as _obs
from repro.obs.registry import Histogram, publish_sim_stats
from repro.schedulers.mesos import reset_offer_ids
from repro.sim import RandomStreams, Simulator
from repro.sim.random import derive_seed
from repro.workload.generator import WorkloadGenerator
from repro.workload.job import JobType, reset_job_ids


@dataclass
class FederatedResult:
    """Metrics of one federated run.

    Pooled accessors (:meth:`mean_wait`, :meth:`busyness`, ...) reduce
    to *exactly* the single-cell :class:`~repro.metrics.results.
    RunSummary` arithmetic when the federation has one cell — the
    degenerate-baseline guarantee the gate test enforces byte-for-byte.
    """

    config: FederationConfig
    cell_results: list[LightweightResult]
    accounting: dict[str, int]
    jobs_migrated: int
    jobs_rerouted: int
    route_timeouts: int
    abandoned_by_reason: dict[str, int]
    blackouts: int
    partitions: int
    flaps: int
    final_cpu_utilization: float
    events_processed: int
    sim_stats: dict[str, float | int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Pooled metrics (degenerate-exact for one cell)
    # ------------------------------------------------------------------
    def _role_names(self, result: LightweightResult, role: str) -> list[str]:
        if role == "batch":
            return result.batch_scheduler_names
        if role == "service":
            return result.service_scheduler_names
        raise ValueError(f"role must be 'batch' or 'service', got {role!r}")

    def mean_wait(self, job_type: JobType) -> float:
        """Federation-wide average wait time: the pooled per-job list."""
        waits: list[float] = []
        for result in self.cell_results:
            waits.extend(result.metrics.wait_times(job_type))
        if not waits:
            return float("nan")
        return sum(waits) / len(waits)

    def busyness(self, role: str) -> float:
        """Median daily busyness averaged over every scheduler of the
        role, across all cells."""
        values: list[float] = []
        for result in self.cell_results:
            values.extend(
                result.metrics.median_busyness(name, result.horizon)
                for name in self._role_names(result, role)
            )
        return sum(values) / len(values)

    def busyness_mad(self, role: str) -> float:
        values: list[float] = []
        for result in self.cell_results:
            values.extend(
                result.metrics.mad_busyness(name, result.horizon)
                for name in self._role_names(result, role)
            )
        return sum(values) / len(values)

    def conflict_fraction(self, role: str) -> float:
        """Conflicts per successfully scheduled job, pooled over every
        scheduler of the role across all cells."""
        conflicts = 0
        scheduled = 0
        for result in self.cell_results:
            for name in self._role_names(result, role):
                per_scheduler = result.metrics.schedulers[name]
                conflicts += sum(per_scheduler.conflicts.values())
                scheduled += sum(per_scheduler.jobs_scheduled.values())
        if scheduled == 0:
            return float("nan")
        return conflicts / scheduled

    @property
    def jobs_submitted(self) -> int:
        """Jobs that entered the federation (front-door count: each job
        once, however many times it was rerouted or migrated)."""
        return self.accounting["submitted"]

    @property
    def jobs_scheduled(self) -> int:
        return sum(result.jobs_scheduled for result in self.cell_results)

    @property
    def jobs_abandoned(self) -> int:
        """Cell-level abandonments plus the front door's own
        (reroute-cap / migration-cap)."""
        return sum(result.jobs_abandoned for result in self.cell_results) + sum(
            self.abandoned_by_reason.values()
        )

    @property
    def jobs_lost_to_blackout(self) -> int:
        return self.accounting["lost_to_blackout"]

    @property
    def unscheduled_fraction(self) -> float:
        if self.jobs_submitted == 0:
            return 0.0
        return 1.0 - self.jobs_scheduled / self.jobs_submitted

    # ------------------------------------------------------------------
    # Federation-wide wait-time percentiles (Histogram.merge_state)
    # ------------------------------------------------------------------
    def merged_wait_histogram(self) -> Histogram:
        """Every cell's per-scheduler ``jobs.wait_seconds`` histograms
        folded into one federation-wide histogram via
        :meth:`~repro.obs.registry.Histogram.merge_state`."""
        merged = Histogram("jobs.wait_seconds", {"scope": "federation"})
        states = []
        for result in self.cell_results:
            for metric in result.metrics.registry:
                if isinstance(metric, Histogram) and metric.name == "jobs.wait_seconds":
                    states.append(
                        (tuple(sorted(metric.labels.items())), metric.state())
                    )
        states.sort(key=lambda pair: pair[0])
        for _, state in states:
            merged.merge_state(state)
        return merged

    def wait_percentiles(self) -> dict[str, float]:
        merged = self.merged_wait_histogram()
        return {
            "wait_p50": merged.percentile(50.0),
            "wait_p99": merged.percentile(99.0),
            "wait_p999": merged.percentile(99.9),
        }


class FederatedSimulation:
    """Builds and runs one configured federation.

    ``streams`` is the run's master :class:`~repro.sim.RandomStreams`,
    created by the caller from the cell template's seed; cell 0 shares
    it directly (the degenerate-baseline identity), higher cells fork.
    """

    def __init__(self, config: FederationConfig, streams: RandomStreams) -> None:
        self.config = config
        self.sim = Simulator()
        self.streams = streams
        self.cells: list[FederatedCell] = []
        self.front_door: FrontDoor | None = None
        self.chaos: FederationChaosEngine | None = None
        self.generators: dict[JobType, WorkloadGenerator] = {}
        self._built = False

    # ------------------------------------------------------------------
    def build(self) -> "FederatedSimulation":
        if self._built:
            raise RuntimeError("federation already built")
        self._built = True
        if _san.ACTIVE is None and _san.env_enabled():
            _san.install()
        if _san.ACTIVE is not None:
            _san.ACTIVE.begin_run(now=lambda: self.sim.now)
        # Global per-run counters, reset once for the whole federation
        # (each cell skips them: an injected simulator marks the cell as
        # non-owning, and a per-cell sanitizer begin_run would wipe the
        # shadows of already-built sibling cells).
        reset_job_ids()
        reset_offer_ids()
        config = self.config
        base = config.cell_config
        for index in range(config.num_cells):
            cell_config = replace(
                base,
                external_arrivals=True,
                name_prefix=f"c{index}/",
                seed=(
                    base.seed
                    if index == 0
                    else derive_seed(base.seed, f"cell.{index}")
                ),
            )
            cell_streams = (
                self.streams if index == 0 else self.streams.fork(f"cell.{index}")
            )
            cell = FederatedCell(
                index,
                cell_config,
                self.sim,
                cell_streams,
                staleness=config.staleness,
            )
            cell.build()
            self.cells.append(cell)
        self.front_door = FrontDoor(self.sim, self.cells, config, self.streams)
        if config.staleness > 0:
            for cell in self.cells:
                cell.publish_digest()
                self.sim.every(
                    config.staleness, cell.publish_digest, until=base.horizon
                )
        self._start_workload()
        if config.fault_config.enabled:
            self.chaos = FederationChaosEngine(
                self.sim,
                self.streams.fork("fed-chaos"),
                config.fault_config,
                self.cells,
                self.front_door,
                horizon=base.horizon,
            )
            self.chaos.install()
        return self

    def _start_workload(self) -> None:
        """The front door's combined arrival stream.

        Same named streams as a single-cell run (``workload.batch`` /
        ``workload.service`` off the master streams) at ``num_cells``
        times the template rates: one cell at multiplier 1 is exactly
        the baseline workload.
        """
        assert self.front_door is not None
        base = self.config.cell_config
        multiplier = float(self.config.num_cells)
        self.generators = {
            JobType.BATCH: WorkloadGenerator(
                self.sim,
                base.preset.batch,
                JobType.BATCH,
                self.streams.stream("workload.batch"),
                self.front_door.submit,
                base.horizon,
                rate_factor=base.batch_rate_factor * multiplier,
            ),
            JobType.SERVICE: WorkloadGenerator(
                self.sim,
                base.preset.service,
                JobType.SERVICE,
                self.streams.stream("workload.service"),
                self.front_door.submit,
                base.horizon,
                rate_factor=base.service_rate_factor * multiplier,
            ),
        }
        for job_type in (JobType.BATCH, JobType.SERVICE):
            self.generators[job_type].start()

    # ------------------------------------------------------------------
    def check_invariants(self) -> list[str]:
        """Per-cell post-run invariant gate (every cell state must stay
        internally consistent, blackouts included)."""
        violations: list[str] = []
        for cell in self.cells:
            violations.extend(cell.world.check_invariants())
        return violations

    def cpu_utilization(self) -> float:
        used = sum(
            state.used_cpu for cell in self.cells for state in cell.world.states
        )
        total = sum(
            state.cell.total_cpu
            for cell in self.cells
            for state in cell.world.states
        )
        return used / total

    # ------------------------------------------------------------------
    def run(self) -> FederatedResult:
        if not self._built:
            self.build()
        config = self.config
        base = config.cell_config
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "run.start",
                t=self.sim.now,
                architecture="federation",
                horizon=base.horizon,
                seed=base.seed,
                cluster=base.preset.name,
                cells=config.num_cells,
                staleness=config.staleness,
                policy=config.policy,
            )
        self.sim.run(until=base.horizon)
        stats = self.sim.stats()
        publish_sim_stats(stats)
        cell_results = [cell.world.finalize() for cell in self.cells]
        assert self.front_door is not None
        accounting = self.front_door.check_accounting()
        chaos = self.chaos
        return FederatedResult(
            config=config,
            cell_results=cell_results,
            accounting=accounting,
            jobs_migrated=self.front_door.jobs_migrated,
            jobs_rerouted=self.front_door.jobs_rerouted,
            route_timeouts=self.front_door.route_timeouts,
            abandoned_by_reason=dict(self.front_door.abandoned_by_reason),
            blackouts=chaos.blackouts if chaos is not None else 0,
            partitions=chaos.partitions if chaos is not None else 0,
            flaps=chaos.flaps if chaos is not None else 0,
            final_cpu_utilization=self.cpu_utilization(),
            events_processed=self.sim.events_processed,
            sim_stats=stats,
        )
