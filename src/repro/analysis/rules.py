"""The omega-lint rule catalogue.

Each rule guards one invariant the Omega reproduction's evaluation
rests on (see ``docs/STATIC_ANALYSIS.md`` for the full rationale):

======  ==============================================================
DET001  Raw RNG construction outside ``repro/sim/random.py`` breaks
        the named-stream discipline that keeps A/B workloads identical.
DET002  Wall-clock reads in simulation logic leak real time into
        simulated results.
DET003  Unordered set/dict iteration in scheduler/placement decision
        paths makes placements depend on hash order.
TXN001  Direct writes to master cell-state resource fields bypass the
        section 3.4 optimistic-commit path.
FLT001  ``==``/``!=`` on resource floats ignores the EPSILON tolerance
        the resource arithmetic is built on.
GEN001  Mutable default arguments alias state across calls.
FIJ001  Fault-injection hooks built on the wall clock or a non-forked
        RNG make chaos schedules unreplayable.
RBS001  Swallowed exceptions in recovery-critical paths (workers,
        checkpoint/artifact writes) turn crash-safety into silent
        data loss.
======  ==============================================================

Rules receive a :class:`ModuleContext` (parsed AST with parent links,
import alias maps, and the active :class:`~repro.analysis.config.
LintConfig`) and yield :class:`~repro.analysis.diagnostics.Diagnostic`
objects. Everything here is stdlib ``ast`` — no new dependencies.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.config import LintConfig, match_path
from repro.analysis.diagnostics import Diagnostic


# ----------------------------------------------------------------------
# Module context shared by all rules
# ----------------------------------------------------------------------
@dataclass
class ModuleContext:
    """One parsed module plus everything rules need to inspect it.

    The tree is walked exactly once, at construction: ``nodes`` caches
    the full pre-order node list so every rule — and the project-wide
    call-graph builder — iterates the same walk instead of re-walking
    (or worse, re-parsing) the module.
    """

    path: str
    tree: ast.Module
    config: LintConfig
    #: local alias -> canonical module name, for ``import numpy as np``
    #: style imports of the modules the rules care about.
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: cached pre-order walk of ``tree`` (includes ``tree`` itself).
    nodes: list[ast.AST] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        self.nodes = list(ast.walk(self.tree))
        for node in self.nodes:
            for child in ast.iter_child_nodes(node):
                child._omega_parent = node  # type: ignore[attr-defined]
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in ("numpy", "time", "datetime", "random"):
                        self.module_aliases[alias.asname or alias.name] = alias.name

    def aliases_of(self, module: str) -> set[str]:
        return {
            alias
            for alias, canonical in self.module_aliases.items()
            if canonical == module
        }


def parent(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_omega_parent", None)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule:
    """Base class: subclasses set the class attributes and ``check``."""

    id: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
        )


# ----------------------------------------------------------------------
# DET001 — raw RNG construction/use
# ----------------------------------------------------------------------
class RawRandomRule(Rule):
    """All randomness must flow through named RandomStreams streams."""

    id = "DET001"
    description = (
        "raw RNG construction or use outside repro/sim/random.py "
        "(breaks seeded named-stream reproducibility)"
    )

    #: numpy.random attributes that are types, not entropy sources —
    #: fine to reference in annotations and isinstance checks.
    _TYPE_NAMES = frozenset({"Generator", "BitGenerator", "SeedSequence"})

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if match_path(module.path, module.config.rng_allow):
            return
        numpy_aliases = module.aliases_of("numpy")
        for node in module.nodes:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("numpy.random"):
                        yield self.diagnostic(
                            module,
                            node,
                            f"import of {alias.name!r}: draw from a named "
                            "RandomStreams stream instead of a raw RNG",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" or (
                    node.module is not None and node.module.startswith("numpy.random")
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        f"import from {node.module!r}: draw from a named "
                        "RandomStreams stream instead of a raw RNG",
                    )
                elif node.module == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        "import of numpy.random: draw from a named "
                        "RandomStreams stream instead of a raw RNG",
                    )
            elif isinstance(node, ast.Attribute):
                dotted = dotted_name(node)
                if dotted is None:
                    continue
                head, _, rest = dotted.partition(".")
                if head not in numpy_aliases:
                    continue
                sub = rest.split(".")
                if len(sub) >= 2 and sub[0] == "random":
                    if sub[1] not in self._TYPE_NAMES:
                        yield self.diagnostic(
                            module,
                            node,
                            f"use of {head}.random.{sub[1]}: construct RNGs "
                            "only in repro/sim/random.py (RandomStreams)",
                        )
                elif rest == "random":
                    # Bare `np.random` (e.g. passed around as a module
                    # object) — unless it is the prefix of a chain we
                    # already classified above.
                    if not isinstance(parent(node), ast.Attribute):
                        yield self.diagnostic(
                            module,
                            node,
                            f"use of the {head}.random module: draw from a "
                            "named RandomStreams stream instead",
                        )


# ----------------------------------------------------------------------
# DET002 — wall-clock reads
# ----------------------------------------------------------------------
class WallClockRule(Rule):
    """Simulation logic must use simulated time, never the wall clock."""

    id = "DET002"
    description = (
        "wall-clock read outside the observability allowlist "
        "(simulated results must not depend on real time)"
    )

    _TIME_FNS = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
            "process_time_ns",
        }
    )
    _DATETIME_FNS = frozenset({"now", "today", "utcnow"})

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if match_path(module.path, module.config.clock_allow):
            return
        time_aliases = module.aliases_of("time")
        datetime_aliases = module.aliases_of("datetime")
        #: names bound by `from datetime import datetime/date`
        datetime_classes: set[str] = set()
        for node in module.nodes:
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self._TIME_FNS:
                            yield self.diagnostic(
                                module,
                                node,
                                f"import of time.{alias.name}: use simulated "
                                "time (Simulator.now) instead of the wall clock",
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_classes.add(alias.asname or alias.name)
        for node in module.nodes:
            if not isinstance(node, ast.Attribute):
                continue
            dotted = dotted_name(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] in time_aliases and len(parts) == 2:
                if parts[1] in self._TIME_FNS:
                    yield self.diagnostic(
                        module,
                        node,
                        f"wall-clock read {dotted}: use simulated time "
                        "(Simulator.now) instead",
                    )
            elif node.attr in self._DATETIME_FNS:
                base = parts[:-1]
                if (base[0] in datetime_aliases and base[1:] in (["datetime"], ["date"])) or (
                    len(base) == 1 and base[0] in datetime_classes
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        f"wall-clock read {dotted}: use simulated time "
                        "(Simulator.now) instead",
                    )


# ----------------------------------------------------------------------
# DET003 — unordered iteration in decision paths
# ----------------------------------------------------------------------
class UnorderedIterationRule(Rule):
    """Set/dict iteration order must be made explicit where it can
    influence scheduling decisions."""

    id = "DET003"
    description = (
        "iteration over a set/dict in a scheduler/placement decision "
        "path without sorted() (hash-order nondeterminism)"
    )

    _DICT_METHODS = frozenset({"keys", "values", "items"})
    #: builtins whose result does not depend on argument order, so a
    #: comprehension/generator fed straight into them is exempt.
    _ORDER_INSENSITIVE = frozenset(
        {"sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset"}
    )
    _WRAPPERS = frozenset({"list", "tuple"})

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not match_path(module.path, module.config.decision_paths):
            return
        unordered_attrs = self._unordered_self_attrs(module)
        for scope in self._scopes(module):
            local_unordered = self._unordered_locals(scope)
            for node in ast.walk(scope):
                if self._owning_scope(node) is not scope:
                    continue
                for iter_expr, consumer in self._iteration_sites(node):
                    if consumer in self._ORDER_INSENSITIVE:
                        continue
                    why = self._unordered_reason(
                        iter_expr, local_unordered, unordered_attrs
                    )
                    if why is not None:
                        yield self.diagnostic(
                            module,
                            iter_expr,
                            f"iteration over {why} in a decision path: wrap "
                            "in sorted() to pin the order",
                        )

    # -- helpers -------------------------------------------------------
    def _scopes(self, module: ModuleContext) -> list[ast.AST]:
        return [module.tree] + [
            node
            for node in module.nodes
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def _owning_scope(self, node: ast.AST) -> ast.AST:
        current = parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                return current
            current = parent(current)
        return node

    def _iteration_sites(self, node: ast.AST) -> list[tuple[ast.expr, str | None]]:
        """(iterated expression, consuming builtin or None) pairs."""
        sites: list[tuple[ast.expr, str | None]] = []
        if isinstance(node, ast.For):
            sites.append((node.iter, None))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            consumer = None
            up = parent(node)
            if (
                isinstance(up, ast.Call)
                and isinstance(up.func, ast.Name)
                and node in up.args
            ):
                consumer = up.func.id
            for gen in node.generators:
                sites.append((gen.iter, consumer))
        return sites

    def _unordered_locals(self, scope: ast.AST) -> set[str]:
        """Names assigned a set/dict literal or constructor in ``scope``."""
        names: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                value_unordered = self._is_unordered_literal(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if value_unordered:
                            names.add(target.id)
                        else:
                            names.discard(target.id)
        return names

    def _unordered_self_attrs(self, module: ModuleContext) -> set[str]:
        """``self.X`` attributes assigned set/dict values in ``__init__``."""
        attrs: set[str] = set()
        for node in module.nodes:
            if isinstance(node, ast.FunctionDef) and node.name == "__init__":
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                        value = sub.value
                        targets = (
                            sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                        )
                        if value is not None and self._is_unordered_literal(value):
                            for target in targets:
                                if (
                                    isinstance(target, ast.Attribute)
                                    and isinstance(target.value, ast.Name)
                                    and target.value.id == "self"
                                ):
                                    attrs.add(target.attr)
        return attrs

    def _is_unordered_literal(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.Dict, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset", "dict")
        return False

    def _unordered_reason(
        self,
        expr: ast.expr,
        local_unordered: set[str],
        unordered_attrs: set[str],
    ) -> str | None:
        """Why ``expr`` iterates in hash/insertion order, or None."""
        # Unwrap list()/tuple() materializations: they preserve order.
        while (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in self._WRAPPERS
            and len(expr.args) == 1
        ):
            expr = expr.args[0]
        if self._is_unordered_literal(expr):
            return "a set/dict literal"
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in self._DICT_METHODS
            and not expr.args
        ):
            return f"dict .{expr.func.attr}()"
        if isinstance(expr, ast.Name) and expr.id in local_unordered:
            return f"the set/dict {expr.id!r}"
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in unordered_attrs
        ):
            return f"the set/dict attribute self.{expr.attr}"
        return None


# ----------------------------------------------------------------------
# TXN001 — cell-state mutation outside the commit path
# ----------------------------------------------------------------------
class CellStateWriteRule(Rule):
    """Master cell state changes only through claim/release/commit."""

    id = "TXN001"
    description = (
        "write to a CellState resource field outside the transaction "
        "commit path (bypasses optimistic concurrency control)"
    )

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        config = module.config
        if match_path(module.path, config.txn_allow):
            return
        fields_guarded = set(config.resource_fields)
        for scope in self._scopes(module):
            aliases = self._field_aliases(scope, fields_guarded, config)
            for node in ast.walk(scope):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    diag = self._check_target(
                        module, node, target, fields_guarded, aliases, config
                    )
                    if diag is not None:
                        yield diag

    def _scopes(self, module: ModuleContext) -> list[ast.AST]:
        return [module.tree] + [
            node
            for node in module.nodes
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def _check_target(
        self,
        module: ModuleContext,
        stmt: ast.AST,
        target: ast.expr,
        fields_guarded: set[str],
        aliases: dict[str, str],
        config: LintConfig,
    ) -> Diagnostic | None:
        # x.free_cpu = ... / x.free_cpu[i] = ... / x.free_cpu[i] -= ...
        attr = target
        if isinstance(attr, ast.Subscript):
            if isinstance(attr.value, ast.Name) and attr.value.id in aliases:
                return self.diagnostic(
                    module,
                    stmt,
                    f"write through {attr.value.id!r}, an alias of "
                    f"{aliases[attr.value.id]}: mutate cell state only via "
                    "CellState.claim/release or transaction.commit",
                )
            attr = attr.value
        if not (isinstance(attr, ast.Attribute) and attr.attr in fields_guarded):
            return None
        receiver = dotted_name(attr.value)
        if receiver is not None and self._is_scratch(receiver, config):
            return None
        if receiver == "self" and self._in_init(stmt):
            return None  # an object initializing its own fields
        shown = receiver or "<expr>"
        return self.diagnostic(
            module,
            stmt,
            f"write to {shown}.{attr.attr}: mutate cell state only via "
            "CellState.claim/release or transaction.commit",
        )

    def _field_aliases(
        self, scope: ast.AST, fields_guarded: set[str], config: LintConfig
    ) -> dict[str, str]:
        """Local names bound directly to a guarded master-state array,
        e.g. ``free = state.free_cpu`` (``.copy()`` breaks the alias)."""
        aliases: dict[str, str] = {}
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_alias = (
                isinstance(value, ast.Attribute)
                and value.attr in fields_guarded
                and (
                    dotted_name(value.value) is None
                    or not self._is_scratch(dotted_name(value.value), config)
                )
            )
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if is_alias:
                        aliases[target.id] = dotted_name(value) or value.attr
                    else:
                        aliases.pop(target.id, None)
        return aliases

    def _is_scratch(self, receiver: str, config: LintConfig) -> bool:
        lowered = receiver.lower()
        return any(token in lowered for token in config.snapshot_names)

    def _in_init(self, node: ast.AST) -> bool:
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, ast.FunctionDef) and current.name == "__init__":
                return True
            current = parent(current)
        return False


# ----------------------------------------------------------------------
# FLT001 — float equality on resource quantities
# ----------------------------------------------------------------------
class ResourceFloatEqualityRule(Rule):
    """Resource arithmetic is EPSILON-tolerant; exact == is a bug."""

    id = "FLT001"
    description = (
        "==/!= on resource floats (use the EPSILON tolerance from "
        "repro.core.cellstate instead)"
    )

    _RESOURCE_RE = re.compile(
        r"(?:^|_)(cpu|mem)s?(?:_|$)|utilization|capacity|headroom|dominant_share"
    )

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        for node in module.nodes:
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._exempt(left) or self._exempt(right):
                    continue
                resource = next(
                    (
                        name
                        for name in (self._resource_name(left), self._resource_name(right))
                        if name is not None
                    ),
                    None,
                )
                if resource is not None:
                    yield self.diagnostic(
                        module,
                        node,
                        f"exact float comparison on {resource!r}: compare "
                        "with the EPSILON tolerance (abs(a - b) <= EPSILON)",
                    )

    def _resource_name(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Call):
            expr = expr.func
        name: str | None = None
        if isinstance(expr, ast.Attribute):
            name = expr.attr
        elif isinstance(expr, ast.Name):
            name = expr.id
        if name is not None and self._RESOURCE_RE.search(name):
            return name
        return None

    def _exempt(self, expr: ast.expr) -> bool:
        """Comparisons against str/None/bool are identity-ish, not float."""
        return isinstance(expr, ast.Constant) and (
            expr.value is None or isinstance(expr.value, (str, bool))
        )


# ----------------------------------------------------------------------
# GEN001 — mutable default arguments
# ----------------------------------------------------------------------
class MutableDefaultRule(Rule):
    """Mutable defaults are shared across calls — classic aliasing bug."""

    id = "GEN001"
    description = "mutable default argument (shared across calls)"

    _CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        for node in module.nodes:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.diagnostic(
                        module,
                        default,
                        "mutable default argument: default to None and "
                        "create the container inside the function",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in self._CONSTRUCTORS
        return False


# ----------------------------------------------------------------------
# FIJ001 — nondeterministic fault-injection hooks
# ----------------------------------------------------------------------
class FaultInjectionSourceRule(Rule):
    """Fault schedules must replay: no wall clock, no self-seeded RNGs.

    Fault injectors (``repro.faults`` and the hifi failure injector) are
    only admissible in a determinism-gated simulator because every fault
    timeline is a pure function of the run's master seed: injectors
    *receive* an ``np.random.Generator`` forked from the run's
    :class:`~repro.sim.random.RandomStreams` and draw timings in
    simulated time. This rule flags the two ways that contract breaks
    inside the configured fault-injector paths:

    * constructing an entropy source locally — ``RandomStreams(...)``,
      ``np.random.default_rng(...)``/``RandomState``/bit generators, or
      any use of the stdlib ``random`` module — instead of accepting a
      forked stream from the caller;
    * reading the wall clock (``time.time``/``datetime.now`` family) to
      schedule or timestamp a fault, instead of ``Simulator.now``.

    DET001/DET002 police the same primitives repo-wide, but they honor
    broad allowlists; FIJ001 is deliberately unconditional inside fault
    injectors, where a nondeterministic hook silently invalidates every
    resilience result built on top of it.
    """

    id = "FIJ001"
    description = (
        "fault-injection hook built on the wall clock or a non-forked "
        "RNG (chaos schedules must replay from named streams)"
    )

    #: numpy.random members that create or reseed entropy sources.
    _ENTROPY_FNS = frozenset(
        {
            "default_rng",
            "seed",
            "RandomState",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )
    _TIME_FNS = WallClockRule._TIME_FNS
    _DATETIME_FNS = WallClockRule._DATETIME_FNS

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not match_path(module.path, module.config.fault_injector_paths):
            return
        time_aliases = module.aliases_of("time")
        datetime_aliases = module.aliases_of("datetime")
        random_aliases = module.aliases_of("random")
        numpy_aliases = module.aliases_of("numpy")
        datetime_classes: set[str] = set()
        for node in module.nodes:
            if isinstance(node, ast.ImportFrom) and node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        datetime_classes.add(alias.asname or alias.name)
        for node in module.nodes:
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "RandomStreams":
                    yield self.diagnostic(
                        module,
                        node,
                        "fault injector constructs its own RandomStreams: "
                        "accept a stream forked from the run's master "
                        "streams (streams.fork/stream) instead",
                    )
                    continue
                if isinstance(func, ast.Attribute) and func.attr == "RandomStreams":
                    yield self.diagnostic(
                        module,
                        node,
                        "fault injector constructs its own RandomStreams: "
                        "accept a stream forked from the run's master "
                        "streams (streams.fork/stream) instead",
                    )
                    continue
            if not isinstance(node, ast.Attribute):
                continue
            dotted = dotted_name(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            head = parts[0]
            if head in numpy_aliases and len(parts) >= 3 and parts[1] == "random":
                if parts[2] in self._ENTROPY_FNS:
                    yield self.diagnostic(
                        module,
                        node,
                        f"fault injector seeds its own RNG via {dotted}: "
                        "draw from the np.random.Generator handed in by "
                        "the chaos engine instead",
                    )
            elif head in random_aliases and len(parts) == 2:
                yield self.diagnostic(
                    module,
                    node,
                    f"fault injector uses the stdlib random module "
                    f"({dotted}): draw from the forked "
                    "np.random.Generator instead",
                )
            elif head in time_aliases and len(parts) == 2 and parts[1] in self._TIME_FNS:
                yield self.diagnostic(
                    module,
                    node,
                    f"fault injector reads the wall clock ({dotted}): "
                    "schedule faults in simulated time (Simulator.now)",
                )
            elif node.attr in self._DATETIME_FNS:
                base = parts[:-1]
                if base and (
                    (
                        base[0] in datetime_aliases
                        and base[1:] in (["datetime"], ["date"])
                    )
                    or (len(base) == 1 and base[0] in datetime_classes)
                ):
                    yield self.diagnostic(
                        module,
                        node,
                        f"fault injector reads the wall clock ({dotted}): "
                        "schedule faults in simulated time (Simulator.now)",
                    )


# ----------------------------------------------------------------------
# RBS001 — swallowed exceptions in recovery-critical paths
# ----------------------------------------------------------------------
class RecoveryExceptionSwallowRule(Rule):
    """Recovery-critical code must not swallow broad exceptions.

    The crash-safety layer (:mod:`repro.recovery`) only delivers its
    guarantees if failures *surface*: a worker that catches
    ``Exception`` and returns a default row corrupts the result table
    the checkpoint was supposed to protect; an artifact writer that
    swallows an ``OSError`` mid-``fsync`` reports durability it does
    not have. Inside the configured recovery paths this rule flags any
    bare ``except:`` or ``except Exception/BaseException`` handler
    whose body does not re-raise.

    Deliberate boundaries (e.g. a worker trampoline that ships the
    exception over a pipe for the parent to re-raise) suppress the rule
    inline with a stated reason::

        except Exception as exc:  # omega-lint: disable=RBS001 -- shipped over the pipe and re-raised by the parent
    """

    id = "RBS001"
    description = (
        "bare/broad except without re-raise in a recovery-critical path "
        "(swallowed failures defeat crash-safety)"
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        if not match_path(module.path, module.config.recovery_paths):
            return
        for node in module.nodes:
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._broad_name(node.type)
            if caught is None:
                continue
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue
            yield self.diagnostic(
                module,
                node,
                f"{caught} swallowed in a recovery-critical path: re-raise, "
                "narrow the except, or suppress inline with a reason",
            )

    def _broad_name(self, expr: ast.expr | None) -> str | None:
        """The flaggable handler description, or None if it is narrow."""
        if expr is None:
            return "bare except:"
        names: list[ast.expr] = (
            list(expr.elts) if isinstance(expr, ast.Tuple) else [expr]
        )
        for name in names:
            if isinstance(name, ast.Attribute):
                ident = name.attr
            elif isinstance(name, ast.Name):
                ident = name.id
            else:
                continue
            if ident in self._BROAD:
                return f"except {ident}"
        return None


#: Every shipped rule, in catalogue order.
ALL_RULES: tuple[Rule, ...] = (
    RawRandomRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    CellStateWriteRule(),
    ResourceFloatEqualityRule(),
    MutableDefaultRule(),
    FaultInjectionSourceRule(),
    RecoveryExceptionSwallowRule(),
)

RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}
