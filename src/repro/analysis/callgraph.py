"""Project-wide symbol table and call graph for omega-lint.

The per-file rules (DET001, TXN001, ...) see one module at a time, so a
one-line wrapper in another module defeats them: a helper that returns
``random.Random()`` looks clean from the caller's side and the helper's
module may not be a decision path. The interprocedural rules in
:mod:`repro.analysis.taint` need to know *who calls whom* across the
whole tree — this module builds that view.

Construction is purely syntactic (stdlib ``ast``, no imports executed)
and reuses the :class:`~repro.analysis.rules.ModuleContext` node cache
built by the engine, so each file is parsed and walked exactly once for
the whole lint run. Resolution is deliberately conservative:

* module-level functions and class methods become graph nodes
  (``pkg.mod.func`` / ``pkg.mod.Class.method``); nested ``def``s are
  attributed to their enclosing function;
* calls resolve through local ``def``s, ``import``/``from`` aliases
  (matched by dotted-module *suffix*, so ``src/``-rooted and
  test-fixture trees both resolve), ``self.method()`` with
  project-visible single-inheritance bases, and ``Class()`` →
  ``Class.__init__``;
* anything else (callables in variables, ``obj.method()`` on values of
  unknown type) stays unresolved — recorded, but never propagated
  through. Unresolved calls can only cause missed findings, never
  false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterator, Sequence

from repro.analysis.rules import ModuleContext, dotted_name


def module_name(path: str) -> str:
    """Dotted module name derived from a file path.

    ``src/repro/core/scheduler.py`` -> ``src.repro.core.scheduler``;
    package ``__init__.py`` files name the package itself. Leading
    directories stay in the name — imports are resolved by dotted
    suffix, so the absolute prefix is harmless.
    """
    parts = list(PurePosixPath(path).with_suffix("").parts)
    parts = [part for part in parts if part not in ("/", ".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part.replace(".", "_") for part in parts)


@dataclass(frozen=True)
class FunctionInfo:
    """One graph node: a module-level function or a class method."""

    qualname: str
    name: str
    path: str
    line: int
    class_name: str | None
    node: ast.AST = field(repr=False, compare=False)

    @property
    def display(self) -> str:
        """Short human name for chain messages."""
        if self.class_name is not None:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    caller: str
    #: qualname of the resolved callee, or None if unresolved.
    callee: str | None
    #: the call expression as written (best effort), for debugging.
    text: str
    line: int
    col: int


@dataclass
class _ClassRecord:
    qualname: str
    methods: dict[str, str]  # method name -> function qualname
    bases: tuple[str, ...]  # base-class names as written


@dataclass
class _ModuleRecord:
    name: str
    context: ModuleContext
    functions: dict[str, str] = field(default_factory=dict)  # local name -> qualname
    classes: dict[str, _ClassRecord] = field(default_factory=dict)
    #: local alias -> ("module", dotted) or ("symbol", dotted_module, symbol)
    imports: dict[str, tuple[str, str] | tuple[str, str, str]] = field(
        default_factory=dict
    )


class CallGraph:
    """Symbol table + resolved call edges over a set of modules."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.calls_from: dict[str, list[CallSite]] = {}
        self.calls_to: dict[str, list[CallSite]] = {}
        self.modules: dict[str, _ModuleRecord] = {}

    def callees(self, qualname: str) -> list[CallSite]:
        return self.calls_from.get(qualname, [])

    def callers(self, qualname: str) -> list[CallSite]:
        return self.calls_to.get(qualname, [])

    def edges(self) -> Iterator[tuple[str, str]]:
        """All resolved (caller, callee) pairs."""
        for caller, sites in sorted(self.calls_from.items()):
            for site in sites:
                if site.callee is not None:
                    yield caller, site.callee

    def _add_call(self, site: CallSite) -> None:
        self.calls_from.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self.calls_to.setdefault(site.callee, []).append(site)


def build_call_graph(modules: Sequence[ModuleContext]) -> CallGraph:
    """Build the project call graph from already-parsed modules."""
    graph = CallGraph()
    records = [_index_module(graph, context) for context in modules]
    for record in records:
        graph.modules[record.name] = record
    resolver = _Resolver(graph)
    for record in records:
        _collect_calls(graph, resolver, record)
    return graph


# ----------------------------------------------------------------------
# Pass 1 — symbol table
# ----------------------------------------------------------------------
def _index_module(graph: CallGraph, context: ModuleContext) -> _ModuleRecord:
    record = _ModuleRecord(name=module_name(context.path), context=context)
    for stmt in context.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{record.name}.{stmt.name}"
            record.functions[stmt.name] = qualname
            graph.functions[qualname] = FunctionInfo(
                qualname=qualname,
                name=stmt.name,
                path=context.path,
                line=stmt.lineno,
                class_name=None,
                node=stmt,
            )
        elif isinstance(stmt, ast.ClassDef):
            class_qual = f"{record.name}.{stmt.name}"
            methods: dict[str, str] = {}
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{class_qual}.{sub.name}"
                    methods[sub.name] = qualname
                    graph.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        name=sub.name,
                        path=context.path,
                        line=sub.lineno,
                        class_name=stmt.name,
                        node=sub,
                    )
            bases = tuple(
                name
                for name in (dotted_name(base) for base in stmt.bases)
                if name is not None
            )
            record.classes[stmt.name] = _ClassRecord(
                qualname=class_qual, methods=methods, bases=bases
            )
    for stmt in ast.walk(context.tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                record.imports[alias.asname or alias.name.split(".")[0]] = (
                    ("module", alias.name)
                    if alias.asname is not None or "." not in alias.name
                    else ("module", alias.name.split(".")[0])
                )
                if alias.asname is not None:
                    record.imports[alias.asname] = ("module", alias.name)
        elif isinstance(stmt, ast.ImportFrom) and stmt.module is not None:
            if stmt.level:  # relative import: resolve against this module
                package = record.name.rsplit(".", stmt.level)[0]
                target = f"{package}.{stmt.module}" if package else stmt.module
            else:
                target = stmt.module
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                record.imports[alias.asname or alias.name] = (
                    "symbol",
                    target,
                    alias.name,
                )
    return record


# ----------------------------------------------------------------------
# Pass 2 — call-site resolution
# ----------------------------------------------------------------------
class _Resolver:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._by_suffix: dict[str, str | None] = {}

    def resolve_module(self, dotted: str) -> _ModuleRecord | None:
        """Match an imported dotted module name against known modules,
        exactly or by dotted suffix (unique matches only)."""
        if dotted in self.graph.modules:
            return self.graph.modules[dotted]
        if dotted not in self._by_suffix:
            tail = "." + dotted
            hits = [name for name in self.graph.modules if name.endswith(tail)]
            self._by_suffix[dotted] = hits[0] if len(hits) == 1 else None
        hit = self._by_suffix[dotted]
        return self.graph.modules[hit] if hit is not None else None

    def resolve_symbol(
        self, record: _ModuleRecord, name: str
    ) -> str | _ClassRecord | _ModuleRecord | None:
        """What a bare name refers to in ``record``'s module scope:
        a function qualname, a class record, a module record, or None."""
        if name in record.functions:
            return record.functions[name]
        if name in record.classes:
            return record.classes[name]
        entry = record.imports.get(name)
        if entry is None:
            # `pkg.sub` where pkg/__init__ does not re-export sub.
            return self.resolve_module(f"{record.name}.{name}")
        if entry[0] == "module":
            return self.resolve_module(entry[1])
        _, target_module, symbol = entry  # type: ignore[misc]
        target = self.resolve_module(target_module)
        if target is None:
            # `from pkg import mod` where pkg.mod is itself a module.
            return self.resolve_module(f"{target_module}.{symbol}")
        if symbol in target.functions:
            return target.functions[symbol]
        if symbol in target.classes:
            return target.classes[symbol]
        sub = self.resolve_module(f"{target.name}.{symbol}")
        if sub is not None:
            return sub
        return None

    def resolve_method(
        self, record: _ModuleRecord, klass: _ClassRecord, method: str
    ) -> str | None:
        """Find ``method`` on ``klass`` or a project-visible base."""
        seen: set[str] = set()
        queue: list[tuple[_ModuleRecord, _ClassRecord]] = [(record, klass)]
        while queue:
            owner_record, owner = queue.pop(0)
            if owner.qualname in seen:
                continue
            seen.add(owner.qualname)
            if method in owner.methods:
                return owner.methods[method]
            for base in owner.bases:
                resolved = self.resolve_symbol(owner_record, base.split(".")[-1])
                if isinstance(resolved, _ClassRecord):
                    base_module = self._record_of_class(resolved)
                    if base_module is not None:
                        queue.append((base_module, resolved))
        return None

    def _record_of_class(self, klass: _ClassRecord) -> _ModuleRecord | None:
        module = klass.qualname.rsplit(".", 1)[0]
        return self.graph.modules.get(module)


def _collect_calls(
    graph: CallGraph, resolver: _Resolver, record: _ModuleRecord
) -> None:
    for qualname, info in list(graph.functions.items()):
        if info.path != record.context.path:
            continue
        klass = record.classes.get(info.class_name) if info.class_name else None
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _resolve_call(resolver, record, klass, node)
            graph._add_call(
                CallSite(
                    caller=qualname,
                    callee=callee,
                    text=dotted_name(node.func) or type(node.func).__name__,
                    line=node.lineno,
                    col=node.col_offset + 1,
                )
            )


def _to_function(
    resolver: _Resolver,
    resolved: str | _ClassRecord | _ModuleRecord | None,
) -> str | None:
    """Collapse a resolved symbol to a callable graph node, if any.
    Calling a class means running its ``__init__``."""
    if isinstance(resolved, str):
        return resolved
    if isinstance(resolved, _ClassRecord):
        owner = resolver._record_of_class(resolved)
        if owner is not None:
            return resolver.resolve_method(owner, resolved, "__init__")
    return None


def _resolve_call(
    resolver: _Resolver,
    record: _ModuleRecord,
    klass: _ClassRecord | None,
    call: ast.Call,
) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return _to_function(resolver, resolver.resolve_symbol(record, func.id))
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    receiver = func.value
    # self.method() / cls.method() — enclosing class, then bases.
    if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
        if klass is not None:
            return resolver.resolve_method(record, klass, method)
        return None
    # mod.func() / Class.method() / pkg.mod.func() through aliases.
    dotted = dotted_name(receiver)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved: str | _ClassRecord | _ModuleRecord | None
    resolved = resolver.resolve_symbol(record, head)
    for part in rest.split(".") if rest else []:
        if isinstance(resolved, _ModuleRecord):
            resolved = resolver.resolve_symbol(resolved, part)
        else:
            resolved = None
            break
    if isinstance(resolved, _ModuleRecord):
        target = resolver.resolve_symbol(resolved, method)
        return _to_function(resolver, target)
    if isinstance(resolved, _ClassRecord):
        owner = resolver._record_of_class(resolved)
        if owner is not None:
            return resolver.resolve_method(owner, resolved, method)
    return None
