"""The omega-lint engine: file walking, suppression handling, dispatch.

Suppressions are inline comments::

    value = a == b  # omega-lint: disable=FLT001 -- ids, not resources
    # omega-lint: disable-next-line=DET003 -- order folded by sum()
    total = sum(x for x in pool)

Multiple rules separate with commas (``disable=FLT001,GEN001``);
everything after ``--`` is a justification for human readers. A
suppression applies to findings anchored on its line (or the next line
for ``disable-next-line``). Unknown rule ids in suppressions are
findings themselves (rule ``LNT000``) so typos cannot silently turn a
check off.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.config import LintConfig, load_config
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import ALL_RULES, ModuleContext, Rule

_SUPPRESS_RE = re.compile(
    r"#\s*omega-lint:\s*(disable|disable-next-line)\s*=\s*"
    r"([A-Za-z0-9_,\s]+?)\s*(?:--.*)?$"
)


def _suppressions(source: str) -> tuple[dict[int, set[str]], list[Diagnostic]]:
    """Map line -> suppressed rule ids; plus diagnostics for bad ids."""
    known = {rule.id for rule in ALL_RULES}
    by_line: dict[int, set[str]] = {}
    problems: list[Diagnostic] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        target = lineno + 1 if match.group(1) == "disable-next-line" else lineno
        rules = {rule.strip() for rule in match.group(2).split(",") if rule.strip()}
        unknown = sorted(rules - known)
        if unknown:
            problems.append(
                Diagnostic(
                    path="",
                    line=lineno,
                    col=match.start() + 1,
                    rule="LNT000",
                    severity="error",
                    message=(
                        f"suppression names unknown rule(s) {', '.join(unknown)}"
                    ),
                )
            )
        by_line.setdefault(target, set()).update(rules & known)
    return by_line, problems


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
) -> list[Diagnostic]:
    """Lint one module's source text; returns sorted diagnostics."""
    config = config if config is not None else LintConfig()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule="LNT001",
                severity="error",
                message=f"syntax error: {exc.msg}",
            )
        ]
    module = ModuleContext(path=path, tree=tree, config=config)
    suppressed, problems = _suppressions(source)
    findings = [
        Diagnostic(
            path=path,
            line=problem.line,
            col=problem.col,
            rule=problem.rule,
            severity=problem.severity,
            message=problem.message,
        )
        for problem in problems
    ]
    for rule in rules:
        if not config.rule_enabled(rule.id):
            continue
        for diag in rule.check(module):
            if diag.rule in suppressed.get(diag.line, ()):
                continue
            findings.append(diag)
    return sorted(findings)


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    found: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found.update(path.rglob("*.py"))
        else:
            found.add(path)
    return sorted(found)


def lint_paths(
    paths: list[str | Path],
    config: LintConfig | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
) -> list[Diagnostic]:
    """Lint every ``*.py`` under ``paths``; returns sorted diagnostics.

    Raises ``FileNotFoundError`` for a path that does not exist — the
    CLI maps that to exit code 2 (user error, not a finding).
    """
    for entry in paths:
        if not Path(entry).exists():
            raise FileNotFoundError(f"no such path: {entry}")
    if config is None:
        config = load_config()
    findings: list[Diagnostic] = []
    for file in iter_python_files(paths):
        posix = file.as_posix()
        if config.excluded(posix):
            continue
        source = file.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=posix, config=config, rules=rules))
    return sorted(findings)
