"""The omega-lint engine: file walking, suppression handling, dispatch.

Suppressions are inline comments::

    value = a == b  # omega-lint: disable=FLT001 -- ids, not resources
    # omega-lint: disable-next-line=DET003 -- order folded by sum()
    total = sum(x for x in pool)

Multiple rules separate with commas (``disable=FLT001,GEN001``);
everything after ``--`` is a justification for human readers. A
suppression applies to findings anchored on its line (or the next line
for ``disable-next-line``). Unknown rule ids in suppressions are
findings themselves (rule ``LNT000``) so typos cannot silently turn a
check off.

Each file is parsed exactly once: the resulting
:class:`~repro.analysis.rules.ModuleContext` (which caches its node
walk) is shared by every per-file rule *and* the project-wide call
graph the interprocedural rules (DET101/DET102/TXN101) run on.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import LintConfig, load_config
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import ALL_RULES, ModuleContext, Rule
from repro.analysis.taint import ALL_PROJECT_RULES, ProjectRule, project_diagnostics

_SUPPRESS_RE = re.compile(
    r"#\s*omega-lint:\s*(disable|disable-next-line)\s*=\s*"
    r"([A-Za-z0-9_,\s]+?)\s*(?:--.*)?$"
)

#: Rule ids that may appear in suppression comments: every per-file
#: rule, every project rule, and the engine's own LNT findings.
KNOWN_RULE_IDS = frozenset(
    {rule.id for rule in ALL_RULES}
    | {rule.id for rule in ALL_PROJECT_RULES}
    | {"LNT000", "LNT001"}
)


@dataclass
class ParsedModule:
    """One file's parse result: the shared context (None on a syntax
    error), its suppression map, and any engine-level findings."""

    path: str
    context: ModuleContext | None
    suppressed: dict[int, set[str]] = field(default_factory=dict)
    problems: list[Diagnostic] = field(default_factory=list)


def _suppressions(
    source: str, path: str
) -> tuple[dict[int, set[str]], list[Diagnostic]]:
    """Map line -> suppressed rule ids; plus diagnostics for bad ids."""
    by_line: dict[int, set[str]] = {}
    problems: list[Diagnostic] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        target = lineno + 1 if match.group(1) == "disable-next-line" else lineno
        rules = {rule.strip() for rule in match.group(2).split(",") if rule.strip()}
        unknown = sorted(rules - KNOWN_RULE_IDS)
        if unknown:
            problems.append(
                Diagnostic(
                    path=path,
                    line=lineno,
                    col=match.start() + 1,
                    rule="LNT000",
                    severity="error",
                    message=(
                        f"suppression names unknown rule(s) {', '.join(unknown)}"
                    ),
                )
            )
        by_line.setdefault(target, set()).update(rules & KNOWN_RULE_IDS)
    return by_line, problems


def parse_module(source: str, path: str, config: LintConfig) -> ParsedModule:
    """Parse one module into the context shared by all passes."""
    suppressed, problems = _suppressions(source, path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        problems.append(
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) or 1,
                rule="LNT001",
                severity="error",
                message=f"syntax error: {exc.msg}",
            )
        )
        return ParsedModule(path=path, context=None, suppressed=suppressed,
                            problems=problems)
    context = ModuleContext(path=path, tree=tree, config=config)
    return ParsedModule(path=path, context=context, suppressed=suppressed,
                        problems=problems)


def _check_modules(
    parsed: list[ParsedModule],
    config: LintConfig,
    rules: tuple[Rule, ...],
    project_rules: tuple[ProjectRule, ...],
) -> list[Diagnostic]:
    """Run per-file rules and the project pass, apply suppressions."""
    raw: list[Diagnostic] = []
    for module in parsed:
        raw.extend(module.problems)
        if module.context is None:
            continue
        for rule in rules:
            if not config.rule_enabled(rule.id):
                continue
            raw.extend(rule.check(module.context))
    contexts = [module.context for module in parsed if module.context is not None]
    if project_rules:
        raw.extend(project_diagnostics(contexts, config, rules=project_rules))
    suppressed_by_path = {module.path: module.suppressed for module in parsed}
    findings = [
        diag
        for diag in raw
        if diag.rule not in suppressed_by_path.get(diag.path, {}).get(diag.line, ())
    ]
    return sorted(findings)


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
    project_rules: tuple[ProjectRule, ...] = ALL_PROJECT_RULES,
) -> list[Diagnostic]:
    """Lint one module's source text; returns sorted diagnostics.

    The interprocedural rules see only this module, so they report
    intra-module call chains; whole-tree chains need ``lint_paths``.
    """
    config = config if config is not None else LintConfig()
    parsed = parse_module(source, path, config)
    return _check_modules([parsed], config, rules, project_rules)


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    found: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found.update(path.rglob("*.py"))
        else:
            found.add(path)
    return sorted(found)


def lint_paths(
    paths: list[str | Path],
    config: LintConfig | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
    project_rules: tuple[ProjectRule, ...] = ALL_PROJECT_RULES,
) -> list[Diagnostic]:
    """Lint every ``*.py`` under ``paths``; returns sorted diagnostics.

    Raises ``FileNotFoundError`` for a path that does not exist — the
    CLI maps that to exit code 2 (user error, not a finding).
    """
    for entry in paths:
        if not Path(entry).exists():
            raise FileNotFoundError(f"no such path: {entry}")
    if config is None:
        config = load_config()
    parsed: list[ParsedModule] = []
    for file in iter_python_files(paths):
        posix = file.as_posix()
        if config.excluded(posix):
            continue
        source = file.read_text(encoding="utf-8")
        parsed.append(parse_module(source, posix, config))
    return _check_modules(parsed, config, rules, project_rules)
