"""SARIF 2.1.0 output for omega-lint.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests to annotate pull requests. The emitter maps each
:class:`~repro.analysis.diagnostics.Diagnostic` to one ``result`` with
a physical location; related locations (the DET101/DET102/TXN101 call
chains) become ``relatedLocations`` so the PR annotation shows the
whole path from decision site to entropy/state-write source.

Only the stable core of the schema is emitted — tool metadata with a
rule index, results with locations — which validates against the 2.1.0
schema and is all GitHub reads.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import RULES_BY_ID
from repro.analysis.taint import PROJECT_RULES_BY_ID

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Engine-level findings that have no Rule object behind them.
_ENGINE_RULES = {
    "LNT000": "suppression comment names an unknown rule id",
    "LNT001": "file does not parse",
}


def _rule_description(rule_id: str) -> str:
    rule = RULES_BY_ID.get(rule_id) or PROJECT_RULES_BY_ID.get(rule_id)
    if rule is not None:
        return rule.description
    return _ENGINE_RULES.get(rule_id, rule_id)


def _location(path: str, line: int, col: int | None = None) -> dict:
    region: dict = {"startLine": max(line, 1)}
    if col is not None:
        region["startColumn"] = max(col, 1)
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": region,
        }
    }


def render_sarif(diagnostics: list[Diagnostic]) -> str:
    """A complete single-run SARIF 2.1.0 log as a JSON string."""
    rule_ids = sorted({diag.rule for diag in diagnostics})
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": _rule_description(rule_id)},
        }
        for rule_id in rule_ids
    ]
    results = []
    for diag in diagnostics:
        result: dict = {
            "ruleId": diag.rule,
            "ruleIndex": rule_index[diag.rule],
            "level": diag.severity,
            "message": {"text": diag.message},
            "locations": [_location(diag.path, diag.line, diag.col)],
        }
        if diag.related:
            result["relatedLocations"] = [
                {
                    **_location(loc.path, loc.line),
                    "message": {"text": loc.message},
                }
                for loc in diag.related
            ]
        results.append(result)
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "omega-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
