"""``python -m repro.analysis`` — run omega-lint."""

import sys

from repro.analysis.cli import main

sys.exit(main())
