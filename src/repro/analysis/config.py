"""omega-lint configuration: defaults plus ``[tool.omega-lint]`` in pyproject.

Every allowlist is a list of path globs matched against the *posix*
form of the linted file's path. Patterns are anchored loosely: a
pattern matches the path itself or any suffix starting at a directory
boundary, so ``repro/obs/*`` matches both ``repro/obs/recorder.py``
and ``src/repro/obs/recorder.py`` regardless of where the linter was
invoked from.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from fnmatch import fnmatch
from pathlib import Path

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback
    tomllib = None


def match_path(path: str | Path, patterns: tuple[str, ...] | list[str]) -> bool:
    """Whether ``path`` matches any glob, loosely anchored (see module doc)."""
    posix = Path(path).as_posix()
    for pattern in patterns:
        if fnmatch(posix, pattern) or fnmatch(posix, "*/" + pattern):
            return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Rule-engine configuration (defaults reflect this repo's layout)."""

    #: Globs excluded from linting entirely.
    exclude: tuple[str, ...] = ()
    #: Rule ids disabled globally.
    disable: tuple[str, ...] = ()
    #: DET001: the only modules allowed to construct raw RNGs. Everything
    #: else must draw from a named repro.sim.random.RandomStreams stream.
    rng_allow: tuple[str, ...] = ("repro/sim/random.py",)
    #: DET002: modules allowed to read the wall clock (observability and
    #: the engine's stats()/profiler bookkeeping — never decision logic).
    clock_allow: tuple[str, ...] = (
        "repro/obs/*",
        "repro/sim/engine.py",
        "repro/recovery/*",
    )
    #: DET003: scheduler/placement decision paths where unordered
    #: set/dict iteration is flagged.
    decision_paths: tuple[str, ...] = (
        "repro/schedulers/*",
        "repro/core/*",
        "repro/hifi/*",
        "repro/mapreduce/*",
        "repro/faults/*",
    )
    #: FIJ001: fault-injection modules. Fault schedules must be driven
    #: by simulated time and RNG streams forked from the run's master
    #: RandomStreams — never the wall clock or a freshly-seeded RNG.
    fault_injector_paths: tuple[str, ...] = (
        "repro/faults/*",
        "repro/hifi/failures.py",
    )
    #: RBS001: recovery-critical paths (parallel workers, checkpoint
    #: and artifact writers) where broad exception handlers without a
    #: re-raise are flagged — swallowed failures there defeat the
    #: crash-safety guarantees of repro.recovery.
    recovery_paths: tuple[str, ...] = (
        "repro/recovery/*",
        "repro/perf/parallel.py",
        "repro/experiments/io.py",
        "repro/obs/export.py",
    )
    #: TXN001: the only modules allowed to mutate master cell-state
    #: resource fields (the section 3.4 optimistic-commit path).
    txn_allow: tuple[str, ...] = (
        "repro/core/cellstate.py",
        "repro/core/transaction.py",
    )
    #: TXN001: receivers whose name contains one of these tokens are
    #: private scratch copies (CellSnapshot, Mesos offers, plan views),
    #: which schedulers may freely mutate.
    snapshot_names: tuple[str, ...] = ("snapshot", "snap", "offer", "plan")
    #: TXN001: the guarded CellState resource fields.
    resource_fields: tuple[str, ...] = ("free_cpu", "free_mem", "seq")

    def rule_enabled(self, rule_id: str) -> bool:
        return rule_id not in self.disable

    def excluded(self, path: str | Path) -> bool:
        return match_path(path, self.exclude)


_KEY_ALIASES = {f.name.replace("_", "-"): f.name for f in fields(LintConfig)}


def _parse_toml_fallback(text: str) -> dict:
    """Tiny parser for the ``[tool.omega-lint]`` section (3.10, no tomllib).

    Handles only the subset this config uses: ``key = "str"`` and
    ``key = ["a", "b"]`` (single line) under the section header.
    """
    import re

    section: dict[str, object] = {}
    in_section = False
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("["):
            in_section = line == "[tool.omega-lint]"
            continue
        if not in_section or "=" not in line:
            continue
        key, _, value = (part.strip() for part in line.partition("="))
        if value.startswith("["):
            section[key] = re.findall(r'"([^"]*)"', value)
        elif value.startswith('"'):
            section[key] = value.strip('"')
    return section


def load_config(pyproject: str | Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.omega-lint]``.

    ``pyproject`` may be a path to a pyproject.toml or a directory to
    search upward from (defaults to the current directory). A missing
    file or section yields the defaults; unknown keys raise ``ValueError``
    so typos in config do not silently disable enforcement.
    """
    path = _find_pyproject(pyproject)
    if path is None:
        return LintConfig()
    text = path.read_text(encoding="utf-8")
    if tomllib is not None:
        data = tomllib.loads(text).get("tool", {}).get("omega-lint", {})
    else:  # pragma: no cover - 3.10 fallback
        data = _parse_toml_fallback(text)
    overrides = {}
    for key, value in data.items():
        name = _KEY_ALIASES.get(key)
        if name is None:
            raise ValueError(f"unknown [tool.omega-lint] key: {key!r}")
        overrides[name] = tuple(value) if isinstance(value, list) else (value,)
    return replace(LintConfig(), **overrides)


def _find_pyproject(start: str | Path | None) -> Path | None:
    if start is not None:
        path = Path(start)
        if path.is_file():
            return path
    else:
        path = Path.cwd()
    for candidate in [path, *path.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None
