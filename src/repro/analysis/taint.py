"""Interprocedural determinism/transaction taint analysis.

The per-file rules catch a decision-path module that *itself* constructs
``random.Random()``, reads the wall clock, or writes master cell-state
fields. A one-line helper defeats all of them: the helper lives in a
module the rule ignores, and the caller only sees an innocent function
call. These rules close that hole by propagating taint over the
project call graph (:mod:`repro.analysis.callgraph`):

======  ===============================================================
DET101  a decision-path function reaches raw RNG construction through
        one or more calls (chain printed in the diagnostic).
DET102  a decision-path function reaches a wall-clock read through one
        or more calls.
TXN101  a decision-path function reaches a direct cell-state resource
        write through one or more calls, bypassing the commit path.
======  ===============================================================

Taint starts at the same syntactic sources the per-file rules flag and
flows from callee to caller. Functions *defined in* the corresponding
allowlist modules (``rng-allow`` for DET101, ``clock-allow`` for
DET102, ``txn-allow`` for TXN101) absorb taint: calling
``RandomStreams.fork`` or ``transaction.commit`` is the sanctioned API,
not a leak. A finding anchors on the call site inside the decision-path
function and carries the full chain down to the source as related
locations, so the diagnostic reads as a path, not a verdict.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.callgraph import CallGraph, FunctionInfo, build_call_graph
from repro.analysis.config import LintConfig, match_path
from repro.analysis.diagnostics import Diagnostic, RelatedLocation
from repro.analysis.rules import (
    ModuleContext,
    Rule,
    WallClockRule,
    dotted_name,
)

KIND_RNG = "rng"
KIND_CLOCK = "clock"
KIND_CELLWRITE = "cellwrite"


@dataclass(frozen=True)
class TaintSource:
    """The syntactic origin of a taint: what, where."""

    kind: str
    detail: str
    path: str
    line: int


@dataclass(frozen=True)
class Taint:
    """A function's taint for one kind: the source plus the chain of
    functions (tainted function first, source-containing function last)
    the taint flowed through."""

    source: TaintSource
    #: qualnames from this function down to the one holding the source.
    chain: tuple[str, ...]


class ProjectRule(Rule):
    """A rule that inspects the whole project, not one module.

    Subclasses bind a taint ``kind`` and the config allowlist that
    absorbs it. ``check`` (the per-module entry point) is intentionally
    empty — the engine calls :func:`project_diagnostics` with every
    parsed module instead.
    """

    kind: str = ""

    def check(self, module: ModuleContext) -> Iterator[Diagnostic]:
        return iter(())

    def allow(self, config: LintConfig) -> tuple[str, ...]:
        raise NotImplementedError


class InterproceduralRandomRule(ProjectRule):
    id = "DET101"
    kind = KIND_RNG
    description = (
        "decision-path function reaches raw RNG construction through "
        "calls (helper-wrapped entropy breaks named-stream reproducibility)"
    )

    def allow(self, config: LintConfig) -> tuple[str, ...]:
        return config.rng_allow


class InterproceduralClockRule(ProjectRule):
    id = "DET102"
    kind = KIND_CLOCK
    description = (
        "decision-path function reaches a wall-clock read through calls "
        "(real time leaks into simulated results via a helper)"
    )

    def allow(self, config: LintConfig) -> tuple[str, ...]:
        return config.clock_allow


class InterproceduralCellWriteRule(ProjectRule):
    id = "TXN101"
    kind = KIND_CELLWRITE
    description = (
        "decision-path function reaches a direct cell-state write "
        "through calls, bypassing the transaction commit path"
    )

    def allow(self, config: LintConfig) -> tuple[str, ...]:
        return config.txn_allow


#: Every shipped interprocedural rule, in catalogue order.
ALL_PROJECT_RULES: tuple[ProjectRule, ...] = (
    InterproceduralRandomRule(),
    InterproceduralClockRule(),
    InterproceduralCellWriteRule(),
)

PROJECT_RULES_BY_ID: dict[str, ProjectRule] = {
    rule.id: rule for rule in ALL_PROJECT_RULES
}


# ----------------------------------------------------------------------
# Direct (intraprocedural) taint sources
# ----------------------------------------------------------------------
_TIME_FNS = WallClockRule._TIME_FNS
_DATETIME_FNS = WallClockRule._DATETIME_FNS
_RNG_TYPE_NAMES = frozenset({"Generator", "BitGenerator", "SeedSequence"})


def _function_sources(
    context: ModuleContext, info: FunctionInfo, config: LintConfig
) -> Iterator[TaintSource]:
    """Syntactic taint sources inside one function body."""
    random_aliases = context.aliases_of("random")
    numpy_aliases = context.aliases_of("numpy")
    time_aliases = context.aliases_of("time")
    datetime_aliases = context.aliases_of("datetime")
    from_imports = _from_import_bindings(context)
    guarded = set(config.resource_fields)
    for node in ast.walk(info.node):
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            head = parts[0]
            if head in random_aliases and len(parts) == 2:
                yield TaintSource(
                    KIND_RNG, f"uses {dotted}", context.path, node.lineno
                )
            elif head in numpy_aliases and len(parts) >= 3 and parts[1] == "random":
                if parts[2] not in _RNG_TYPE_NAMES:
                    yield TaintSource(
                        KIND_RNG, f"uses {dotted}", context.path, node.lineno
                    )
            elif (
                head in time_aliases
                and len(parts) == 2
                and parts[1] in _TIME_FNS
            ):
                yield TaintSource(
                    KIND_CLOCK, f"reads {dotted}", context.path, node.lineno
                )
            elif node.attr in _DATETIME_FNS:
                base = parts[:-1]
                if base and (
                    (
                        base[0] in datetime_aliases
                        and base[1:] in (["datetime"], ["date"])
                    )
                    or (
                        len(base) == 1
                        and from_imports.get(base[0]) in ("datetime.datetime", "datetime.date")
                    )
                ):
                    yield TaintSource(
                        KIND_CLOCK, f"reads {dotted}", context.path, node.lineno
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            target = from_imports.get(node.func.id)
            if target is not None:
                if target.startswith("random.") or target.startswith("numpy.random."):
                    tail = target.split(".")[-1]
                    if tail not in _RNG_TYPE_NAMES:
                        yield TaintSource(
                            KIND_RNG,
                            f"constructs {target}",
                            context.path,
                            node.lineno,
                        )
                elif target.startswith("time.") and target.split(".")[-1] in _TIME_FNS:
                    yield TaintSource(
                        KIND_CLOCK, f"reads {target}", context.path, node.lineno
                    )
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target_node in targets:
                write = _guarded_write(target_node, guarded, config)
                if write is not None and not _self_in_init(info, write[0]):
                    yield TaintSource(
                        KIND_CELLWRITE,
                        f"writes {write[0]}.{write[1]}",
                        context.path,
                        node.lineno,
                    )


def _from_import_bindings(context: ModuleContext) -> dict[str, str]:
    """Names bound by ``from module import name`` for the modules the
    sources care about, as ``name -> module.name``."""
    bindings: dict[str, str] = {}
    for node in context.nodes:
        if not isinstance(node, ast.ImportFrom) or node.module is None:
            continue
        if node.module not in ("random", "time", "datetime") and not (
            node.module.startswith("numpy.random") or node.module == "numpy"
        ):
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            bindings[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return bindings


def _guarded_write(
    target: ast.expr, guarded: set[str], config: LintConfig
) -> tuple[str, str] | None:
    """(receiver, field) for a write to a guarded resource field on a
    non-scratch receiver, else None. Mirrors TXN001's heuristics."""
    attr = target
    if isinstance(attr, ast.Subscript):
        attr = attr.value
    if not (isinstance(attr, ast.Attribute) and attr.attr in guarded):
        return None
    receiver = dotted_name(attr.value)
    if receiver is None:
        return None
    lowered = receiver.lower()
    if any(token in lowered for token in config.snapshot_names):
        return None
    return receiver, attr.attr


def _self_in_init(info: FunctionInfo, receiver: str) -> bool:
    return receiver == "self" and info.name == "__init__"


# ----------------------------------------------------------------------
# Propagation
# ----------------------------------------------------------------------
def propagate(
    graph: CallGraph,
    contexts: Sequence[ModuleContext],
    config: LintConfig,
    rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
) -> dict[str, dict[str, Taint]]:
    """Taint per function qualname, per kind, with shortest chains.

    BFS from the source-containing functions over reverse call edges;
    functions defined in a kind's allowlist modules absorb that kind.
    """
    allow_by_kind = {rule.kind: rule.allow(config) for rule in rules}
    context_by_path = {context.path: context for context in contexts}
    taints: dict[str, dict[str, Taint]] = {}
    queue: list[str] = []
    for qualname, info in graph.functions.items():
        context = context_by_path.get(info.path)
        if context is None:
            continue
        for source in _function_sources(context, info, config):
            if source.kind not in allow_by_kind:
                continue
            if match_path(info.path, allow_by_kind[source.kind]):
                continue
            per_fn = taints.setdefault(qualname, {})
            if source.kind not in per_fn:
                per_fn[source.kind] = Taint(source=source, chain=(qualname,))
                queue.append(qualname)
    # Breadth-first over reverse edges: shortest chains win.
    head = 0
    while head < len(queue):
        callee = queue[head]
        head += 1
        for kind, taint in list(taints.get(callee, {}).items()):
            for site in graph.callers(callee):
                caller_info = graph.functions.get(site.caller)
                if caller_info is None:
                    continue
                if match_path(caller_info.path, allow_by_kind[kind]):
                    continue
                per_fn = taints.setdefault(site.caller, {})
                if kind in per_fn:
                    continue
                per_fn[kind] = Taint(
                    source=taint.source, chain=(site.caller,) + taint.chain
                )
                queue.append(site.caller)
    return taints


# ----------------------------------------------------------------------
# Findings
# ----------------------------------------------------------------------
def project_diagnostics(
    contexts: Sequence[ModuleContext],
    config: LintConfig,
    rules: Sequence[ProjectRule] = ALL_PROJECT_RULES,
    graph: CallGraph | None = None,
) -> list[Diagnostic]:
    """Run the interprocedural rules over already-parsed modules."""
    active = [rule for rule in rules if config.rule_enabled(rule.id)]
    if not active or not contexts:
        return []
    if graph is None:
        graph = build_call_graph(contexts)
    taints = propagate(graph, contexts, config, rules=active)
    findings: list[Diagnostic] = []
    for qualname, info in graph.functions.items():
        if not match_path(info.path, config.decision_paths):
            continue
        reported: set[tuple[int, str]] = set()
        for site in graph.callees(qualname):
            if site.callee is None:
                continue
            callee_taints = taints.get(site.callee)
            if not callee_taints:
                continue
            for rule in active:
                taint = callee_taints.get(rule.kind)
                if taint is None:
                    continue
                if match_path(info.path, rule.allow(config)):
                    continue
                key = (site.line, rule.id)
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    _chain_diagnostic(rule, graph, info, site.line, site.col, taint)
                )
    return findings


def _chain_diagnostic(
    rule: ProjectRule,
    graph: CallGraph,
    caller: FunctionInfo,
    line: int,
    col: int,
    taint: Taint,
) -> Diagnostic:
    names = [caller.display] + [
        graph.functions[qual].display
        for qual in taint.chain
        if qual in graph.functions
    ]
    chain_text = " -> ".join(names)
    verb = {
        KIND_RNG: "constructs a raw RNG",
        KIND_CLOCK: "reads the wall clock",
        KIND_CELLWRITE: "writes master cell state",
    }[rule.kind]
    related = [
        RelatedLocation(
            path=caller.path,
            line=line,
            message=f"call chain starts here in {caller.display}",
        )
    ]
    for qual in taint.chain:
        step = graph.functions.get(qual)
        if step is None:
            continue
        related.append(
            RelatedLocation(
                path=step.path,
                line=step.line,
                message=f"via {step.display}",
            )
        )
    related.append(
        RelatedLocation(
            path=taint.source.path,
            line=taint.source.line,
            message=f"source: {taint.source.detail}",
        )
    )
    return Diagnostic(
        path=caller.path,
        line=line,
        col=col,
        rule=rule.id,
        severity=rule.severity,
        message=(
            f"{caller.display} {verb} via the call chain "
            f"{chain_text} ({taint.source.detail} at "
            f"{taint.source.path}:{taint.source.line})"
        ),
        related=tuple(related),
    )
