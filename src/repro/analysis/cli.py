"""Command-line front end for omega-lint.

Used both as ``python -m repro.analysis`` and as the ``omega-sim lint``
subcommand. Exit codes follow the repo convention (see the ``trace``
subcommand): 0 clean, 1 findings, 2 user error (missing path, bad
flag) with a one-line message on stderr.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.diagnostics import render_json, render_text
from repro.analysis.engine import lint_paths
from repro.analysis.sarif import render_sarif


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint flags on ``parser`` (shared with omega-sim)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; sarif is SARIF 2.1.0 "
        "for GitHub code-scanning annotations)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml to read [tool.omega-lint] from "
        "(default: search upward from the current directory)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs --base (git diff --name-only); "
        "falls back to the full tree outside a git checkout",
    )
    parser.add_argument(
        "--base",
        metavar="REF",
        default="HEAD",
        help="base ref for --changed (default: HEAD)",
    )


class _GitUnavailable(Exception):
    """Not inside a git checkout (or no git binary) — fall back."""


def _git_lines(args: list[str]) -> list[str]:
    try:
        proc = subprocess.run(
            ["git", *args], capture_output=True, text=True, check=False
        )
    except OSError as exc:
        raise _GitUnavailable(str(exc)) from exc
    if proc.returncode != 0:
        stderr = proc.stderr.strip()
        if "not a git repository" in stderr.lower():
            raise _GitUnavailable(stderr)
        raise ValueError(stderr or f"git {' '.join(args)} failed")
    return [line.strip() for line in proc.stdout.splitlines() if line.strip()]


def changed_paths(paths: list[str], base: str) -> list[str]:
    """The subset of changed ``*.py`` files (vs ``base``) under ``paths``.

    Raises :class:`_GitUnavailable` outside a git checkout (caller
    falls back to the full tree) and ``ValueError`` for a bad ref
    (user error, exit 2).
    """
    toplevel = Path(_git_lines(["rev-parse", "--show-toplevel"])[0])
    changed = _git_lines(["diff", "--name-only", base, "--"])
    roots = [Path(path).resolve() for path in paths]
    selected: list[str] = []
    for name in changed:
        if not name.endswith(".py"):
            continue
        candidate = (toplevel / name).resolve()
        if not candidate.is_file():
            continue  # deleted in the working tree
        if any(
            candidate == root or root in candidate.parents for root in roots
        ):
            selected.append(candidate.as_posix())
    return sorted(selected)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    try:
        config = load_config(args.config)
    except (OSError, ValueError) as exc:
        print(f"omega-lint: bad config: {exc}", file=sys.stderr)
        return 2
    paths = list(args.paths)
    if getattr(args, "changed", False):
        try:
            paths = changed_paths(paths, args.base)
        except _GitUnavailable:
            print(
                "omega-lint: warning: not a git checkout, "
                "--changed falls back to the full tree",
                file=sys.stderr,
            )
        except ValueError as exc:
            print(f"omega-lint: bad --base ref: {exc}", file=sys.stderr)
            return 2
    try:
        findings = lint_paths(paths, config=config)
    except FileNotFoundError as exc:
        print(f"omega-lint: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"omega-lint: cannot read input: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings))
    return 1 if any(diag.severity == "error" for diag in findings) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="omega-lint",
        description="Static analysis for the Omega reproduction: "
        "determinism, transaction-safety, and resource-arithmetic "
        "invariants (see docs/STATIC_ANALYSIS.md).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
