"""Command-line front end for omega-lint.

Used both as ``python -m repro.analysis`` and as the ``omega-sim lint``
subcommand. Exit codes follow the repo convention (see the ``trace``
subcommand): 0 clean, 1 findings, 2 user error (missing path, bad
flag) with a one-line message on stderr.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.config import load_config
from repro.analysis.diagnostics import render_json, render_text
from repro.analysis.engine import lint_paths


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the lint flags on ``parser`` (shared with omega-sim)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml to read [tool.omega-lint] from "
        "(default: search upward from the current directory)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    try:
        config = load_config(args.config)
    except (OSError, ValueError) as exc:
        print(f"omega-lint: bad config: {exc}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(args.paths, config=config)
    except FileNotFoundError as exc:
        print(f"omega-lint: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"omega-lint: cannot read input: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if any(diag.severity == "error" for diag in findings) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="omega-lint",
        description="Static analysis for the Omega reproduction: "
        "determinism, transaction-safety, and resource-arithmetic "
        "invariants (see docs/STATIC_ANALYSIS.md).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
