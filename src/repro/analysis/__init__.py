"""repro.analysis — omega-lint static analysis plus the runtime
determinism gate.

The simulator's conclusions rest on invariants ordinary linters cannot
see: all randomness flows through named seeded streams, all shared
cell-state mutation flows through the section 3.4 optimistic-commit
path, and resource comparisons tolerate EPSILON float dust. This
package enforces them two ways:

* **statically** — an AST rule engine (``python -m repro.analysis`` or
  ``omega-sim lint``) with per-rule diagnostics, inline
  ``# omega-lint: disable=RULE`` suppressions, and ``[tool.omega-lint]``
  configuration in pyproject.toml;
* **at runtime** — :mod:`repro.analysis.determinism` runs an experiment
  twice with one master seed and fails on any trace divergence, and
  :mod:`repro.analysis.sanitizer` ("omega-san") checks transaction
  isolation live when a run is started with ``--sanitize``.

The per-file rules are joined by interprocedural ones
(DET101/DET102/TXN101 in :mod:`repro.analysis.taint`) that propagate
taint over the project call graph (:mod:`repro.analysis.callgraph`).

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue.
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.diagnostics import Diagnostic, render_json, render_text
from repro.analysis.engine import lint_paths, lint_source
from repro.analysis.rules import ALL_RULES, RULES_BY_ID, Rule
from repro.analysis.taint import ALL_PROJECT_RULES, PROJECT_RULES_BY_ID

# The determinism gate lives in repro.analysis.determinism and is not
# re-exported here: importing it eagerly would shadow
# ``python -m repro.analysis.determinism`` (runpy double-import).
# repro.analysis.sanitizer is likewise imported lazily by its users:
# the core hot paths guard every hook behind `sanitizer.ACTIVE is None`.

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "PROJECT_RULES_BY_ID",
    "RULES_BY_ID",
    "Diagnostic",
    "LintConfig",
    "Rule",
    "lint_paths",
    "lint_source",
    "load_config",
    "render_json",
    "render_text",
]
