"""omega-san: a runtime transaction-isolation sanitizer.

The static rules prove what the *source* can reach; this module checks
what a *run* actually does. When active (``--sanitize`` on simulation
commands, ``OMEGA_SAN=1`` in the environment), the cell-state hot paths
call into the module-global :data:`ACTIVE` sanitizer, which tracks
ownership and epochs of every :class:`~repro.core.cellstate.CellState`
and :class:`~repro.core.cellstate.CellSnapshot` and raises
:class:`IsolationViolation` the moment one of the section 3.4
isolation guarantees is broken:

``write-outside-commit``
    master state mutated (``claim``/``release``) outside a sanctioned
    commit scope — the paper's "cell state is only changed by the
    atomic commit".
``stale-snapshot-read``
    a scheduler plans against (or commits from) a snapshot whose source
    state advanced more than ``staleness_bound`` versions since the
    last ``resync``.
``foreign-snapshot-write``
    a scheduler mutates another scheduler's private snapshot (aliasing
    across the "private, local copy" boundary).
``non-serializable-commit``
    the master's resource arrays diverge from the replayed history of
    accepted claims — some write bypassed ``claim``/``release``
    arithmetic, so the commit log is no longer conflict-serializable.

Every hook is guarded at the call site by ``ACTIVE is None``, so the
off mode costs one module-attribute load and an identity test per hook
(proven ≥ 0.9x plain throughput by the ``sanitizer_overhead`` bench).
Violations raise with simulated-time context and a captured stack, and
emit ``san.*`` trace events when tracing is on.

This module deliberately imports nothing from ``repro.core`` —
``repro.core.cellstate`` imports *it*, and the cycle must stay one-way.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterable

import numpy as np

from repro.obs import recorder as _obs

#: Mirrors repro.core.cellstate.EPSILON (not imported: see module doc).
_EPSILON = 1e-9
#: Absolute tolerance when comparing the shadow replay against the
#: master arrays. The shadow applies bit-identical float arithmetic, so
#: any real divergence is far larger than this.
_DIVERGENCE_TOL = 1e-6


class IsolationViolation(RuntimeError):
    """An isolation guarantee was broken at runtime.

    Carries the violation ``kind``, the acting scheduler (if known),
    the simulated time, and the captured Python stack of the violating
    call. Constructed with the message as the sole positional argument
    so it survives pickling across worker processes.
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "",
        actor: str | None = None,
        sim_time: float | None = None,
        stack: str | None = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.actor = actor
        self.sim_time = sim_time
        self.stack = stack


@dataclass(frozen=True)
class SanitizerConfig:
    """Tunables for :class:`Sanitizer`.

    ``staleness_bound`` is in master *versions* (one version = one
    claim/release). Omega snapshots are legitimately stale by design —
    think time elapses between sync and commit and conflicts are the
    paper's answer — so the default only catches a snapshot that was
    never resynced while the world moved on wholesale.
    """

    staleness_bound: int | None = 10_000
    #: How many commit-log entries to keep for diagnostics.
    commit_log_capacity: int = 1024


@dataclass
class _CommitRecord:
    """One committed transaction, for the bounded commit log."""

    index: int
    actor: str | None
    snapshot_version: int
    state_version: int
    machines: tuple[int, ...]
    tasks: int


class _Scope:
    """Re-entrant sanctioned-write scope (``with san.scope(...)``)."""

    __slots__ = ("_san", "reason")

    def __init__(self, san: "Sanitizer", reason: str) -> None:
        self._san = san
        self.reason = reason

    def __enter__(self) -> "_Scope":
        self._san._scope_depth += 1
        self._san._scope_reasons.append(self.reason)
        return self

    def __exit__(self, *exc: object) -> None:
        self._san._scope_depth -= 1
        self._san._scope_reasons.pop()


class _Acting:
    """Tracks which scheduler is currently running (``with san.acting``)."""

    __slots__ = ("_san", "_name", "_prev")

    def __init__(self, san: "Sanitizer", name: str) -> None:
        self._san = san
        self._name = name
        self._prev: str | None = None

    def __enter__(self) -> "_Acting":
        self._prev = self._san._actor
        self._san._actor = self._name
        return self

    def __exit__(self, *exc: object) -> None:
        self._san._actor = self._prev


class _NullScope:
    """No-op context manager for the inactive fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


NULL_SCOPE = _NullScope()


class Sanitizer:
    """Ownership + epoch tracker for cell state and snapshots."""

    def __init__(self, config: SanitizerConfig | None = None) -> None:
        self.config = config if config is not None else SanitizerConfig()
        self._scope_depth = 0
        self._scope_reasons: list[str] = []
        self._actor: str | None = None
        self._now: Callable[[], float] | None = None
        #: id(snapshot) -> owning scheduler name.
        self._owners: dict[int, str] = {}
        #: id(state) -> (state, shadow_free_cpu, shadow_free_mem).
        self._shadows: dict[int, tuple[Any, np.ndarray, np.ndarray]] = {}
        self.commit_log: list[_CommitRecord] = []
        self._commit_index = 0
        # Counters (also reported by the ``san.final`` trace event).
        self.violations = 0
        self.writes_checked = 0
        self.reads_checked = 0
        self.commits_checked = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin_run(self, now: Callable[[], float] | None = None) -> None:
        """Reset per-run registries and bind the simulated clock.

        Must be called when a new simulation starts: registries are
        keyed by ``id()`` (CellSnapshot has no ``__weakref__`` slot),
        so stale entries from a previous run's recycled objects must
        not leak into the next one.
        """
        self._owners.clear()
        self._shadows.clear()
        self.commit_log.clear()
        self._commit_index = 0
        self._scope_depth = 0
        self._scope_reasons.clear()
        self._actor = None
        self._now = now
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "san.run",
                staleness_bound=self.config.staleness_bound,
            )

    def scope(self, reason: str) -> _Scope:
        """Sanctioned master-write scope (commit apply, task end, ...)."""
        return _Scope(self, reason)

    def acting(self, name: str) -> _Acting:
        """Mark ``name`` as the scheduler driving the enclosed calls."""
        return _Acting(self, name)

    def scoped(self, fn: Callable[..., Any], reason: str) -> Callable[..., Any]:
        """Wrap a callback so it runs inside a sanctioned scope —
        used for simulator-scheduled task-end releases."""

        def run(*args: Any, **kwargs: Any) -> Any:
            with _Scope(self, reason):
                return fn(*args, **kwargs)

        return run

    # ------------------------------------------------------------------
    # Hooks (call sites guard with ``ACTIVE is not None``)
    # ------------------------------------------------------------------
    def on_sync(self, actor: str, snapshot: Any, state: Any) -> None:
        """A scheduler took or resynced its private snapshot."""
        self._owners[id(snapshot)] = actor
        self._track(state)

    def on_snapshot_use(self, actor: str, snapshot: Any, state: Any) -> None:
        """A scheduler is about to plan placements on ``snapshot``."""
        self.reads_checked += 1
        bound = self.config.staleness_bound
        if bound is None:
            return
        lag = state.version - snapshot.version
        if lag > bound:
            self._violation(
                "stale-snapshot-read",
                f"{actor} reads a snapshot {lag} versions behind master "
                f"(bound {bound}) without resync; decisions would be "
                "made against a world that no longer exists",
                actor=actor,
            )

    def on_snapshot_mutation(self, snapshot: Any) -> None:
        """Someone mutated a snapshot (``note_local_write``/``resync``)."""
        owner = self._owners.get(id(snapshot))
        actor = self._actor
        if owner is not None and actor is not None and actor != owner:
            self._violation(
                "foreign-snapshot-write",
                f"{actor} mutates the private snapshot owned by {owner}; "
                "snapshots are per-scheduler scratch space (§3.4), "
                "aliasing one across schedulers corrupts its owner's "
                "planning",
                actor=actor,
            )

    def on_master_write(
        self, state: Any, op: str, machine: int, cpu: float, mem: float, count: int
    ) -> None:
        """``CellState.claim``/``release`` is about to mutate master
        state. Called *before* the mutation applies."""
        self.writes_checked += 1
        if self._scope_depth == 0:
            self._violation(
                "write-outside-commit",
                f"master cell state {op} of {count} x ({cpu} cpu, {mem} "
                f"mem) on machine {machine} outside the commit path; "
                "only transaction.commit and sanctioned lifecycle scopes "
                "may mutate the master copy (§3.4)",
            )
        entry = self._track(state)
        _, shadow_cpu, shadow_mem = entry
        # The shadow replays the accepted history with the same
        # arithmetic as CellState; if master moved without us, a write
        # bypassed claim/release and the commit log stopped being
        # serializable.
        if (
            abs(float(shadow_cpu[machine]) - float(state.free_cpu[machine]))
            > _DIVERGENCE_TOL
            or abs(float(shadow_mem[machine]) - float(state.free_mem[machine]))
            > _DIVERGENCE_TOL
        ):
            self._violation(
                "non-serializable-commit",
                f"machine {machine} free resources "
                f"({float(state.free_cpu[machine])} cpu, "
                f"{float(state.free_mem[machine])} mem) diverged from the "
                f"committed-claim history "
                f"({float(shadow_cpu[machine])} cpu, "
                f"{float(shadow_mem[machine])} mem): a write bypassed "
                "claim/release, so the commit log no longer "
                "serializes to the master state",
            )
        total_cpu = cpu * count
        total_mem = mem * count
        if op == "claim":
            shadow_cpu[machine] -= total_cpu
            if shadow_cpu[machine] < 0.0:
                shadow_cpu[machine] = 0.0
            shadow_mem[machine] -= total_mem
            if shadow_mem[machine] < 0.0:
                shadow_mem[machine] = 0.0
        else:
            cell = state.cell
            shadow_cpu[machine] = min(
                shadow_cpu[machine] + total_cpu, cell.cpu_capacity[machine]
            )
            shadow_mem[machine] = min(
                shadow_mem[machine] + total_mem, cell.mem_capacity[machine]
            )

    def begin_commit(self, state: Any, snapshot: Any, claims: Iterable[Any]) -> None:
        """A transaction is about to validate+apply against ``state``."""
        self.commits_checked += 1
        bound = self.config.staleness_bound
        if bound is not None:
            lag = state.version - snapshot.version
            if lag > bound:
                owner = self._owners.get(id(snapshot))
                self._violation(
                    "stale-snapshot-read",
                    f"commit from a snapshot {lag} versions behind master "
                    f"(bound {bound}); the transaction's read set no "
                    "longer overlaps the state it validates against",
                    actor=owner or self._actor,
                )

    def end_commit(self, state: Any, snapshot: Any, accepted: Iterable[Any]) -> None:
        """Accepted claims were applied; verify and log the commit."""
        machines = tuple(sorted({claim.machine for claim in accepted}))
        tasks = sum(claim.count for claim in accepted)
        entry = self._shadows.get(id(state))
        if entry is not None:
            _, shadow_cpu, shadow_mem = entry
            for machine in machines:
                if (
                    abs(float(shadow_cpu[machine]) - float(state.free_cpu[machine]))
                    > _DIVERGENCE_TOL
                    or abs(float(shadow_mem[machine]) - float(state.free_mem[machine]))
                    > _DIVERGENCE_TOL
                ):
                    self._violation(
                        "non-serializable-commit",
                        f"after commit, machine {machine} master free "
                        "resources diverged from the committed-claim "
                        "history; the applied transaction is not "
                        "serializable against the commit log",
                    )
        record = _CommitRecord(
            index=self._commit_index,
            actor=self._actor,
            snapshot_version=snapshot.version,
            state_version=state.version,
            machines=machines,
            tasks=tasks,
        )
        self._commit_index += 1
        self.commit_log.append(record)
        if len(self.commit_log) > self.config.commit_log_capacity:
            del self.commit_log[0]

    def final_check(self, states: Iterable[Any]) -> None:
        """End of run: the whole master array must equal the replayed
        history of claims and releases, on every tracked state."""
        for state in states:
            entry = self._shadows.get(id(state))
            if entry is None:
                continue
            _, shadow_cpu, shadow_mem = entry
            bad_cpu = np.flatnonzero(
                np.abs(shadow_cpu - state.free_cpu) > _DIVERGENCE_TOL
            )
            bad_mem = np.flatnonzero(
                np.abs(shadow_mem - state.free_mem) > _DIVERGENCE_TOL
            )
            if bad_cpu.size or bad_mem.size:
                machine = int(bad_cpu[0] if bad_cpu.size else bad_mem[0])
                self._violation(
                    "non-serializable-commit",
                    f"end-of-run check: {bad_cpu.size + bad_mem.size} "
                    "machine entries diverged from the committed-claim "
                    f"history (first: machine {machine}, master "
                    f"{float(state.free_cpu[machine])} cpu vs history "
                    f"{float(shadow_cpu[machine])} cpu); some write "
                    "bypassed claim/release",
                )
        rec = _obs.RECORDER
        if rec.enabled:
            rec.event(
                "san.final",
                writes_checked=self.writes_checked,
                reads_checked=self.reads_checked,
                commits_checked=self.commits_checked,
                violations=self.violations,
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _track(self, state: Any) -> tuple[Any, np.ndarray, np.ndarray]:
        entry = self._shadows.get(id(state))
        if entry is None:
            entry = (
                state,
                np.array(state.free_cpu, dtype=float, copy=True),
                np.array(state.free_mem, dtype=float, copy=True),
            )
            self._shadows[id(state)] = entry
        return entry

    def _violation(
        self, kind: str, message: str, actor: str | None = None
    ) -> None:
        self.violations += 1
        actor = actor if actor is not None else self._actor
        sim_time = self._now() if self._now is not None else None
        stack = "".join(traceback.format_stack(limit=16))
        rec = _obs.RECORDER
        if rec.enabled:
            fields: dict[str, Any] = {"kind": kind}
            if actor is not None:
                fields["sched"] = actor
            if sim_time is not None:
                fields["t"] = sim_time
            rec.event("san.violation", **fields)
        context = []
        if actor is not None:
            context.append(f"actor={actor}")
        if sim_time is not None:
            context.append(f"sim_time={sim_time:.6f}")
        suffix = f" [{', '.join(context)}]" if context else ""
        raise IsolationViolation(
            f"omega-san: {kind}: {message}{suffix}",
            kind=kind,
            actor=actor,
            sim_time=sim_time,
            stack=stack,
        )


# ----------------------------------------------------------------------
# Module-global activation
# ----------------------------------------------------------------------
#: The active sanitizer, or None (the near-zero-cost default). Hook
#: sites read this exactly once per operation.
ACTIVE: Sanitizer | None = None


def install(config: SanitizerConfig | None = None) -> Sanitizer:
    """Activate omega-san process-wide; returns the sanitizer."""
    global ACTIVE
    ACTIVE = Sanitizer(config)
    return ACTIVE


def uninstall() -> None:
    """Deactivate omega-san (hooks return to the fast path)."""
    global ACTIVE
    ACTIVE = None


def env_enabled() -> bool:
    """Whether ``OMEGA_SAN`` requests sanitizing (for tests/workers)."""
    return os.environ.get("OMEGA_SAN", "") not in ("", "0")


def master_scope(reason: str) -> _Scope | _NullScope:
    """A sanctioned-write scope when active, a no-op otherwise.

    For lifecycle paths that mutate master state by design (initial
    fill, machine failure/repair, Mesos allocator accounting,
    preemption ledger, monolithic/partitioned commit).
    """
    san = ACTIVE
    return san.scope(reason) if san is not None else NULL_SCOPE


def acting_scope(name: str) -> _Acting | _NullScope:
    """An actor-tracking scope when active, a no-op otherwise."""
    san = ACTIVE
    return san.acting(name) if san is not None else NULL_SCOPE
