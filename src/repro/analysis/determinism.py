"""Runtime determinism gate: same seed, same trace — or hard failure.

Static rules (DET001-003) catch the *sources* of nondeterminism; this
gate catches the *symptom* end-to-end: it runs an experiment twice with
the same master seed, records both runs through :mod:`repro.obs`, and
diffs the traces event-by-event. Wall-clock fields (``wall_ms`` — the
only real-time value in a trace record) are ignored; everything else,
including simulated times, scheduler/job ids, and commit outcomes, must
be byte-identical. The returned experiment rows are compared too.

A second mode (:func:`run_parallel_gate`, ``--compare-jobs N``)
compares a *serial* run against the same experiment fanned out over N
worker processes (see :mod:`repro.perf.parallel`): parallel execution
is only admissible because it is observationally identical to serial,
and this gate is where that claim is enforced end-to-end — rows and
traces both.

Run it directly (used by CI)::

    python -m repro.analysis.determinism --scale 0.05 --hours 0.5
    python -m repro.analysis.determinism --scale 0.05 --hours 0.5 --compare-jobs 4

Note the gate runs both passes in one process, so it cannot see
``PYTHONHASHSEED``-dependent divergence between *processes* — that is
DET003's job; the gate catches everything else (stateful module
globals, unseeded draws, iteration over identity-keyed containers).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro import obs
from repro.obs import timeline as obs_timeline

#: Trace-record fields carrying wall-clock time, never compared.
WALL_FIELDS = ("wall_ms",)


def values_equal(a: Any, b: Any) -> bool:
    """Structural equality that treats NaN as equal to NaN.

    Sparse experiment rows legitimately carry NaN (e.g. a service wait
    time when no service job finished); ``nan != nan`` must not read as
    nondeterminism.
    """
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(values_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            values_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of one double-run comparison."""

    records_a: int
    records_b: int
    divergences: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        header = (
            f"determinism gate: {self.records_a} vs {self.records_b} trace "
            f"records -> {'IDENTICAL' if self.identical else 'DIVERGED'}"
        )
        return "\n".join([header, *self.divergences])


def canonical_record(
    record: dict[str, Any], ignore_fields: Sequence[str] = WALL_FIELDS
) -> dict[str, Any]:
    """A record with wall-clock fields removed (top level and nested
    ``fields``), ready for exact comparison."""
    clean = {key: value for key, value in record.items() if key not in ignore_fields}
    nested = clean.get("fields")
    if isinstance(nested, dict):
        clean["fields"] = {
            key: value for key, value in nested.items() if key not in ignore_fields
        }
    return clean


def diff_traces(
    trace_a: list[dict[str, Any]],
    trace_b: list[dict[str, Any]],
    ignore_fields: Sequence[str] = WALL_FIELDS,
    max_divergences: int = 10,
) -> list[str]:
    """Describe where two traces diverge (empty list == identical)."""
    divergences: list[str] = []
    if len(trace_a) != len(trace_b):
        divergences.append(
            f"record count differs: {len(trace_a)} vs {len(trace_b)}"
        )
    for index, (raw_a, raw_b) in enumerate(zip(trace_a, trace_b)):
        record_a = canonical_record(raw_a, ignore_fields)
        record_b = canonical_record(raw_b, ignore_fields)
        if not values_equal(record_a, record_b):
            divergences.append(
                f"record {index}: {record_a!r} != {record_b!r}"
            )
            if len(divergences) >= max_divergences:
                divergences.append("... (further divergences elided)")
                break
    return divergences


def _run_traced(experiment: Callable[[], Any]) -> tuple[Any, list[dict[str, Any]]]:
    recorder = obs.TraceRecorder(keep_records=True)
    obs.set_recorder(recorder)
    try:
        result = experiment()
    finally:
        obs.reset_recorder()
        recorder.close()
    return result, recorder.records


def run_gate(
    experiment: Callable[[], Any],
    ignore_fields: Sequence[str] = WALL_FIELDS,
) -> DeterminismReport:
    """Run ``experiment`` twice under fresh trace recorders and diff.

    ``experiment`` must be self-seeding (take no arguments and fix its
    own master seed). Divergent *return values* are reported as well as
    divergent traces: a run whose trace matches but whose rows differ
    is still nondeterministic.
    """
    result_a, trace_a = _run_traced(experiment)
    result_b, trace_b = _run_traced(experiment)
    divergences = diff_traces(trace_a, trace_b, ignore_fields)
    if not values_equal(result_a, result_b):
        divergences.append("experiment return values differ between runs")
    return DeterminismReport(
        records_a=len(trace_a), records_b=len(trace_b), divergences=divergences
    )


def run_parallel_gate(
    experiment: Callable[[int], Any],
    jobs: int,
    ignore_fields: Sequence[str] = WALL_FIELDS,
) -> DeterminismReport:
    """Diff a serial run against a ``jobs``-worker parallel run.

    ``experiment`` takes the worker count and must otherwise be
    self-seeding; it is called with ``1`` and then with ``jobs``. The
    comparison is exactly the double-run gate's: traces modulo wall
    time, plus return values — parallel execution must be
    observationally indistinguishable from serial.
    """
    if jobs < 2:
        raise ValueError(f"--compare-jobs needs >= 2 workers, got {jobs}")
    result_serial, trace_serial = _run_traced(lambda: experiment(1))
    result_parallel, trace_parallel = _run_traced(lambda: experiment(jobs))
    divergences = diff_traces(trace_serial, trace_parallel, ignore_fields)
    if not values_equal(result_serial, result_parallel):
        divergences.append(
            f"experiment rows differ between --jobs 1 and --jobs {jobs}"
        )
    return DeterminismReport(
        records_a=len(trace_serial),
        records_b=len(trace_parallel),
        divergences=divergences,
    )


# ----------------------------------------------------------------------
# CLI (CI entry point)
# ----------------------------------------------------------------------
def _representative_experiment(
    name: str, seed: int, scale: float, horizon: float
) -> Callable[[int], Any]:
    """A small experiment that exercises the full Omega txn pipeline.

    The returned callable takes the worker count (``jobs``), so the same
    experiments serve the double-run gate (called with the default) and
    the serial-vs-parallel gate.
    """
    if name == "fig5c":
        from repro.experiments.omega import figure5c_6c_rows

        return lambda jobs=1: figure5c_6c_rows(
            t_jobs=(1.0,), horizon=horizon, seed=seed, scale=scale, jobs=jobs
        )
    if name == "fig8":
        from repro.experiments.omega import figure8_rows

        return lambda jobs=1: figure8_rows(
            factors=(1.0, 4.0), horizon=horizon, seed=seed, scale=scale, jobs=jobs
        )
    if name == "fig14":
        from repro.experiments.conflict_modes import figure14_rows

        return lambda jobs=1: figure14_rows(
            horizon=horizon, seed=seed, scale=scale, jobs=jobs
        )
    if name == "resilience":
        # The fault-injection paths: chaos engine (machine failures,
        # scheduler crashes, commit delay/drop), starvation-escalation
        # retries, and the invariant checker must all replay exactly —
        # their trace events are compared like any other record.
        from repro.experiments.resilience import resilience_rows

        return lambda jobs=1: resilience_rows(
            intensities=(0.0, 5.0),
            architectures=("mesos", "omega"),
            policy="starvation",
            scale=scale,
            horizon=horizon,
            seed=seed,
            jobs=jobs,
        )
    if name == "conflict-avoidance":
        # The predictor-on paths: contention-score updates from the
        # commit hook, hot-machine placement steering, predictive
        # escalation, predictor crash-resets under chaos, and the
        # predict.* trace events must all replay exactly — and the
        # predictor-off half of the grid re-proves the off path is
        # byte-stable in the same run.
        from repro.experiments.conflict_avoidance import conflict_avoidance_rows

        return lambda jobs=1: conflict_avoidance_rows(
            factors=(4.0,),
            intensities=(0.0, 5.0),
            scale=scale,
            horizon=horizon,
            seed=seed,
            jobs=jobs,
        )
    if name == "federation":
        # The multi-cell paths: shared-event-loop cells, front-door
        # routing and health checks, digest publication, cell blackouts
        # with in-flight loss and backlog migration, feed partitions and
        # link flaps, and the end-to-end accounting invariant — the
        # fed.* and fault.cell_* trace events replay exactly or fail.
        from repro.experiments.federation import federation_rows

        return lambda jobs=1: federation_rows(
            cells=(1, 2),
            staleness_values=(0.0, 120.0),
            intensities=(0.0, 5.0),
            scale=scale,
            horizon=horizon,
            seed=seed,
            jobs=jobs,
        )
    raise ValueError(f"unknown experiment: {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.determinism",
        description="Run an experiment twice with the same master seed "
        "and fail if the structured traces differ in anything but wall "
        "time.",
    )
    parser.add_argument(
        "--experiment",
        choices=(
            "fig5c",
            "fig8",
            "fig14",
            "resilience",
            "conflict-avoidance",
            "federation",
        ),
        default="fig8",
        help="representative experiment to double-run (default: fig8); "
        "'resilience' double-runs a fault-injected sweep so the chaos "
        "engine and retry policies are themselves gated; "
        "'conflict-avoidance' double-runs a predictor-on/off sweep so "
        "the predictive steering and escalation paths are gated too; "
        "'federation' double-runs a multi-cell sweep with cell "
        "blackouts, feed partitions and link flaps",
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--scale", type=float, default=0.05, help="cell scale factor"
    )
    parser.add_argument(
        "--hours", type=float, default=0.5, help="simulated horizon in hours"
    )
    parser.add_argument(
        "--timeline-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also sample timeline.* telemetry every this many simulated "
        "seconds during the gated runs; the samples are compared like "
        "every other trace record (see repro.obs.timeline)",
    )
    parser.add_argument(
        "--compare-jobs",
        type=int,
        default=0,
        metavar="N",
        help="instead of double-running serially, compare --jobs 1 "
        "against --jobs N of the same experiment (N >= 2)",
    )
    parser.add_argument(
        "--kill-resume",
        action="store_true",
        help="kill-and-resume mode: run the experiment through the "
        "omega-sim CLI with --checkpoint, SIGKILL it mid-sweep, resume "
        "it, and fail unless the final table is byte-identical to an "
        "uninterrupted run (and the trace identical modulo wall time); "
        "see docs/RECOVERY.md",
    )
    parser.add_argument(
        "--artifacts-dir",
        default="kill-resume-artifacts",
        metavar="DIR",
        help="kill-resume mode: directory for the runs' outputs, "
        "checkpoint, logs and report (kept for post-mortems)",
    )
    parser.add_argument(
        "--kill-after",
        type=int,
        default=2,
        metavar="N",
        help="kill-resume mode: SIGKILL the victim once N sweep points "
        "are durably checkpointed",
    )
    args = parser.parse_args(argv)

    if args.kill_resume:
        import subprocess

        from repro.recovery.gate import run_kill_resume_gate

        try:
            report = run_kill_resume_gate(
                experiment=args.experiment,
                seed=args.seed,
                scale=args.scale,
                hours=args.hours,
                artifacts_dir=args.artifacts_dir,
                kill_after=args.kill_after,
                timeline_interval=args.timeline_interval,
            )
        except (
            RuntimeError,
            OSError,
            ValueError,
            subprocess.TimeoutExpired,
        ) as exc:
            print(f"determinism gate (kill-resume): {exc}", file=sys.stderr)
            return 2
        print(report.render())
        return 0 if report.identical else 1

    try:
        experiment = _representative_experiment(
            args.experiment, args.seed, args.scale, args.hours * 3600.0
        )
    except ValueError as exc:  # pragma: no cover - argparse choices guard this
        print(f"determinism gate: {exc}", file=sys.stderr)
        return 2
    try:
        # Baked into every config the experiment constructs, so the
        # timeline.* records are gated exactly like any other record.
        obs_timeline.set_default_interval(args.timeline_interval)
    except ValueError as exc:
        print(f"determinism gate: {exc}", file=sys.stderr)
        return 2
    try:
        if args.compare_jobs:
            try:
                report = run_parallel_gate(experiment, args.compare_jobs)
            except ValueError as exc:
                print(f"determinism gate: {exc}", file=sys.stderr)
                return 2
        else:
            report = run_gate(experiment)
    finally:
        obs_timeline.set_default_interval(None)
    print(report.render())
    if report.records_a == 0:
        print(
            "determinism gate: experiment emitted no trace records; "
            "the comparison is vacuous",
            file=sys.stderr,
        )
        return 2
    return 0 if report.identical else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
