"""Diagnostics emitted by the omega-lint rule engine.

A :class:`Diagnostic` is one finding: *where* (file, line, column),
*what* (rule id + message) and *how bad* (severity). Findings are
value objects with a total ordering so reports are deterministic — the
linter enforces determinism on the simulator, so it had better be
deterministic itself.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass


#: Severity levels, by increasing weight. ``error`` findings fail the
#: build; ``warning`` findings are reported but do not affect the exit
#: code (no shipped rule currently uses ``warning`` — the hook exists so
#: a rule can be staged in before it starts gating CI).
SEVERITIES = ("warning", "error")


@dataclass(frozen=True, order=True)
class RelatedLocation:
    """A secondary location a finding refers to (e.g. one hop of a
    call chain). Rendered as an indented note under the finding in the
    text report and as a ``relatedLocation`` in SARIF."""

    path: str
    line: int
    message: str


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, ordered by (path, line, col, rule)."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    #: secondary locations (call chains for the interprocedural rules).
    related: tuple[RelatedLocation, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def format_text(self) -> str:
        """``path:line:col: RULE error: message`` (editor-clickable),
        with one indented ``note:`` line per related location."""
        head = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )
        notes = [
            f"    {loc.path}:{loc.line}: note: {loc.message}"
            for loc in self.related
        ]
        return "\n".join([head, *notes])


def render_text(diagnostics: list[Diagnostic]) -> str:
    """Plain-text report: one finding per line plus a summary line."""
    lines = [diag.format_text() for diag in diagnostics]
    count = len(diagnostics)
    lines.append(f"omega-lint: {count} finding{'s' if count != 1 else ''}")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "findings": [asdict(diag) for diag in diagnostics],
        "count": len(diagnostics),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
