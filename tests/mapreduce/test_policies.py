"""Tests for the MapReduce resource-allocation policies."""

import pytest

from repro.mapreduce.model import MapReduceProfile
from repro.mapreduce.policies import (
    ClusterView,
    GlobalCapPolicy,
    MaxParallelismPolicy,
    NoAccelerationPolicy,
    RelativeJobSizePolicy,
    decide_workers,
)


def profile(maps=400, reduces=100, workers=10, cpu=1.0, mem=2.0):
    return MapReduceProfile(
        maps=maps,
        reduces=reduces,
        map_duration=60.0,
        reduce_duration=120.0,
        workers_configured=workers,
        cpu_per_worker=cpu,
        mem_per_worker=mem,
    )


def view(idle_cpu=1000.0, idle_mem=4000.0, total_cpu=2000.0, total_mem=8000.0):
    return ClusterView(
        idle_cpu=idle_cpu, idle_mem=idle_mem, total_cpu=total_cpu, total_mem=total_mem
    )


class TestClusterView:
    def test_utilization(self):
        assert view(idle_cpu=500.0, total_cpu=2000.0).utilization == 0.75


class TestPolicyCaps:
    def test_no_acceleration(self):
        assert NoAccelerationPolicy().worker_cap(profile(), view()) == 10

    def test_max_parallelism_goes_to_useful_limit(self):
        assert MaxParallelismPolicy().worker_cap(profile(maps=400), view()) == 400

    def test_relative_job_size_caps_at_4x(self):
        assert RelativeJobSizePolicy().worker_cap(profile(workers=10), view()) == 40

    def test_relative_cap_never_exceeds_useful(self):
        p = profile(maps=15, reduces=0, workers=10)
        assert RelativeJobSizePolicy().worker_cap(p, view()) == 15

    def test_global_cap_blocks_above_threshold(self):
        busy = view(idle_cpu=100.0, total_cpu=2000.0)  # 95% utilization
        assert GlobalCapPolicy(0.6).worker_cap(profile(), busy) == 10

    def test_global_cap_allows_headroom_below_threshold(self):
        idle = view(idle_cpu=1600.0, total_cpu=2000.0)  # 20% utilization
        cap = GlobalCapPolicy(0.6).worker_cap(profile(cpu=1.0), idle)
        # Headroom to the 60% line is 0.4 * 2000 = 800 extra workers.
        assert cap == pytest.approx(400)  # clipped at max useful (400 maps)

    def test_global_cap_validation(self):
        with pytest.raises(ValueError):
            GlobalCapPolicy(0.0)

    def test_relative_factor_validation(self):
        with pytest.raises(ValueError):
            RelativeJobSizePolicy(0.5)


class TestDecideWorkers:
    def test_grows_to_earliest_finish(self):
        workers = decide_workers(profile(), MaxParallelismPolicy(), view())
        assert workers == 400  # grid includes the cap; model is monotone

    def test_respects_idle_resources(self):
        tight = view(idle_cpu=50.0, idle_mem=4000.0)
        workers = decide_workers(profile(cpu=1.0), MaxParallelismPolicy(), tight)
        assert workers <= 50

    def test_memory_can_bind(self):
        tight = view(idle_cpu=1000.0, idle_mem=40.0)
        workers = decide_workers(profile(mem=2.0), MaxParallelismPolicy(), tight)
        assert workers <= 20

    def test_never_below_configured(self):
        empty = view(idle_cpu=0.0, idle_mem=0.0)
        workers = decide_workers(profile(workers=10), MaxParallelismPolicy(), empty)
        assert workers == 10

    def test_no_acceleration_keeps_configured(self):
        workers = decide_workers(profile(workers=10), NoAccelerationPolicy(), view())
        assert workers == 10

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            decide_workers(profile(), MaxParallelismPolicy(), view(), candidates=1)

    def test_grid_evaluates_intermediate_sizes(self):
        """When the model saturates mid-grid, the smallest allocation
        achieving the best finish time is picked (ties -> fewer workers)."""
        p = profile(maps=50, reduces=0, workers=10)
        workers = decide_workers(p, MaxParallelismPolicy(), view())
        assert workers == 50  # beyond 50 maps nothing improves
