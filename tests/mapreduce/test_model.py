"""Tests for the MapReduce performance model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mapreduce.model import (
    CONFIGURED_WORKER_CHOICES,
    MapReduceJob,
    MapReduceProfile,
    sample_profile,
)
from repro.workload.job import JobType


def profile(maps=100, reduces=20, map_dur=60.0, reduce_dur=120.0, workers=10):
    return MapReduceProfile(
        maps=maps,
        reduces=reduces,
        map_duration=map_dur,
        reduce_duration=reduce_dur,
        workers_configured=workers,
    )


class TestCompletionTime:
    def test_phases_add(self):
        p = profile(maps=100, reduces=20, map_dur=60.0, reduce_dur=120.0, workers=10)
        # 100*60/10 + 20*120/10 = 600 + 240
        assert p.completion_time(10) == pytest.approx(840.0)

    def test_linear_speedup(self):
        p = profile()
        assert p.completion_time(20) == pytest.approx(p.completion_time(10) / 2)

    def test_saturates_at_max_useful_workers(self):
        p = profile(maps=100, reduces=20)
        assert p.max_useful_workers == 100
        assert p.completion_time(100) == p.completion_time(1000)

    def test_reduce_phase_saturates_separately(self):
        """Workers beyond the reduce count stop helping the reduce
        phase while still helping maps (the mapper-reducer dependency)."""
        p = profile(maps=100, reduces=10, map_dur=60.0, reduce_dur=60.0)
        at_50 = p.completion_time(50)
        expected = 100 * 60 / 50 + 10 * 60 / 10
        assert at_50 == pytest.approx(expected)

    def test_map_only_job(self):
        p = profile(reduces=0)
        assert p.completion_time(10) == pytest.approx(600.0)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            profile().completion_time(0)


class TestSpeedup:
    def test_speedup_relative_to_configured(self):
        p = profile(workers=10)
        assert p.speedup(10) == pytest.approx(1.0)
        assert p.speedup(20) == pytest.approx(2.0)

    def test_fewer_workers_is_slowdown(self):
        p = profile(workers=10)
        assert p.speedup(5) == pytest.approx(0.5)

    @given(workers=st.integers(min_value=1, max_value=500))
    @settings(max_examples=100, deadline=None)
    def test_speedup_monotone_nondecreasing(self, workers):
        p = profile(maps=200, reduces=50, workers=10)
        assert p.speedup(workers + 1) >= p.speedup(workers) - 1e-12

    @given(workers=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=100, deadline=None)
    def test_speedup_capped_at_full_parallelism(self, workers):
        p = profile(maps=200, reduces=50, workers=10)
        assert p.speedup(workers) <= p.speedup(p.max_useful_workers) + 1e-12


class TestValidation:
    def test_needs_a_map(self):
        with pytest.raises(ValueError):
            profile(maps=0)

    def test_negative_reduces(self):
        with pytest.raises(ValueError):
            profile(reduces=-1)

    def test_zero_map_duration(self):
        with pytest.raises(ValueError):
            profile(map_dur=0.0)

    def test_reduce_duration_checked_when_reduces(self):
        with pytest.raises(ValueError):
            profile(reduces=5, reduce_dur=0.0)
        # No reduces: reduce duration is irrelevant.
        MapReduceProfile(
            maps=10, reduces=0, map_duration=1.0, reduce_duration=0.0,
            workers_configured=1,
        )

    def test_workers_positive(self):
        with pytest.raises(ValueError):
            profile(workers=0)


class TestMapReduceJob:
    def test_from_profile(self):
        p = profile(workers=10)
        job = MapReduceJob.from_profile(p, submit_time=5.0)
        assert job.job_type is JobType.BATCH
        assert job.num_tasks == 10
        assert job.duration == pytest.approx(p.completion_time(10))
        assert job.granted_workers == 0

    def test_profile_required(self):
        with pytest.raises(ValueError, match="profile"):
            MapReduceJob(
                job_type=JobType.BATCH,
                submit_time=0.0,
                num_tasks=1,
                cpu_per_task=1.0,
                mem_per_task=1.0,
                duration=10.0,
            )


class TestSampling:
    def test_configured_workers_from_paper_modes(self):
        rng = np.random.default_rng(0)
        observed = {sample_profile(rng).workers_configured for _ in range(200)}
        assert observed <= {5, 11, 200, 1000}
        assert len(observed) >= 3

    def test_activities_exceed_workers(self):
        rng = np.random.default_rng(1)
        for _ in range(100):
            p = sample_profile(rng)
            assert p.maps >= p.workers_configured
            assert p.max_useful_workers >= p.workers_configured

    def test_choice_weights_normalized(self):
        assert CONFIGURED_WORKER_CHOICES.probabilities.sum() == pytest.approx(1.0)
