"""Tests for the specialized MapReduce scheduler."""

import numpy as np
import pytest

from repro.cluster import Cell
from repro.core.cellstate import CellState
from repro.mapreduce.model import MapReduceJob, MapReduceProfile
from repro.mapreduce.policies import (
    MaxParallelismPolicy,
    NoAccelerationPolicy,
    RelativeJobSizePolicy,
)
from repro.mapreduce.scheduler import MapReduceScheduler, MapReduceWorkload
from repro.schedulers.base import DecisionTimeModel
from repro.sim import Simulator
from tests.conftest import make_job


@pytest.fixture
def state():
    return CellState(Cell.homogeneous(50, cpu_per_machine=4.0, mem_per_machine=16.0))


def make_mr_scheduler(sim, metrics, state, policy, seed=0):
    return MapReduceScheduler(
        "mapreduce",
        sim,
        metrics,
        state,
        np.random.default_rng(seed),
        DecisionTimeModel(t_job=0.1, t_task=0.0),
        policy,
    )


def mr_job(workers=10, maps=200, reduces=50):
    profile = MapReduceProfile(
        maps=maps,
        reduces=reduces,
        map_duration=60.0,
        reduce_duration=60.0,
        workers_configured=workers,
        cpu_per_worker=1.0,
        mem_per_worker=2.0,
    )
    return MapReduceJob.from_profile(profile, submit_time=0.0)


class TestOpportunisticGrants:
    def test_max_parallelism_grants_extra_workers(self, sim, metrics, state):
        scheduler = make_mr_scheduler(sim, metrics, state, MaxParallelismPolicy())
        job = mr_job(workers=10, maps=100, reduces=0)
        scheduler.submit(job)
        sim.run(until=1.0)
        assert job.granted_workers == 100
        assert scheduler.speedups == [pytest.approx(10.0)]
        assert state.used_cpu == 100.0

    def test_grant_shortens_duration(self, sim, metrics, state):
        scheduler = make_mr_scheduler(sim, metrics, state, MaxParallelismPolicy())
        job = mr_job(workers=10, maps=100, reduces=0)
        scheduler.submit(job)
        sim.run(until=1.0)
        # 100 maps x 60 s on 100 workers = 60 s instead of 600 s.
        assert job.duration == pytest.approx(60.0)
        sim.run(until=100.0)
        assert state.used_cpu == 0.0  # all workers freed at completion

    def test_no_acceleration_matches_configured(self, sim, metrics, state):
        scheduler = make_mr_scheduler(sim, metrics, state, NoAccelerationPolicy())
        job = mr_job(workers=10)
        scheduler.submit(job)
        sim.run(until=1.0)
        assert job.granted_workers == 10
        assert scheduler.speedups == [pytest.approx(1.0)]

    def test_relative_job_size_caps_at_4x(self, sim, metrics, state):
        scheduler = make_mr_scheduler(sim, metrics, state, RelativeJobSizePolicy())
        job = mr_job(workers=10, maps=500)
        scheduler.submit(job)
        sim.run(until=1.0)
        assert job.granted_workers == 40

    def test_grant_limited_by_cluster_room(self, sim, metrics):
        small_state = CellState(Cell.homogeneous(5, 4.0, 16.0))  # 20 cores
        scheduler = make_mr_scheduler(
            sim, metrics, small_state, MaxParallelismPolicy()
        )
        job = mr_job(workers=4, maps=1000)
        scheduler.submit(job)
        sim.run(until=1.0)
        assert 4 <= job.granted_workers <= 20

    def test_elastic_grant_below_configured_when_cluster_tight(self, sim, metrics):
        tiny = CellState(Cell.homogeneous(2, 4.0, 16.0))  # 8 cores
        tiny.claim(0, 4.0, 16.0)
        tiny.claim(1, 2.0, 2.0)
        scheduler = make_mr_scheduler(sim, metrics, tiny, MaxParallelismPolicy())
        job = mr_job(workers=10, maps=100)  # asks for 10, only 2 fit
        scheduler.submit(job)
        sim.run(until=1.0)
        assert job.granted_workers == 2
        assert job.is_fully_scheduled  # elastic: placed pool becomes the job
        assert scheduler.speedups[0] < 1.0  # a slowdown, honestly recorded

    def test_plain_jobs_take_the_omega_path(self, sim, metrics, state):
        scheduler = make_mr_scheduler(sim, metrics, state, MaxParallelismPolicy())
        plain = make_job(num_tasks=3, duration=100.0)
        scheduler.submit(plain)
        sim.run(until=1.0)
        assert plain.is_fully_scheduled
        assert state.used_cpu == 3.0
        assert scheduler.speedups == []

    def test_worker_accounting(self, sim, metrics, state):
        scheduler = make_mr_scheduler(sim, metrics, state, MaxParallelismPolicy())
        scheduler.submit(mr_job(workers=10, maps=50))
        sim.run(until=1.0)
        assert scheduler.workers_configured_total == 10
        assert scheduler.workers_granted_total == 50


class TestMapReduceWorkload:
    def test_generates_mr_jobs(self):
        sim = Simulator()
        jobs = []
        workload = MapReduceWorkload(
            sim, rate=0.05, rng=np.random.default_rng(0), submit=jobs.append,
            horizon=2000.0,
        )
        workload.start()
        sim.run()
        assert len(jobs) > 0
        assert all(isinstance(job, MapReduceJob) for job in jobs)
        assert workload.jobs_generated == len(jobs)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MapReduceWorkload(sim, rate=0.0, rng=None, submit=print, horizon=10.0)
        with pytest.raises(ValueError):
            MapReduceWorkload(
                sim, rate=1.0, rng=None, submit=print, horizon=0.0
            )
