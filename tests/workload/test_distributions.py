"""Tests for distribution samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.distributions import (
    Constant,
    DiscretizedLogNormal,
    Exponential,
    LogNormal,
    Mixture,
    Sampler,
    Uniform,
    WeightedChoice,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestConstant:
    def test_always_value(self, rng):
        sampler = Constant(3.5)
        assert sampler.sample(rng) == 3.5
        assert (sampler.sample_many(rng, 10) == 3.5).all()
        assert sampler.mean() == 3.5


class TestExponential:
    def test_mean_matches_rate(self, rng):
        sampler = Exponential(rate=0.5)
        samples = sampler.sample_many(rng, 20000)
        assert samples.mean() == pytest.approx(2.0, rel=0.05)
        assert sampler.mean() == 2.0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_samples_positive(self, rng):
        assert (Exponential(2.0).sample_many(rng, 1000) > 0).all()


class TestLogNormal:
    def test_median_parameterization(self, rng):
        sampler = LogNormal(median=100.0, sigma=1.5)
        samples = sampler.sample_many(rng, 20000)
        assert np.median(samples) == pytest.approx(100.0, rel=0.05)

    def test_analytic_mean(self, rng):
        sampler = LogNormal(median=10.0, sigma=0.5)
        samples = sampler.sample_many(rng, 50000)
        assert samples.mean() == pytest.approx(sampler.mean(), rel=0.05)

    def test_clipping(self, rng):
        sampler = LogNormal(median=1.0, sigma=2.0, low=0.5, high=2.0)
        samples = sampler.sample_many(rng, 1000)
        assert samples.min() >= 0.5
        assert samples.max() <= 2.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogNormal(median=-1.0, sigma=1.0)
        with pytest.raises(ValueError):
            LogNormal(median=1.0, sigma=-1.0)
        with pytest.raises(ValueError):
            LogNormal(median=1.0, sigma=1.0, low=2.0, high=1.0)

    def test_zero_sigma_is_constant(self, rng):
        sampler = LogNormal(median=5.0, sigma=0.0)
        assert np.allclose(sampler.sample_many(rng, 100), 5.0)


class TestDiscretizedLogNormal:
    def test_integral_samples_with_floor(self, rng):
        sampler = DiscretizedLogNormal(median=2.0, sigma=2.0, low=1)
        samples = sampler.sample_many(rng, 5000)
        assert (samples >= 1).all()
        assert (samples == np.rint(samples)).all()

    def test_high_cap(self, rng):
        sampler = DiscretizedLogNormal(median=100.0, sigma=2.0, low=1, high=500)
        assert sampler.sample_many(rng, 5000).max() <= 500

    def test_heavy_tail_reaches_thousands(self, rng):
        """The Figure 4 property: tasks-per-job tails reach thousands."""
        sampler = DiscretizedLogNormal(median=10, sigma=1.5, low=1, high=20000)
        samples = sampler.sample_many(rng, 100_000)
        assert np.percentile(samples, 99.9) > 500
        assert samples.max() > 1000

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            DiscretizedLogNormal(median=5, sigma=1, low=0)
        with pytest.raises(ValueError):
            DiscretizedLogNormal(median=5, sigma=1, low=10, high=5)


class TestUniformAndChoice:
    def test_uniform_bounds(self, rng):
        sampler = Uniform(2.0, 4.0)
        samples = sampler.sample_many(rng, 1000)
        assert samples.min() >= 2.0 and samples.max() < 4.0
        assert sampler.mean() == 3.0

    def test_weighted_choice_respects_weights(self, rng):
        sampler = WeightedChoice([1.0, 2.0], [0.9, 0.1])
        samples = sampler.sample_many(rng, 10000)
        assert (samples == 1.0).mean() == pytest.approx(0.9, abs=0.02)
        assert sampler.mean() == pytest.approx(1.1)

    def test_weighted_choice_validation(self):
        with pytest.raises(ValueError):
            WeightedChoice([1.0], [0.5, 0.5])
        with pytest.raises(ValueError):
            WeightedChoice([], [])
        with pytest.raises(ValueError):
            WeightedChoice([1.0], [-1.0])


class TestMixture:
    def test_mixture_mean(self, rng):
        mixture = Mixture([Constant(0.0), Constant(10.0)], [0.5, 0.5])
        assert mixture.mean() == 5.0
        samples = mixture.sample_many(rng, 10000)
        assert samples.mean() == pytest.approx(5.0, abs=0.3)

    def test_single_component(self, rng):
        mixture = Mixture([Constant(2.0)], [1.0])
        assert mixture.sample(rng) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Mixture([], [])
        with pytest.raises(ValueError):
            Mixture([Constant(1)], [1.0, 2.0])


class TestSamplerProtocol:
    @pytest.mark.parametrize(
        "sampler",
        [
            Constant(1.0),
            Exponential(1.0),
            LogNormal(1.0, 1.0),
            DiscretizedLogNormal(2.0, 1.0),
            Uniform(0.0, 1.0),
            WeightedChoice([1.0], [1.0]),
            Mixture([Constant(1.0)], [1.0]),
        ],
    )
    def test_implements_protocol(self, sampler):
        assert isinstance(sampler, Sampler)

    @given(
        median=st.floats(min_value=0.1, max_value=1e4),
        sigma=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_lognormal_samples_always_positive(self, median, sigma):
        rng = np.random.default_rng(0)
        samples = LogNormal(median, sigma).sample_many(rng, 100)
        assert (samples > 0).all()
