"""Tests for preset sanity validation."""

import dataclasses

import pytest

from repro.workload.clusters import CLUSTER_A, CLUSTER_B, CLUSTER_C, PRESETS
from repro.workload.validation import validate_all, validate_preset


class TestPresetReports:
    def test_all_registered_presets_clean(self):
        reports = validate_all()
        assert len(reports) == len(PRESETS)
        for report in reports:
            assert report.ok, f"{report.name}: {report.warnings}"

    def test_saturation_estimates_match_paper(self):
        """Figure 8's dashed lines, derived analytically: A ~2.5x,
        B ~6x, C ~9.5x."""
        estimates = {
            preset.name: validate_preset(preset).saturation_factor_estimate
            for preset in (CLUSTER_A, CLUSTER_B, CLUSTER_C)
        }
        assert estimates["A"] == pytest.approx(2.5, abs=0.5)
        assert estimates["B"] == pytest.approx(6.0, abs=1.0)
        assert estimates["C"] == pytest.approx(9.5, abs=1.0)

    def test_as_row_format(self):
        row = validate_preset(CLUSTER_A).as_row()
        assert row["cluster"] == "A"
        assert row["warnings"] == "-"


class TestWarnings:
    def test_overloaded_batch_flagged(self):
        hot = dataclasses.replace(
            CLUSTER_A,
            batch=CLUSTER_A.batch.scaled_rate(20.0),
            name="hot",
        )
        report = validate_preset(hot)
        assert any("exceeds headroom" in warning for warning in report.warnings)
        assert any("saturated at 1x" in warning for warning in report.warnings)
        assert not report.ok

    def test_idle_batch_flagged(self):
        idle = dataclasses.replace(
            CLUSTER_A,
            batch=CLUSTER_A.batch.scaled_rate(0.01),
            name="idle",
        )
        report = validate_preset(idle)
        assert any("nearly idle" in warning for warning in report.warnings)

    def test_service_dominated_jobs_flagged(self):
        lopsided = dataclasses.replace(
            CLUSTER_A,
            service=CLUSTER_A.service.scaled_rate(200.0),
            name="lopsided",
        )
        report = validate_preset(lopsided)
        assert any("of jobs" in warning for warning in report.warnings)

    def test_oversaturated_service_flagged(self):
        frantic = dataclasses.replace(
            CLUSTER_A,
            service=CLUSTER_A.service.scaled_rate(10.0),
            name="frantic",
        )
        report = validate_preset(frantic)
        assert any("oversaturated" in warning for warning in report.warnings)

    def test_cli_validate_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["validate"]) == 0
        output = capsys.readouterr().out
        assert "saturation_est" in output
