"""Tests for Poisson workload generation and the initial fill."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.workload.generator import InitialFill, StandingTask, WorkloadGenerator
from repro.workload.job import JobType
from tests.conftest import tiny_preset


@pytest.fixture
def preset():
    return tiny_preset()


class TestWorkloadGenerator:
    def _run(self, preset, horizon=2000.0, rate_factor=1.0, seed=0):
        sim = Simulator()
        jobs = []
        generator = WorkloadGenerator(
            sim,
            preset.batch,
            JobType.BATCH,
            np.random.default_rng(seed),
            jobs.append,
            horizon,
            rate_factor=rate_factor,
        )
        generator.start()
        sim.run()
        return sim, jobs, generator

    def test_generates_expected_count(self, preset):
        _, jobs, generator = self._run(preset, horizon=4000.0)
        expected = preset.batch.arrival_rate * 4000.0
        assert len(jobs) == pytest.approx(expected, rel=0.25)
        assert generator.jobs_generated == len(jobs)

    def test_all_arrivals_within_horizon(self, preset):
        _, jobs, _ = self._run(preset, horizon=1000.0)
        assert all(0 < job.submit_time <= 1000.0 for job in jobs)

    def test_arrivals_strictly_ordered(self, preset):
        _, jobs, _ = self._run(preset)
        times = [job.submit_time for job in jobs]
        assert times == sorted(times)

    def test_rate_factor_scales_arrivals(self, preset):
        _, base_jobs, _ = self._run(preset, horizon=4000.0)
        _, scaled_jobs, _ = self._run(preset, horizon=4000.0, rate_factor=3.0)
        assert len(scaled_jobs) == pytest.approx(3 * len(base_jobs), rel=0.25)

    def test_deterministic_given_seed(self, preset):
        _, first, _ = self._run(preset, seed=5)
        _, second, _ = self._run(preset, seed=5)
        assert [j.submit_time for j in first] == [j.submit_time for j in second]
        assert [j.num_tasks for j in first] == [j.num_tasks for j in second]

    def test_job_fields_sampled_from_params(self, preset):
        _, jobs, _ = self._run(preset, horizon=4000.0)
        assert all(job.job_type is JobType.BATCH for job in jobs)
        assert all(job.num_tasks >= 1 for job in jobs)
        assert all(job.cpu_per_task > 0 for job in jobs)
        assert all(job.duration > 0 for job in jobs)

    def test_validation(self, preset):
        sim = Simulator()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="horizon"):
            WorkloadGenerator(sim, preset.batch, JobType.BATCH, rng, print, -1.0)
        with pytest.raises(ValueError, match="rate_factor"):
            WorkloadGenerator(
                sim, preset.batch, JobType.BATCH, rng, print, 100.0, rate_factor=0.0
            )


class TestInitialFill:
    def test_reaches_cpu_target(self, preset):
        fill = InitialFill(preset)
        tasks = fill.generate(np.random.default_rng(0))
        total_cpu = sum(task.cpu for task in tasks)
        target = preset.total_cpu * preset.initial_utilization
        assert total_cpu >= target
        # Overshoot is at most one task.
        assert total_cpu - target < max(task.cpu for task in tasks) + 1e-9

    def test_service_majority_of_standing_cpu(self, preset):
        tasks = InitialFill(preset).generate(np.random.default_rng(1))
        service_cpu = sum(t.cpu for t in tasks if t.job_type is JobType.SERVICE)
        total_cpu = sum(t.cpu for t in tasks)
        assert service_cpu / total_cpu == pytest.approx(
            InitialFill.SERVICE_CPU_SHARE, abs=0.1
        )

    def test_service_standing_tasks_are_long_lived(self, preset):
        """Standing service tasks must persist for the simulation's
        horizon, or utilization decays unrealistically."""
        tasks = InitialFill(preset).generate(np.random.default_rng(2))
        service_durations = [
            t.duration for t in tasks if t.job_type is JobType.SERVICE
        ]
        assert np.median(service_durations) > 86400.0

    def test_target_override(self, preset):
        fill = InitialFill(preset, target_utilization=0.2)
        tasks = fill.generate(np.random.default_rng(3))
        total_cpu = sum(task.cpu for task in tasks)
        assert total_cpu == pytest.approx(preset.total_cpu * 0.2, rel=0.2)

    def test_zero_target_is_empty(self, preset):
        fill = InitialFill(preset, target_utilization=0.0)
        assert fill.generate(np.random.default_rng(0)) == []

    def test_invalid_target(self, preset):
        with pytest.raises(ValueError):
            InitialFill(preset, target_utilization=1.0)

    def test_standing_task_is_frozen(self):
        task = StandingTask(cpu=1.0, mem=2.0, duration=10.0, job_type=JobType.BATCH)
        with pytest.raises(AttributeError):
            task.cpu = 2.0  # type: ignore[misc]
