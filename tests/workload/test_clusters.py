"""Tests for the cluster presets and their paper-shape properties."""

import numpy as np
import pytest

from repro.sim import RandomStreams
from repro.workload.clusters import (
    CLUSTER_A,
    CLUSTER_B,
    CLUSTER_C,
    CLUSTER_D,
    PRESETS,
    TRACE_WINDOW,
    preset_by_name,
)


class TestPresetLookup:
    def test_all_four_clusters_defined(self):
        assert sorted(PRESETS) == ["A", "B", "C", "D"]

    def test_lookup_case_insensitive(self):
        assert preset_by_name("a") is CLUSTER_A
        assert preset_by_name(" B ") is CLUSTER_B

    def test_unknown_cluster(self):
        with pytest.raises(KeyError, match="unknown cluster"):
            preset_by_name("Z")


class TestPresetShapes:
    def test_relative_sizes(self):
        """B is one of the larger clusters; D is about a quarter of C."""
        assert CLUSTER_B.num_machines > CLUSTER_A.num_machines
        assert CLUSTER_B.num_machines > CLUSTER_C.num_machines
        assert CLUSTER_D.num_machines == pytest.approx(
            CLUSTER_C.num_machines / 4, rel=0.05
        )

    def test_d_is_lightly_loaded(self):
        assert CLUSTER_D.initial_utilization < CLUSTER_A.initial_utilization

    def test_batch_dominates_job_counts(self):
        """>80 % of jobs are batch (paper section 2.1)."""
        for preset in PRESETS.values():
            total = preset.batch.arrival_rate + preset.service.arrival_rate
            assert preset.batch.arrival_rate / total > 0.8

    def test_service_tasks_fewer_than_batch(self):
        """Service jobs have fewer tasks than batch jobs (Figure 4)."""
        for preset in PRESETS.values():
            assert (
                preset.service.tasks_per_job.mean() < preset.batch.tasks_per_job.mean()
            )

    def test_service_runs_much_longer(self):
        """Service durations dwarf batch durations (Figure 3)."""
        for preset in PRESETS.values():
            assert (
                preset.service.task_duration.mean()
                > 20 * preset.batch.task_duration.mean()
            )

    def test_offered_batch_load_fits_capacity(self):
        """Steady-state batch demand must fit the cell with the 60 %
        fill, or the simulators measure resource exhaustion instead of
        scheduler behaviour."""
        for preset in PRESETS.values():
            headroom = preset.total_cpu * (1.0 - preset.initial_utilization)
            assert preset.batch.mean_offered_cpu() < headroom

    def test_saturation_ordering_a_b_c(self):
        """Figure 8's dashed lines: batch schedulers saturate in the
        order A (~2.5x) < B (~6x) < C (~9.5x). Saturation is where
        busyness = rate x mean decision time reaches 1."""
        saturation = {}
        for preset in (CLUSTER_A, CLUSTER_B, CLUSTER_C):
            busyness = preset.batch.arrival_rate * preset.batch.mean_decision_time(
                t_job=0.1, t_task=0.005
            )
            saturation[preset.name] = 1.0 / busyness
        assert saturation["A"] < saturation["B"] < saturation["C"]
        assert 2.0 < saturation["A"] < 3.5
        assert 4.5 < saturation["B"] < 7.5
        assert 8.0 < saturation["C"] < 11.0


class TestCharacterizationShapes:
    """Monte Carlo checks of the Figure 2-4 distribution claims."""

    @pytest.fixture(scope="class")
    def samples(self):
        rng = RandomStreams(0).stream("preset-shape-tests")
        char = CLUSTER_A.characterization
        n = 40_000
        return {
            "batch_runtime": char.batch_runtime.sample_many(rng, n),
            "service_runtime": char.service_runtime.sample_many(rng, n),
            "batch_tasks": char.batch_tasks.sample_many(rng, n),
            "service_tasks": char.service_tasks.sample_many(rng, n),
            "char": char,
        }

    def test_service_tail_beyond_trace_window(self, samples):
        """Some service jobs outlive the 30-day window (Figure 3)."""
        tail = (samples["service_runtime"] > TRACE_WINDOW).mean()
        assert 0.03 < tail < 0.20

    def test_batch_runtime_within_window(self, samples):
        assert (samples["batch_runtime"] <= TRACE_WINDOW).mean() > 0.999

    def test_service_resource_majority(self, samples):
        """Service holds 55-80 % of requested CPU-core-seconds."""
        char = samples["char"]
        batch = (
            char.batch_arrival_rate
            * samples["batch_tasks"].mean()
            * char.batch_cpu.mean()
            * np.minimum(samples["batch_runtime"], TRACE_WINDOW).mean()
        )
        service = (
            char.service_arrival_rate
            * samples["service_tasks"].mean()
            * char.service_cpu.mean()
            * np.minimum(samples["service_runtime"], TRACE_WINDOW).mean()
        )
        share = service / (batch + service)
        assert 0.55 < share < 0.80


class TestScaling:
    def test_scaled_preserves_load_ratio(self):
        scaled = CLUSTER_B.scaled(0.5)
        ratio = scaled.batch.arrival_rate / CLUSTER_B.batch.arrival_rate
        assert ratio == pytest.approx(scaled.num_machines / CLUSTER_B.num_machines)

    def test_scaled_rounds_machines(self):
        scaled = CLUSTER_A.scaled(0.1)
        assert scaled.num_machines == 150

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            CLUSTER_A.scaled(0.0)

    def test_rate_factor_positive(self):
        with pytest.raises(ValueError):
            CLUSTER_A.batch.scaled_rate(-1.0)

    def test_cell_matches_preset(self):
        cell = CLUSTER_D.cell()
        assert cell.num_machines == CLUSTER_D.num_machines
        assert cell.total_cpu == CLUSTER_D.total_cpu
