"""Tests for the Job model and its scheduling lifecycle fields."""

import pytest

from repro.workload.job import Job, JobType, reset_job_ids
from tests.conftest import make_job


class TestJobValidation:
    def test_valid_job(self):
        job = make_job(num_tasks=3, cpu=0.5, mem=1.0, duration=10.0)
        assert job.unplaced_tasks == 3
        assert job.total_cpu == 1.5
        assert job.total_mem == 3.0

    def test_needs_at_least_one_task(self):
        with pytest.raises(ValueError, match="at least one task"):
            make_job(num_tasks=0)

    def test_rejects_negative_resources(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_job(cpu=-1.0)

    def test_rejects_zero_resource_tasks(self):
        with pytest.raises(ValueError, match="some resource"):
            make_job(cpu=0.0, mem=0.0)

    def test_single_resource_dimension_allowed(self):
        job = make_job(cpu=0.0, mem=1.0)
        assert job.cpu_per_task == 0.0

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            make_job(duration=0.0)


class TestJobIds:
    def test_ids_monotonic(self):
        first = make_job()
        second = make_job()
        assert second.job_id == first.job_id + 1

    def test_reset_restarts_counter(self):
        make_job()
        reset_job_ids()
        assert make_job().job_id == 1


class TestLifecycle:
    def test_wait_time_none_before_first_attempt(self):
        job = make_job(submit_time=10.0)
        assert job.wait_time is None

    def test_mark_first_attempt_sets_wait(self):
        job = make_job(submit_time=10.0)
        job.mark_first_attempt(25.0)
        assert job.wait_time == 15.0

    def test_mark_first_attempt_is_sticky(self):
        job = make_job(submit_time=0.0)
        job.mark_first_attempt(5.0)
        job.mark_first_attempt(50.0)
        assert job.first_attempt_time == 5.0

    def test_fully_scheduled_tracks_unplaced(self):
        job = make_job(num_tasks=2)
        assert not job.is_fully_scheduled
        job.unplaced_tasks = 0
        assert job.is_fully_scheduled
        assert job.placed_tasks == 2

    def test_job_types(self):
        assert JobType.BATCH.value == "batch"
        assert JobType.SERVICE.value == "service"

    def test_conflict_retry_flag_defaults_false(self):
        assert make_job().requeued_for_conflict is False
