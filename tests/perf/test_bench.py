"""Benchmark harness: result schema, expectation logic, and the
baseline regression gate (timing *values* are not asserted here —
floors belong to `omega-sim bench` itself)."""

import copy
import json

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def smoke_results():
    return bench.run_benchmarks(smoke=True, jobs=2)


class TestRunBenchmarks:
    def test_schema_complete(self, smoke_results):
        assert smoke_results["format_version"] == bench.FORMAT_VERSION
        assert smoke_results["smoke"] is True
        machine = smoke_results["machine"]
        assert machine["cpu_count"] >= 1
        for key in ("platform", "python", "numpy"):
            assert machine[key]
        benchmarks = smoke_results["benchmarks"]
        assert set(benchmarks) == {
            "snapshot_resync",
            "placement_pack",
            "commit_batch",
            "paper_scale",
            "event_loop",
            "tracing_overhead",
            "sweep_serial_parallel",
            "sanitizer_overhead",
            "predictor_overhead",
            "federation_overhead",
        }
        assert benchmarks["snapshot_resync"]["speedup"] > 0
        assert benchmarks["placement_pack"]["placements_per_s"] > 0
        assert benchmarks["placement_pack"]["legacy_placements_per_s"] > 0
        assert benchmarks["placement_pack"]["speedup"] > 0
        commit_batch = benchmarks["commit_batch"]
        assert commit_batch["batch_claims_per_s"] > 0
        assert commit_batch["reference_claims_per_s"] > 0
        assert commit_batch["identical_outcomes"] is True
        paper = benchmarks["paper_scale"]
        assert paper["events_processed"] > 0
        assert paper["machines"] > 0
        assert len(paper["rows"]) == paper["points"] > 0
        for row in paper["rows"]:
            assert row["events_processed"] > 0
            assert row["wall_s"] > 0
        assert benchmarks["event_loop"]["events_per_s"] > 0
        tracing = benchmarks["tracing_overhead"]
        for mode in ("plain", "noop", "active", "timeline"):
            assert tracing[f"{mode}_events_per_s"] > 0
        assert tracing["noop_throughput_ratio"] > 0
        sanitizer = benchmarks["sanitizer_overhead"]
        for mode in ("plain", "off", "on"):
            assert sanitizer[f"{mode}_ops_per_s"] > 0
        assert sanitizer["off_throughput_ratio"] > 0
        assert sanitizer["on_overhead_x"] > 0
        predictor = benchmarks["predictor_overhead"]
        for mode in ("plain", "off", "on"):
            assert predictor[f"{mode}_attempts_per_s"] > 0
        assert predictor["off_throughput_ratio"] > 0
        assert predictor["on_overhead_x"] > 0
        federation = benchmarks["federation_overhead"]
        assert federation["events_processed"] > 0
        assert federation["plain_events_per_s"] > 0
        assert federation["federated_events_per_s"] > 0
        assert federation["federated_throughput_ratio"] > 0

    def test_json_serializable(self, smoke_results):
        assert json.loads(json.dumps(smoke_results))

    def test_tracing_bench_restores_the_recorder(self):
        from repro import obs

        before = obs.get_recorder()
        bench.bench_tracing_overhead(events=200, repeats=1, timeline_every=50.0)
        assert obs.get_recorder() is before

    def test_sanitizer_bench_restores_active_state(self):
        from repro.analysis import sanitizer as _san

        assert _san.ACTIVE is None
        result = bench.bench_sanitizer_overhead(
            num_machines=50, operations=2_000, repeats=1
        )
        assert _san.ACTIVE is None
        assert result["on_overhead_x"] > 0

    def test_serial_parallel_rows_identical(self, smoke_results):
        assert smoke_results["benchmarks"]["sweep_serial_parallel"][
            "identical_rows"
        ]

    def test_expectations_present(self, smoke_results):
        names = {e["name"] for e in smoke_results["expectations"]}
        assert names == {
            "resync_speedup",
            "placement_speedup",
            "commit_batch_speedup",
            "commit_batch_identical",
            "paper_scale_shape",
            "tracing_noop_throughput",
            "serial_parallel_identical",
            "parallel_speedup",
            "sanitizer_off_throughput",
            "predictor_off_throughput",
            "federation_overhead",
        }
        by_name = {e["name"]: e for e in smoke_results["expectations"]}
        # Row identity is enforced even in smoke mode; timing floors are
        # recorded but unenforced at smoke sizes — except the sanitizer
        # off-mode floor (guard cost is size-independent) and the
        # placement/commit kernel speedups (enforced with smoke-size
        # floors so CI catches kernel regressions).
        assert by_name["serial_parallel_identical"]["enforced"]
        assert by_name["sanitizer_off_throughput"]["enforced"]
        assert by_name["placement_speedup"]["enforced"]
        assert by_name["commit_batch_speedup"]["enforced"]
        assert by_name["commit_batch_identical"]["enforced"]
        # The 1-cell federation's per-event overhead is size-independent,
        # so its throughput floor holds even at smoke sizes.
        assert by_name["federation_overhead"]["enforced"]
        assert not by_name["paper_scale_shape"]["enforced"]
        assert not by_name["resync_speedup"]["enforced"]
        assert not by_name["tracing_noop_throughput"]["enforced"]
        assert not by_name["parallel_speedup"]["enforced"]
        for expectation in smoke_results["expectations"]:
            if not expectation["enforced"]:
                assert expectation["reason"]

    def test_smoke_floors_are_lower_than_full_floors(self):
        assert bench.PLACEMENT_SPEEDUP_FLOOR_SMOKE <= bench.PLACEMENT_SPEEDUP_FLOOR
        assert (
            bench.COMMIT_BATCH_SPEEDUP_FLOOR_SMOKE
            <= bench.COMMIT_BATCH_SPEEDUP_FLOOR
        )

    def test_full_mode_requires_paper_scale_shape(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["smoke"] = False
        by_name = {
            e["name"]: e for e in bench.evaluate_expectations(results)
        }
        shape = by_name["paper_scale_shape"]
        assert shape["enforced"]
        assert not shape["passed"]  # smoke sizes cannot claim the proof


class TestGate:
    def test_smoke_run_passes_gate(self, smoke_results):
        assert bench.gate(smoke_results) == []

    def test_enforced_expectation_failure_fails_gate(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["benchmarks"]["sweep_serial_parallel"]["identical_rows"] = False
        results["expectations"] = bench.evaluate_expectations(results)
        failures = bench.gate(results)
        assert any("serial_parallel_identical" in f for f in failures)

    def test_unenforced_expectation_does_not_fail_gate(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["benchmarks"]["snapshot_resync"]["speedup"] = 0.1
        results["expectations"] = bench.evaluate_expectations(results)
        assert bench.gate(results) == []

    def test_full_mode_enforces_resync_floor(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["smoke"] = False
        results["benchmarks"]["snapshot_resync"]["speedup"] = 0.1
        results["expectations"] = bench.evaluate_expectations(results)
        failures = bench.gate(results)
        assert any("resync_speedup" in f for f in failures)

    def test_full_mode_enforces_tracing_floor(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["smoke"] = False
        results["benchmarks"]["tracing_overhead"]["noop_throughput_ratio"] = 0.1
        results["expectations"] = bench.evaluate_expectations(results)
        failures = bench.gate(results)
        assert any("tracing_noop_throughput" in f for f in failures)

    def test_parallel_floor_gated_on_cores(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["smoke"] = False
        results["machine"]["cpu_count"] = 8
        # Pin the other full-mode floors so only parallel_speedup varies.
        results["benchmarks"]["snapshot_resync"]["speedup"] = 2.0
        results["benchmarks"]["tracing_overhead"]["noop_throughput_ratio"] = 1.0
        results["benchmarks"]["placement_pack"]["speedup"] = 6.0
        results["benchmarks"]["commit_batch"]["speedup"] = 4.0
        results["benchmarks"]["paper_scale"]["machines"] = 10_000
        results["benchmarks"]["paper_scale"]["horizon_days"] = 3.0
        results["benchmarks"]["sweep_serial_parallel"]["speedup"] = 1.1
        results["expectations"] = bench.evaluate_expectations(results)
        assert any("parallel_speedup" in f for f in bench.gate(results))
        results["machine"]["cpu_count"] = 1
        results["expectations"] = bench.evaluate_expectations(results)
        assert bench.gate(results) == []

    def test_baseline_regression_detected(self, smoke_results):
        baseline = copy.deepcopy(smoke_results)
        current = copy.deepcopy(smoke_results)
        current["benchmarks"]["event_loop"]["events_per_s"] = (
            baseline["benchmarks"]["event_loop"]["events_per_s"] * 0.5
        )
        failures = bench.gate(current, baseline, tolerance=0.25)
        assert any("event_loop.events_per_s" in f for f in failures)

    def test_regression_within_tolerance_passes(self, smoke_results):
        baseline = copy.deepcopy(smoke_results)
        current = copy.deepcopy(smoke_results)
        current["benchmarks"]["event_loop"]["events_per_s"] = (
            baseline["benchmarks"]["event_loop"]["events_per_s"] * 0.9
        )
        assert bench.gate(current, baseline, tolerance=0.25) == []

    def test_machine_shape_mismatch_skips_throughput(self, smoke_results):
        baseline = copy.deepcopy(smoke_results)
        baseline["machine"]["cpu_count"] = smoke_results["machine"]["cpu_count"] + 4
        current = copy.deepcopy(smoke_results)
        current["benchmarks"]["event_loop"]["events_per_s"] = 1.0
        assert bench.gate(current, baseline, tolerance=0.25) == []


class TestRender:
    def test_report_mentions_every_benchmark(self, smoke_results):
        report = bench.render_report(smoke_results)
        for name in smoke_results["benchmarks"]:
            assert name in report
        assert "smoke" in report

    def test_cli_smoke_exit_zero(self, tmp_path):
        from repro.experiments.cli import main

        out = tmp_path / "bench.json"
        rc = main(["bench", "--smoke", "--jobs", "2", "--output", str(out)])
        assert rc == 0
        saved = json.loads(out.read_text())
        assert saved["smoke"] is True

    def test_cli_bad_baseline_exits_two(self, tmp_path):
        from repro.experiments.cli import main

        rc = main(["bench", "--smoke", "--baseline", str(tmp_path / "nope.json")])
        assert rc == 2

    def test_cli_corrupt_baseline_exits_two(self, tmp_path, capsys):
        from repro.experiments.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text("{truncated")
        rc = main(["bench", "--smoke", "--baseline", str(baseline)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "omega-sim bench:" in err and "not valid JSON" in err

    def test_cli_list_shaped_baseline_exits_two(self, tmp_path, capsys):
        from repro.experiments.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text("[1, 2, 3]\n")
        rc = main(["bench", "--smoke", "--baseline", str(baseline)])
        assert rc == 2
        assert "expected a JSON object" in capsys.readouterr().err

    def test_cli_tampered_baseline_exits_two(self, tmp_path, capsys):
        from repro.experiments.cli import main
        from repro.recovery.artifacts import write_json_artifact

        doc = {"benchmarks": {}, "machine": {}, "smoke": True}
        baseline = tmp_path / "baseline.json"
        write_json_artifact(baseline, doc)
        mangled = json.loads(baseline.read_text())
        mangled["machine"] = {"cpu_count": 999}  # stale content_hash
        baseline.write_text(json.dumps(mangled))
        rc = main(["bench", "--smoke", "--baseline", str(baseline)])
        assert rc == 2
        assert "integrity check" in capsys.readouterr().err

    def test_cli_output_is_loadable_artifact(self, tmp_path):
        from repro.experiments.cli import main
        from repro.recovery.artifacts import load_json_artifact

        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--output", str(out)]) == 0
        doc = load_json_artifact(out, require=("benchmarks", "machine"))
        assert doc["smoke"] is True


class TestCompare:
    def _saved(self, tmp_path, name, results):
        from repro.recovery.artifacts import write_json_artifact

        path = tmp_path / name
        write_json_artifact(path, results)
        return str(path)

    def test_render_compare_delta_table(self, smoke_results):
        new = copy.deepcopy(smoke_results)
        new["benchmarks"]["placement_pack"]["placements_per_s"] *= 2.0
        table = bench.render_compare(smoke_results, new)
        assert "placement_pack.placements_per_s" in table
        assert "+100.0%" in table
        assert "commit_batch.batch_claims_per_s" in table
        assert "paper_scale.events_per_s" in table

    def test_render_compare_notes_machine_mismatch(self, smoke_results):
        new = copy.deepcopy(smoke_results)
        new["machine"]["cpu_count"] = smoke_results["machine"]["cpu_count"] + 4
        table = bench.render_compare(smoke_results, new)
        assert "machine shapes differ" in table

    def test_render_compare_notes_smoke_mismatch(self, smoke_results):
        new = copy.deepcopy(smoke_results)
        new["smoke"] = not smoke_results["smoke"]
        table = bench.render_compare(smoke_results, new)
        assert "smoke modes differ" in table

    def test_cli_compare_exit_zero(self, tmp_path, capsys, smoke_results):
        from repro.experiments.cli import main

        old = self._saved(tmp_path, "old.json", smoke_results)
        new = self._saved(tmp_path, "new.json", smoke_results)
        assert main(["bench", "--compare", old, new]) == 0
        out = capsys.readouterr().out
        assert "snapshot_resync.speedup" in out
        assert "+0.0%" in out

    def test_cli_compare_missing_input_exits_two(self, tmp_path, capsys, smoke_results):
        from repro.experiments.cli import main

        old = self._saved(tmp_path, "old.json", smoke_results)
        rc = main(["bench", "--compare", old, str(tmp_path / "nope.json")])
        assert rc == 2
        assert "omega-sim bench:" in capsys.readouterr().err

    def test_cli_compare_corrupt_input_exits_two(self, tmp_path, capsys, smoke_results):
        from repro.experiments.cli import main

        new = self._saved(tmp_path, "new.json", smoke_results)
        corrupt = tmp_path / "old.json"
        corrupt.write_text("{truncated")
        rc = main(["bench", "--compare", str(corrupt), new])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_cli_compare_schema_invalid_exits_two(self, tmp_path, capsys, smoke_results):
        from repro.experiments.cli import main

        new = self._saved(tmp_path, "new.json", smoke_results)
        invalid = self._saved(tmp_path, "old.json", {"machine": {}})
        rc = main(["bench", "--compare", invalid, new])
        assert rc == 2
        assert "benchmarks" in capsys.readouterr().err
