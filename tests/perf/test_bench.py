"""Benchmark harness: result schema, expectation logic, and the
baseline regression gate (timing *values* are not asserted here —
floors belong to `omega-sim bench` itself)."""

import copy
import json

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def smoke_results():
    return bench.run_benchmarks(smoke=True, jobs=2)


class TestRunBenchmarks:
    def test_schema_complete(self, smoke_results):
        assert smoke_results["format_version"] == bench.FORMAT_VERSION
        assert smoke_results["smoke"] is True
        machine = smoke_results["machine"]
        assert machine["cpu_count"] >= 1
        for key in ("platform", "python", "numpy"):
            assert machine[key]
        benchmarks = smoke_results["benchmarks"]
        assert set(benchmarks) == {
            "snapshot_resync",
            "placement_pack",
            "event_loop",
            "tracing_overhead",
            "sweep_serial_parallel",
            "sanitizer_overhead",
        }
        assert benchmarks["snapshot_resync"]["speedup"] > 0
        assert benchmarks["placement_pack"]["placements_per_s"] > 0
        assert benchmarks["event_loop"]["events_per_s"] > 0
        tracing = benchmarks["tracing_overhead"]
        for mode in ("plain", "noop", "active", "timeline"):
            assert tracing[f"{mode}_events_per_s"] > 0
        assert tracing["noop_throughput_ratio"] > 0
        sanitizer = benchmarks["sanitizer_overhead"]
        for mode in ("plain", "off", "on"):
            assert sanitizer[f"{mode}_ops_per_s"] > 0
        assert sanitizer["off_throughput_ratio"] > 0
        assert sanitizer["on_overhead_x"] > 0

    def test_json_serializable(self, smoke_results):
        assert json.loads(json.dumps(smoke_results))

    def test_tracing_bench_restores_the_recorder(self):
        from repro import obs

        before = obs.get_recorder()
        bench.bench_tracing_overhead(events=200, repeats=1, timeline_every=50.0)
        assert obs.get_recorder() is before

    def test_sanitizer_bench_restores_active_state(self):
        from repro.analysis import sanitizer as _san

        assert _san.ACTIVE is None
        result = bench.bench_sanitizer_overhead(
            num_machines=50, operations=2_000, repeats=1
        )
        assert _san.ACTIVE is None
        assert result["on_overhead_x"] > 0

    def test_serial_parallel_rows_identical(self, smoke_results):
        assert smoke_results["benchmarks"]["sweep_serial_parallel"][
            "identical_rows"
        ]

    def test_expectations_present(self, smoke_results):
        names = {e["name"] for e in smoke_results["expectations"]}
        assert names == {
            "resync_speedup",
            "tracing_noop_throughput",
            "serial_parallel_identical",
            "parallel_speedup",
            "sanitizer_off_throughput",
        }
        by_name = {e["name"]: e for e in smoke_results["expectations"]}
        # Row identity is enforced even in smoke mode; timing floors are
        # recorded but unenforced at smoke sizes — except the sanitizer
        # off-mode floor, whose guard cost is size-independent.
        assert by_name["serial_parallel_identical"]["enforced"]
        assert by_name["sanitizer_off_throughput"]["enforced"]
        assert not by_name["resync_speedup"]["enforced"]
        assert not by_name["tracing_noop_throughput"]["enforced"]
        assert not by_name["parallel_speedup"]["enforced"]
        for expectation in smoke_results["expectations"]:
            if not expectation["enforced"]:
                assert expectation["reason"]


class TestGate:
    def test_smoke_run_passes_gate(self, smoke_results):
        assert bench.gate(smoke_results) == []

    def test_enforced_expectation_failure_fails_gate(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["benchmarks"]["sweep_serial_parallel"]["identical_rows"] = False
        results["expectations"] = bench.evaluate_expectations(results)
        failures = bench.gate(results)
        assert any("serial_parallel_identical" in f for f in failures)

    def test_unenforced_expectation_does_not_fail_gate(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["benchmarks"]["snapshot_resync"]["speedup"] = 0.1
        results["expectations"] = bench.evaluate_expectations(results)
        assert bench.gate(results) == []

    def test_full_mode_enforces_resync_floor(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["smoke"] = False
        results["benchmarks"]["snapshot_resync"]["speedup"] = 0.1
        results["expectations"] = bench.evaluate_expectations(results)
        failures = bench.gate(results)
        assert any("resync_speedup" in f for f in failures)

    def test_full_mode_enforces_tracing_floor(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["smoke"] = False
        results["benchmarks"]["tracing_overhead"]["noop_throughput_ratio"] = 0.1
        results["expectations"] = bench.evaluate_expectations(results)
        failures = bench.gate(results)
        assert any("tracing_noop_throughput" in f for f in failures)

    def test_parallel_floor_gated_on_cores(self, smoke_results):
        results = copy.deepcopy(smoke_results)
        results["smoke"] = False
        results["machine"]["cpu_count"] = 8
        # Pin the other full-mode floors so only parallel_speedup varies.
        results["benchmarks"]["snapshot_resync"]["speedup"] = 2.0
        results["benchmarks"]["tracing_overhead"]["noop_throughput_ratio"] = 1.0
        results["benchmarks"]["sweep_serial_parallel"]["speedup"] = 1.1
        results["expectations"] = bench.evaluate_expectations(results)
        assert any("parallel_speedup" in f for f in bench.gate(results))
        results["machine"]["cpu_count"] = 1
        results["expectations"] = bench.evaluate_expectations(results)
        assert bench.gate(results) == []

    def test_baseline_regression_detected(self, smoke_results):
        baseline = copy.deepcopy(smoke_results)
        current = copy.deepcopy(smoke_results)
        current["benchmarks"]["event_loop"]["events_per_s"] = (
            baseline["benchmarks"]["event_loop"]["events_per_s"] * 0.5
        )
        failures = bench.gate(current, baseline, tolerance=0.25)
        assert any("event_loop.events_per_s" in f for f in failures)

    def test_regression_within_tolerance_passes(self, smoke_results):
        baseline = copy.deepcopy(smoke_results)
        current = copy.deepcopy(smoke_results)
        current["benchmarks"]["event_loop"]["events_per_s"] = (
            baseline["benchmarks"]["event_loop"]["events_per_s"] * 0.9
        )
        assert bench.gate(current, baseline, tolerance=0.25) == []

    def test_machine_shape_mismatch_skips_throughput(self, smoke_results):
        baseline = copy.deepcopy(smoke_results)
        baseline["machine"]["cpu_count"] = smoke_results["machine"]["cpu_count"] + 4
        current = copy.deepcopy(smoke_results)
        current["benchmarks"]["event_loop"]["events_per_s"] = 1.0
        assert bench.gate(current, baseline, tolerance=0.25) == []


class TestRender:
    def test_report_mentions_every_benchmark(self, smoke_results):
        report = bench.render_report(smoke_results)
        for name in smoke_results["benchmarks"]:
            assert name in report
        assert "smoke" in report

    def test_cli_smoke_exit_zero(self, tmp_path):
        from repro.experiments.cli import main

        out = tmp_path / "bench.json"
        rc = main(["bench", "--smoke", "--jobs", "2", "--output", str(out)])
        assert rc == 0
        saved = json.loads(out.read_text())
        assert saved["smoke"] is True

    def test_cli_bad_baseline_exits_two(self, tmp_path):
        from repro.experiments.cli import main

        rc = main(["bench", "--smoke", "--baseline", str(tmp_path / "nope.json")])
        assert rc == 2

    def test_cli_corrupt_baseline_exits_two(self, tmp_path, capsys):
        from repro.experiments.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text("{truncated")
        rc = main(["bench", "--smoke", "--baseline", str(baseline)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "omega-sim bench:" in err and "not valid JSON" in err

    def test_cli_list_shaped_baseline_exits_two(self, tmp_path, capsys):
        from repro.experiments.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text("[1, 2, 3]\n")
        rc = main(["bench", "--smoke", "--baseline", str(baseline)])
        assert rc == 2
        assert "expected a JSON object" in capsys.readouterr().err

    def test_cli_tampered_baseline_exits_two(self, tmp_path, capsys):
        from repro.experiments.cli import main
        from repro.recovery.artifacts import write_json_artifact

        doc = {"benchmarks": {}, "machine": {}, "smoke": True}
        baseline = tmp_path / "baseline.json"
        write_json_artifact(baseline, doc)
        mangled = json.loads(baseline.read_text())
        mangled["machine"] = {"cpu_count": 999}  # stale content_hash
        baseline.write_text(json.dumps(mangled))
        rc = main(["bench", "--smoke", "--baseline", str(baseline)])
        assert rc == 2
        assert "integrity check" in capsys.readouterr().err

    def test_cli_output_is_loadable_artifact(self, tmp_path):
        from repro.experiments.cli import main
        from repro.recovery.artifacts import load_json_artifact

        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--output", str(out)]) == 0
        doc = load_json_artifact(out, require=("benchmarks", "machine"))
        assert doc["smoke"] is True
