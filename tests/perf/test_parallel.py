"""Parallel sweep executor: order preservation, serial/parallel
equivalence, worker isolation, and trace capture/replay."""

import json

import pytest

from repro import obs
from repro.analysis.determinism import canonical_record
from repro.perf.parallel import parallel_map, point_seed, resolve_jobs
from repro.sim.random import derive_seed


def _square(x):
    return x * x


def _traced_point(label):
    rec = obs.get_recorder()
    with rec.span("point", sched=label, t=0.0):
        rec.event("work", t=0.0, sched=label, step=1)
    return label


class TestResolveJobs:
    def test_explicit_passthrough(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_zero_and_none_mean_all_cores(self):
        import os

        expected = max(1, os.cpu_count() or 1)
        assert resolve_jobs(0) == expected
        assert resolve_jobs(None) == expected

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestPointSeed:
    def test_matches_derive_seed(self):
        assert point_seed(7, "a") == derive_seed(7, "sweep-point:a")

    def test_distinct_labels_distinct_seeds(self):
        seeds = {point_seed(0, f"p{i}") for i in range(20)}
        assert len(seeds) == 20


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_matches_serial_in_order(self):
        items = list(range(12))
        assert parallel_map(_square, items, jobs=3) == [x * x for x in items]

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [5], jobs=8) == [25]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(lambda x: 1 // x, [1, 0], jobs=1)


class TestTraceReplay:
    def _run(self, jobs):
        recorder = obs.TraceRecorder(keep_records=True)
        obs.set_recorder(recorder)
        try:
            results = parallel_map(_traced_point, ["a", "b", "c"], jobs=jobs)
        finally:
            obs.reset_recorder()
        return results, recorder.records

    def test_parallel_trace_identical_to_serial(self):
        results_serial, trace_serial = self._run(jobs=1)
        results_parallel, trace_parallel = self._run(jobs=2)
        assert results_serial == results_parallel == ["a", "b", "c"]
        assert trace_serial  # non-vacuous
        # Byte-identical modulo wall-clock fields, same as the
        # determinism gate's comparison.
        assert json.dumps([canonical_record(r) for r in trace_serial]) == (
            json.dumps([canonical_record(r) for r in trace_parallel])
        )

    def test_span_ids_continue_after_replay(self):
        recorder = obs.TraceRecorder(keep_records=True)
        obs.set_recorder(recorder)
        try:
            with recorder.span("before", t=0.0):
                pass
            parallel_map(_traced_point, ["a", "b"], jobs=2)
            with recorder.span("after", t=0.0):
                pass
        finally:
            obs.reset_recorder()
        span_ids = [
            r["id"] for r in recorder.records if r.get("kind") == "span"
        ]
        assert span_ids == sorted(span_ids)
        assert len(span_ids) == len(set(span_ids))

    def test_replay_offsets_ids(self):
        recorder = obs.TraceRecorder(keep_records=True)
        with recorder.span("parent", t=0.0):
            pass
        recorder.replay(
            [
                {"kind": "span", "id": 1, "parent": None, "name": "w"},
                {"kind": "event", "name": "e", "span": 1},
            ]
        )
        ids = [r.get("id") for r in recorder.records if r.get("kind") == "span"]
        assert ids == [1, 2]
        assert recorder.records[-1]["span"] == 2
        # Next span allocated by this recorder does not collide.
        with recorder.span("next", t=0.0):
            pass
        assert recorder.records[-1]["id"] == 3
