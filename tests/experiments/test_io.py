"""Tests for experiment-result persistence."""

import json

import pytest

from repro.experiments.io import FORMAT_VERSION, load_rows, save_rows

ROWS = [
    {"cluster": "A", "rate_factor": 1.0, "busy_batch": 0.38},
    {"cluster": "B", "rate_factor": 2.0, "busy_batch": 0.33},
]


class TestJsonRoundTrip:
    def test_round_trip(self, tmp_path):
        path = save_rows(ROWS, tmp_path / "out.json", experiment="fig8")
        assert load_rows(path) == ROWS

    def test_envelope_metadata(self, tmp_path):
        path = save_rows(
            ROWS, tmp_path / "out.json", experiment="fig8", parameters={"scale": 0.25}
        )
        envelope = json.loads(path.read_text())
        assert envelope["experiment"] == "fig8"
        assert envelope["parameters"]["scale"] == 0.25
        assert envelope["format_version"] == FORMAT_VERSION

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 99, "rows": []}))
        with pytest.raises(ValueError, match="format_version"):
            load_rows(path)


class TestCsvRoundTrip:
    def test_round_trip_values(self, tmp_path):
        path = save_rows(ROWS, tmp_path / "out.csv")
        loaded = load_rows(path)
        assert loaded[0]["cluster"] == "A"
        assert loaded[0]["busy_batch"] == pytest.approx(0.38)

    def test_union_of_columns(self, tmp_path):
        ragged = [{"a": 1}, {"a": 2, "b": 3}]
        path = save_rows(ragged, tmp_path / "out.csv")
        header = path.read_text().splitlines()[0]
        assert header == "a,b"

    def test_empty_rows(self, tmp_path):
        path = save_rows([], tmp_path / "empty.csv")
        assert load_rows(path) == []


class TestFormatValidation:
    def test_unknown_save_format(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported output"):
            save_rows(ROWS, tmp_path / "out.xlsx")

    def test_unknown_load_format(self, tmp_path):
        path = tmp_path / "data.xml"
        path.write_text("<rows/>")
        with pytest.raises(ValueError, match="unsupported input"):
            load_rows(path)

    def test_cli_output_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "rows.json"
        assert main(["table1", "--output", str(out)]) == 0
        rows = load_rows(out)
        assert any(row["approach"] == "Shared-state (Omega)" for row in rows)


class TestAtomicIntegrity:
    """save_rows writes atomically with an embedded content hash."""

    def test_json_embeds_content_hash(self, tmp_path):
        from repro.recovery.artifacts import content_hash

        path = save_rows(ROWS, tmp_path / "out.json", experiment="fig8")
        envelope = json.loads(path.read_text())
        body = {k: v for k, v in envelope.items() if k != "content_hash"}
        assert envelope["content_hash"] == content_hash(body)

    def test_tampered_json_rejected(self, tmp_path):
        from repro.recovery.artifacts import ArtifactError

        path = save_rows(ROWS, tmp_path / "out.json")
        envelope = json.loads(path.read_text())
        envelope["rows"][0]["busy_batch"] = 0.99
        path.write_text(json.dumps(envelope))
        with pytest.raises(ArtifactError, match="integrity check"):
            load_rows(path)

    def test_truncated_json_rejected_with_one_line(self, tmp_path):
        from repro.recovery.artifacts import ArtifactError

        path = save_rows(ROWS, tmp_path / "out.json")
        path.write_text(path.read_text()[:-40])
        with pytest.raises(ArtifactError) as excinfo:
            load_rows(path)
        assert "\n" not in str(excinfo.value)

    def test_no_temp_files_left_behind(self, tmp_path):
        save_rows(ROWS, tmp_path / "out.json")
        save_rows(ROWS, tmp_path / "out.csv")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["out.csv", "out.json"]

    def test_overwrite_keeps_file_loadable(self, tmp_path):
        path = save_rows(ROWS, tmp_path / "out.json")
        save_rows(ROWS[:1], path)
        assert load_rows(path) == ROWS[:1]
