"""Integration tests for the resilience (fault-injection) experiment."""

import math

import pytest

from repro.experiments.common import LightweightConfig, run_lightweight
from repro.experiments.resilience import (
    BASELINE_FAULTS,
    DEFAULT_INTENSITIES,
    RESILIENCE_ARCHITECTURES,
    resilience_rows,
)
from repro.experiments.sweeps import result_row
from repro.workload.clusters import CLUSTER_B

SCALE = 0.05
HORIZON = 900.0
SEED = 7

FAULT_COLUMNS = (
    "machine_failures",
    "tasks_killed",
    "crashes",
    "commit_drops",
    "escalated",
    "abandoned_conflict",
    "invariant_checks",
)


def assert_same(actual, expected, label=""):
    """Exact equality, treating NaN == NaN (empty-mean wait columns)."""
    same = (
        isinstance(actual, float)
        and isinstance(expected, float)
        and math.isnan(actual)
        and math.isnan(expected)
    ) or actual == expected
    assert same, f"{label}: {actual!r} != {expected!r}"


def rows_for(intensities, architectures=("omega",), policy="immediate", jobs=1):
    return resilience_rows(
        intensities=intensities,
        architectures=architectures,
        policy=policy,
        scale=SCALE,
        horizon=HORIZON,
        seed=SEED,
        jobs=jobs,
    )


class TestZeroFaultIdentity:
    @pytest.mark.parametrize("architecture", RESILIENCE_ARCHITECTURES)
    def test_intensity_zero_matches_fault_free_run_exactly(self, architecture):
        """The acceptance bar: with the same seed, the zero-fault row is
        *exactly* the fault-free experiment — installing the resilience
        machinery (immediate retry policy, invariant checker, disabled
        fault config) must not perturb a single metric."""
        (row,) = rows_for((0.0,), architectures=(architecture,))
        baseline = result_row(
            run_lightweight(
                LightweightConfig(
                    preset=CLUSTER_B.scaled(SCALE),
                    architecture=architecture,
                    horizon=HORIZON,
                    seed=SEED,
                )
            )
        )
        for key, expected in baseline.items():
            assert_same(row[key], expected, label=f"{architecture}: {key}")

    def test_intensity_zero_reports_no_faults(self):
        (row,) = rows_for((0.0,))
        assert row["machine_failures"] == 0
        assert row["crashes"] == 0
        assert row["commit_drops"] == 0
        assert row["escalated"] == 0
        assert row["abandoned_conflict"] == 0
        # ... but the invariant gate did run: 8 periodic ticks plus
        # the post-run check.
        assert row["invariant_checks"] == 9


class TestFaultInjection:
    def test_high_intensity_injects_and_survives_invariant_gate(self):
        (row,) = rows_for((25.0,), policy="starvation")
        assert row["machine_failures"] > 0
        assert row["commit_drops"] > 0
        assert row["invariant_checks"] == 9
        # The run completed, so the post-run check_invariants() gate
        # (which raises on violation) passed too.

    def test_row_schema(self):
        (row,) = rows_for((1.0,))
        for column in FAULT_COLUMNS:
            assert column in row
        assert row["architecture"] == "omega"
        assert row["intensity"] == 1.0
        assert "wait_batch" in row and "utilization" in row

    def test_grid_covers_architectures_x_intensities(self):
        rows = rows_for((0.0, 1.0), architectures=("mesos", "omega"))
        assert [(r["architecture"], r["intensity"]) for r in rows] == [
            ("mesos", 0.0),
            ("mesos", 1.0),
            ("omega", 0.0),
            ("omega", 1.0),
        ]

    def test_defaults_are_the_documented_grid(self):
        assert DEFAULT_INTENSITIES == (0.0, 1.0, 3.0, 10.0)
        assert RESILIENCE_ARCHITECTURES == (
            "monolithic-multi",
            "partitioned",
            "mesos",
            "omega",
        )
        assert BASELINE_FAULTS.enabled


class TestParallelParity:
    def test_jobs_2_rows_identical_to_serial(self):
        """--jobs N must be invisible in the output (the determinism
        gate's --compare-jobs property, at test scale)."""
        serial = rows_for((0.0, 5.0), policy="starvation")
        parallel = rows_for((0.0, 5.0), policy="starvation", jobs=2)
        assert len(serial) == len(parallel)
        for index, (a, b) in enumerate(zip(serial, parallel)):
            assert a.keys() == b.keys()
            for key in a:
                assert_same(a[key], b[key], label=f"row {index}: {key}")
