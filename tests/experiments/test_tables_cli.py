"""Tests for the Table 1/2 data and the omega-sim CLI."""

import pytest

from repro.experiments.cli import COMMANDS, build_parser, main
from repro.experiments.tables import (
    TABLE1,
    TABLE2,
    render_table1,
    render_table2,
    table1_rows,
    table2_rows,
)


class TestTable1:
    def test_four_approaches(self):
        approaches = [row.approach for row in TABLE1]
        assert approaches == [
            "Monolithic",
            "Statically partitioned",
            "Two-level (Mesos)",
            "Shared-state (Omega)",
        ]

    def test_omega_and_monolithic_see_everything(self):
        by_name = {row.approach: row for row in TABLE1}
        assert by_name["Monolithic"].resource_choice == "all available"
        assert by_name["Shared-state (Omega)"].resource_choice == "all available"
        assert by_name["Two-level (Mesos)"].resource_choice == "dynamic subset"

    def test_concurrency_claims(self):
        by_name = {row.approach: row for row in TABLE1}
        assert by_name["Two-level (Mesos)"].interference == "pessimistic"
        assert by_name["Shared-state (Omega)"].interference == "optimistic"

    def test_render(self):
        rendered = render_table1()
        assert "Shared-state (Omega)" in rendered
        assert "optimistic" in rendered

    def test_rows_are_dicts(self):
        assert all(isinstance(row, dict) for row in table1_rows())


class TestTable2:
    def test_constraint_row(self):
        by_property = {row.property: row for row in TABLE2}
        assert by_property["Sched. constraints"].lightweight == "ignored"
        assert by_property["Sched. constraints"].high_fidelity == "obeyed"

    def test_substitutions_marked(self):
        """Table 2 rows that used Google data must be labeled as
        synthetic-trace substitutions in this reproduction."""
        for row in TABLE2:
            if "actual data" in row.high_fidelity:
                assert "synthetic" in row.high_fidelity

    def test_render(self):
        assert "randomized first fit" in render_table2()
        assert len(table2_rows()) == len(TABLE2)


class TestCli:
    def test_all_figures_have_commands(self):
        expected = {f"fig{i}" for i in list(range(2, 5)) + list(range(7, 17))}
        expected |= {"fig5a", "fig5b", "fig5c", "table1", "table2", "partitioned"}
        assert expected <= set(COMMANDS)

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["fig8", "--scale", "0.1", "--hours", "1"])
        assert args.command == "fig8"
        assert args.scale == 0.1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_command_runs(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Shared-state (Omega)" in output

    def test_characterization_command_runs(self, capsys):
        assert main(["fig4", "--samples", "2000"]) == 0
        output = capsys.readouterr().out
        assert "cdf@1" in output

    def test_simulation_command_runs(self, capsys):
        assert main(["fig16", "--scale", "0.04", "--hours", "0.5"]) == 0
        output = capsys.readouterr().out
        assert "max-parallelism" in output

    def test_federation_command_runs(self, capsys):
        assert main([
            "federation", "--cells", "1,2", "--staleness", "0",
            "--intensities", "0", "--scale", "0.05", "--hours", "0.5",
        ]) == 0
        output = capsys.readouterr().out
        for column in ("cells", "staleness", "intensity", "wait_p99", "migrated"):
            assert column in output

    def test_federation_degenerate_gate_passes(self, capsys):
        assert main([
            "federation", "--degenerate-gate", "--scale", "0.05",
            "--hours", "0.5",
        ]) == 0
        assert "wait_batch" in capsys.readouterr().out

    def test_omega_smoke_with_timeline_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "omega.jsonl"
        assert main([
            "omega", "--smoke", "--trace", str(trace),
            "--timeline-interval", "60",
        ]) == 0
        capsys.readouterr()
        assert main(["trace", str(trace), "--json"]) == 0
        rollup = json.loads(capsys.readouterr().out)
        assert rollup["timeline"]["cell"]
        assert rollup["percentile_rows"]
        for row in rollup["percentile_rows"]:
            assert {"p50_s", "p90_s", "p99_s", "p999_s"} <= set(row)
        # The process-wide sampling default is cleared after the run.
        from repro.obs import timeline

        assert timeline.default_interval() is None

    def test_timeline_interval_rejects_nonpositive(self, capsys):
        assert main(["omega", "--smoke", "--timeline-interval", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_trace_json_on_missing_file_exits_2(self, tmp_path):
        assert main(["trace", str(tmp_path / "absent.jsonl"), "--json"]) == 2
