"""Tests for the lightweight-simulator harness."""

import pytest

from repro.experiments.common import (
    ARCHITECTURES,
    LightweightConfig,
    LightweightSimulation,
    format_table,
    geometric_grid,
    run_lightweight,
)
from repro.workload.job import JobType
from tests.conftest import tiny_preset


@pytest.fixture
def preset():
    return tiny_preset()


class TestConfig:
    def test_unknown_architecture_rejected(self, preset):
        with pytest.raises(ValueError, match="unknown architecture"):
            LightweightConfig(preset=preset, architecture="quantum")

    def test_invalid_horizon(self, preset):
        with pytest.raises(ValueError):
            LightweightConfig(preset=preset, horizon=0.0)

    def test_default_period_is_quarter_horizon(self, preset):
        config = LightweightConfig(preset=preset, horizon=4000.0)
        assert config.period == 1000.0

    def test_period_caps_at_a_day(self, preset):
        config = LightweightConfig(preset=preset, horizon=10 * 86400.0)
        assert config.period == 86400.0

    def test_explicit_period_wins(self, preset):
        config = LightweightConfig(preset=preset, metrics_period=500.0)
        assert config.period == 500.0


class TestHarness:
    @pytest.mark.parametrize("architecture", ARCHITECTURES)
    def test_every_architecture_runs(self, preset, architecture):
        result = run_lightweight(
            LightweightConfig(
                preset=preset, architecture=architecture, horizon=600.0, seed=1
            )
        )
        assert result.jobs_submitted > 0
        assert result.jobs_scheduled > 0
        assert 0.0 <= result.final_cpu_utilization <= 1.0

    def test_identical_workload_across_architectures(self, preset):
        """The cornerstone of the section 4 comparisons: the same seed
        produces the same job stream for every architecture."""
        counts = {}
        for architecture in ("monolithic-single", "mesos", "omega"):
            result = run_lightweight(
                LightweightConfig(
                    preset=preset, architecture=architecture, horizon=900.0, seed=7
                )
            )
            counts[architecture] = result.jobs_submitted
        assert len(set(counts.values())) == 1

    def test_deterministic_given_seed(self, preset):
        config = LightweightConfig(preset=preset, horizon=900.0, seed=3)
        first = run_lightweight(config)
        second = run_lightweight(
            LightweightConfig(preset=preset, horizon=900.0, seed=3)
        )
        assert first.jobs_scheduled == second.jobs_scheduled
        assert first.mean_wait(JobType.BATCH) == second.mean_wait(JobType.BATCH)
        assert first.final_cpu_utilization == second.final_cpu_utilization

    def test_seed_changes_outcome(self, preset):
        first = run_lightweight(LightweightConfig(preset=preset, horizon=900.0, seed=1))
        second = run_lightweight(LightweightConfig(preset=preset, horizon=900.0, seed=2))
        def fingerprint(r):
            return (r.events_processed, r.final_cpu_utilization)

        assert fingerprint(first) != fingerprint(second)

    def test_initial_utilization_override(self, preset):
        low = run_lightweight(
            LightweightConfig(
                preset=preset, horizon=60.0, seed=0, initial_utilization=0.1
            )
        )
        high = run_lightweight(
            LightweightConfig(
                preset=preset, horizon=60.0, seed=0, initial_utilization=0.8
            )
        )
        assert high.final_cpu_utilization > low.final_cpu_utilization

    def test_utilization_sampling(self, preset):
        result = run_lightweight(
            LightweightConfig(
                preset=preset,
                horizon=600.0,
                seed=0,
                utilization_sample_interval=100.0,
            )
        )
        assert len(result.utilization_series) == 6
        times = [t for t, _, _ in result.utilization_series]
        assert times == sorted(times)

    def test_multiple_batch_schedulers_names(self, preset):
        result = run_lightweight(
            LightweightConfig(
                preset=preset, horizon=300.0, seed=0, num_batch_schedulers=3
            )
        )
        assert len(result.batch_scheduler_names) == 3

    def test_build_twice_rejected(self, preset):
        simulation = LightweightSimulation(LightweightConfig(preset=preset))
        simulation.build()
        with pytest.raises(RuntimeError):
            simulation.build()

    def test_role_validation(self, preset):
        result = run_lightweight(LightweightConfig(preset=preset, horizon=300.0))
        with pytest.raises(ValueError, match="role"):
            result.busyness("mystery")


class TestHelpers:
    def test_geometric_grid(self):
        grid = geometric_grid(0.01, 100.0, 5)
        assert grid[0] == pytest.approx(0.01)
        assert grid[-1] == pytest.approx(100.0)
        ratios = [b / a for a, b in zip(grid, grid[1:])]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_geometric_grid_validation(self):
        with pytest.raises(ValueError):
            geometric_grid(1.0, 10.0, 1)
        with pytest.raises(ValueError):
            geometric_grid(10.0, 1.0, 3)

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 22, "b": "text"}]
        rendered = format_table(rows)
        lines = rendered.splitlines()
        assert lines[0].startswith("a")
        assert "0.1235" in rendered
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        rendered = format_table(rows, columns=["b"])
        assert "a" not in rendered.splitlines()[0]
