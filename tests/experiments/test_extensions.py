"""Tests for the extension wiring: preemption in the harness, ledger-
aware quotas, ablation drivers, CLI additions."""

import dataclasses

import numpy as np
import pytest

from repro.cluster import Cell
from repro.core.cellstate import CellState
from repro.core.limits import LimitedOmegaScheduler, SchedulerLimits
from repro.core.preemption import AllocationLedger
from repro.experiments import ablations
from repro.experiments.cli import main, render_plot
from repro.experiments.common import LightweightConfig, run_lightweight
from repro.experiments.mesos import pathology_preset, pathology_rows
from repro.schedulers.base import DecisionTimeModel
from repro.workload.job import DEFAULT_PRECEDENCE, JobType
from tests.conftest import make_job, tiny_preset


class TestHarnessPreemption:
    @pytest.fixture(scope="class")
    def busy_preset(self):
        return dataclasses.replace(tiny_preset(), initial_utilization=0.85)

    def test_preemption_config_builds_and_runs(self, busy_preset):
        result = run_lightweight(
            LightweightConfig(
                preset=busy_preset,
                architecture="omega",
                horizon=1200.0,
                seed=2,
                enable_preemption=True,
            )
        )
        assert result.jobs_scheduled > 0
        # Accounting symmetry: everything the service scheduler evicted
        # was lost by the batch side.
        assert result.preemptions_caused("service") == result.tasks_lost_to_preemption(
            "batch"
        )

    def test_preemption_off_never_evicts(self, busy_preset):
        result = run_lightweight(
            LightweightConfig(
                preset=busy_preset,
                architecture="omega",
                horizon=1200.0,
                seed=2,
                enable_preemption=False,
            )
        )
        assert result.preemptions_caused("service") == 0

    def test_generator_assigns_precedence_bands(self):
        assert DEFAULT_PRECEDENCE[JobType.SERVICE] > DEFAULT_PRECEDENCE[JobType.BATCH]


class TestLedgerAwareQuota:
    def test_quota_freed_by_eviction(self, sim, metrics):
        """With a shared ledger, a scheduler's quota usage drops the
        moment its tasks are preempted, not at their original end."""
        state = CellState(Cell.homogeneous(10, 4.0, 16.0))
        ledger = AllocationLedger(state, sim)
        limited = LimitedOmegaScheduler(
            "limited",
            sim,
            metrics,
            state,
            np.random.default_rng(0),
            DecisionTimeModel(t_job=0.1, t_task=0.0),
            limits=SchedulerLimits(max_cpu=4.0),
            ledger=ledger,
        )
        job = make_job(num_tasks=4, cpu=1.0, mem=1.0, duration=10_000.0)
        limited.submit(job)
        sim.run(until=1.0)
        assert limited.current_usage()[0] == pytest.approx(4.0)
        # Evict two of its tasks (as a preemptor would).
        evicted = 0
        for machine in range(10):
            evicted += ledger.evict(
                machine, need_cpu=2.0 - evicted, need_mem=0.0, below_precedence=99
            )
            if evicted >= 2:
                break
        assert evicted >= 2
        assert limited.current_usage()[0] <= 2.0 + 1e-9


class TestAblationDrivers:
    def test_retry_rows_shape(self):
        rows = ablations.retry_position_rows(scale=0.05, horizon=600.0)
        assert {row["retry_position"] for row in rows} == {"head", "tail"}

    def test_initial_utilization_rows_shape(self):
        rows = ablations.initial_utilization_rows(
            fills=(0.2, 0.7), scale=0.05, horizon=600.0
        )
        assert [row["initial_utilization"] for row in rows] == [0.2, 0.7]

    def test_backoff_rows_shape(self):
        rows = ablations.backoff_rows(cooldowns=(0.0, 10.0), scale=0.05, horizon=600.0)
        assert [row["cooldown_s"] for row in rows] == [0.0, 10.0]

    def test_preemption_rows_shape(self):
        rows = ablations.preemption_rows(scale=0.05, horizon=900.0)
        by_mode = {row["preemption"]: row for row in rows}
        assert set(by_mode) == {"on", "off"}
        assert by_mode["off"]["tasks_preempted"] == 0

    def test_pathology_rows(self):
        rows = pathology_rows(
            t_jobs=(0.1,),
            architectures=("omega",),
            horizon=600.0,
            num_machines=60,
        )
        assert len(rows) == 1
        assert rows[0]["architecture"] == "omega"

    def test_pathology_preset_has_big_tasks(self):
        preset = pathology_preset()
        rng = np.random.default_rng(0)
        samples = preset.batch.cpu_per_task.sample_many(rng, 5000)
        assert (samples > 1.5).mean() == pytest.approx(0.03, abs=0.01)


class TestCliAdditions:
    def test_ablation_command_runs(self, capsys):
        assert main(["ablation-util", "--scale", "0.05", "--hours", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "initial_utilization" in output

    def test_plot_flag_renders_chart(self, capsys):
        assert (
            main(["ablation-util", "--scale", "0.05", "--hours", "0.2", "--plot"]) == 0
        )
        output = capsys.readouterr().out
        assert "legend:" in output

    def test_plot_unsupported_command_warns(self, capsys):
        assert main(["table1", "--plot"]) == 0
        captured = capsys.readouterr()
        assert "no chart available" in captured.err

    def test_render_plot_series_grouping(self):
        rows = [
            {"cluster": "A", "rate_factor": 1.0, "busy_batch": 0.1},
            {"cluster": "A", "rate_factor": 2.0, "busy_batch": 0.2},
            {"cluster": "B", "rate_factor": 1.0, "busy_batch": 0.05},
        ]
        chart = render_plot("fig8", rows)
        assert chart is not None
        assert "A" in chart and "B" in chart

    def test_render_plot_unknown_command(self):
        assert render_plot("table1", [{"a": 1}]) is None
